#!/usr/bin/env python3
"""Quickstart: make a class self-testable and test it, in five steps.

This walks the full methodology of the paper (sec. 3.1) on a tiny
component:

1. the *producer* writes the component and its test model (t-spec);
2. the producer instruments it with built-in test capabilities;
3. the *consumer* compiles it in test mode and generates a test suite from
   the embedded specification (Driver Generator, transaction coverage);
4. the consumer executes the suite;
5. the consumer analyses the results.

Run:  python examples/quickstart.py
"""

from repro import (
    DriverGenerator,
    RangeDomain,
    SpecBuilder,
    TestExecutor,
    compile_component,
)
from repro.harness.report import format_suite_result


# ---------------------------------------------------------------------------
# Step 0 — the component, as any producer would write it (no repro imports).
# ---------------------------------------------------------------------------


class Counter:
    """A bounded counter: increments up to a limit, supports reset."""

    def __init__(self, limit: int = 10):
        self.limit = max(1, int(limit))
        self.value = 0

    def Increment(self) -> bool:
        """Advance by one; False when the limit is reached."""
        if self.value >= self.limit:
            return False
        self.value += 1
        return True

    def Reset(self) -> int:
        """Back to zero; returns the discarded value."""
        old = self.value
        self.value = 0
        return old

    def Value(self) -> int:
        return self.value


# ---------------------------------------------------------------------------
# Step 1 — the test model: which call sequences are allowed (the TFM), and
# which values are valid (the domains).  See Figure 2/3 of the paper.
# ---------------------------------------------------------------------------


def build_counter_spec():
    return (
        SpecBuilder("Counter")
        .attribute("value", RangeDomain(0, 1000))
        .constructor("Counter", [("limit", RangeDomain(1, 20))])
        .destructor("~Counter")
        .method("Increment", category="update", return_type="bool")
        .method("Reset", category="process", return_type="int")
        .method("Value", category="access", return_type="int")
        .node("birth", ["Counter"], start=True)
        .node("inc", ["Increment"])
        .node("reset", ["Reset"])
        .node("query", ["Value"])
        .node("death", ["~Counter"])
        .chain("birth", "inc", "query", "death")
        .edge("inc", "inc")        # increments may repeat
        .edge("inc", "reset")
        .edge("reset", "query")
        .edge("query", "inc")
        .edge("birth", "death")    # create-and-destroy is legal
        .build()
    )


# ---------------------------------------------------------------------------
# Step 2 — the invariant: the predicate the ClassInvariant macro would check.
# ---------------------------------------------------------------------------


def counter_invariant(counter) -> bool:
    return 0 <= counter.value <= counter.limit


def main() -> None:
    spec = build_counter_spec()
    print(f"t-spec: {spec.describe()}")

    # Step 3 (consumer): compile in test mode.  Passing test_mode=False
    # would return the pristine Counter class — zero testing overhead.
    testable_counter = compile_component(
        Counter, test_mode=True, spec=spec, invariant=counter_invariant
    )

    # Step 4: generate the suite from the embedded spec.  Every transaction
    # of the model (birth-to-death path) becomes at least one test case with
    # randomly drawn argument values.
    generator = DriverGenerator(spec, seed=42)
    suite = generator.generate()
    print(f"generated: {suite.summary()}")
    print("\nfirst three test cases:")
    for case in suite.cases[:3]:
        print(case.format())

    # Step 5: execute and analyse.
    result = TestExecutor(testable_counter).run_suite(suite)
    print()
    print(format_suite_result(result))

    if result.all_passed:
        print("\nAll transactions pass — the component honours its model.")

    # Bonus: what testing a *faulty* version looks like.
    class FaultyCounter(Counter):
        def Increment(self):  # fault: ignores the limit
            self.value += 1
            return True

    faulty = compile_component(
        FaultyCounter, test_mode=True, spec=spec, invariant=counter_invariant
    )
    faulty_result = TestExecutor(faulty).run_suite(suite)
    failures = faulty_result.failed
    print(f"\nseeded-fault run: {len(failures)} of {len(suite)} test cases fail")
    if failures:
        print(f"first failure: {failures[0].format()}")


if __name__ == "__main__":
    main()
