#!/usr/bin/env python3
"""A compact mutation-analysis study (sec. 4), end to end.

Runs the full empirical-evaluation machinery on a reduced configuration so
it finishes in a few seconds:

* generate interface mutants for two ``CSortableObList`` methods under the
  C++-typing gate (Table 1 operators);
* run the consumer-generated suite over every mutant with the paper's
  composite oracle (crash → assertion → output);
* deep-probe the survivors for equivalence;
* print the Table-2-style score grid and the kill-reason breakdown.

For the full Tables 2 and 3 see ``benchmarks/bench_table2_sortable.py`` and
``benchmarks/bench_table3_base_escape.py``.

Run:  python examples/mutation_evaluation.py
"""

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.experiments.config import sortable_oracle, sortable_suite
from repro.mutation import (
    MutationAnalysis,
    build_score_table,
    generate_mutants,
    probe_equivalence,
)

METHODS = ("FindMax", "FindMin")


def main() -> None:
    # -- Mutant generation -------------------------------------------------
    mutants, report = generate_mutants(
        CSortableObList, METHODS, type_model=OBLIST_TYPE_MODEL
    )
    print(report.summary())
    print("\nthree example mutants:")
    for mutant in mutants[:3]:
        print(f"  {mutant.record.title()}")

    # -- Suite + analysis -----------------------------------------------------
    suite = sortable_suite()
    print(f"\nsuite: {suite.summary()}")
    analysis = MutationAnalysis(
        CSortableObList, suite, oracle=sortable_oracle()
    )
    run = analysis.analyze(mutants)
    print(run.summary())

    # -- Equivalence probe -----------------------------------------------------
    survivor_idents = {o.mutant.ident for o in run.outcomes if not o.killed}
    survivors = [m for m in mutants if m.ident in survivor_idents]
    print(f"\nprobing {len(survivors)} survivors for equivalence…")
    equivalence = probe_equivalence(
        CSortableObList, CSortableObList.__tspec__, survivors, seeds=(101, 202)
    )
    print(equivalence.summary())

    # -- The score table ---------------------------------------------------
    print()
    table = build_score_table(run, equivalence, methods=METHODS)
    print(table.format())

    print("\nkill reasons:")
    for reason, count in sorted(run.kill_reason_counts().items()):
        if count:
            print(f"  {reason:<12} {count}")

    # One surviving mutant, for the curious.
    if survivors:
        print("\na mutant the suite did NOT kill:")
        print(f"  {survivors[0].record.title()}")


if __name__ == "__main__":
    main()
