#!/usr/bin/env python3
"""Interclass testing: the warehouse assembly (Provider + Product).

The paper's future work (sec. 6) extends self-testable components "for
components having more than one class", testing interactions *between*
classes.  This example runs that extension on the paper's own running
example, which naturally spans two classes: a ``Product`` holds a pointer
to its ``Provider`` and both interact with the stock database.

What it shows:

* an **assembly spec**: roles bound to self-testable classes, and a
  transaction model whose tasks are qualified ``role.Method`` steps;
* **object flow**: parameters typed as another role's class (the
  ``prv: Provider*`` of ``Product``'s constructor and ``UpdateProv``)
  resolve to the live provider object of the same transaction;
* execution with merged multi-object observability, and detection of an
  interaction fault that no single-class suite can see.

Run:  python examples/warehouse_assembly.py
"""

from repro.components import (
    Product,
    Provider,
    WAREHOUSE_ASSEMBLY,
    WAREHOUSE_ROLES,
    reset_database,
)
from repro.harness.report import compare_results, format_suite_result
from repro.interclass import AssemblyExecutor, InterclassDriverGenerator, RoleRef


def main() -> None:
    print(WAREHOUSE_ASSEMBLY.describe())

    # -- Generation -----------------------------------------------------------
    generator = InterclassDriverGenerator(WAREHOUSE_ASSEMBLY, seed=7)
    suite = generator.generate()
    print(suite.summary())

    interacting = next(
        case for case in suite.cases
        if any(
            isinstance(argument, RoleRef)
            for step in case.steps for argument in step.arguments
        )
    )
    print("\na transaction whose objects interact:")
    print(interacting.format())

    # -- Execution --------------------------------------------------------
    print()
    reset_database()
    executor = AssemblyExecutor(WAREHOUSE_ASSEMBLY, WAREHOUSE_ROLES)
    result = executor.run_suite(suite)
    print(format_suite_result(result))

    # -- An interclass fault ---------------------------------------------------
    print()
    print("=" * 72)
    print("Detecting an interaction fault between the two classes")
    print("=" * 72)

    class ForgetfulProduct(Product):
        """Fault: the product silently drops its provider link."""

        def UpdateProv(self, prv):
            self.prov = None

    reset_database()
    baseline = AssemblyExecutor(WAREHOUSE_ASSEMBLY, WAREHOUSE_ROLES).run_suite(suite)
    reset_database()
    faulty = AssemblyExecutor(
        WAREHOUSE_ASSEMBLY, {"provider": Provider, "product": ForgetfulProduct}
    ).run_suite(suite)

    differing = compare_results(baseline, faulty)
    print(f"{len(differing)} of {len(suite)} interclass test cases observe "
          "the dropped provider link")
    if differing:
        reference_result, observed_result = differing[0]
        difference = observed_result.observation.differs_from(
            reference_result.observation
        )
        print(f"e.g. {observed_result.case_ident}: {difference[0]}")
    print()
    print("A single-class Product suite with an unbound provider factory "
          "could miss this: the interclass model makes the cross-object "
          "flow part of every generated transaction.")


if __name__ == "__main__":
    main()
