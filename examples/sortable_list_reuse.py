#!/usr/bin/env python3
"""Hierarchical incremental test reuse (sec. 3.4.2), on the experiment classes.

``CSortableObList`` derives from ``CObList``.  This example shows what a
consumer does when adopting the subclass:

1. classify the subclass's methods against the parent (new / redefined /
   inherited — Harrold et al.'s technique at transaction granularity);
2. plan the subclass testing: which parent test cases can be *reused*
   without rerunning, which transactions need *new* test cases;
3. persist the resulting testing history;
4. run only the incremental test set — and then demonstrate the paper's
   warning (sec. 4, Table 3): a fault planted in the *base* class escapes
   the incremental suite, because inherited-only transactions were not
   rerun.

Run:  python examples/sortable_list_reuse.py
"""

import tempfile

from repro import DriverGenerator, TestExecutor
from repro.components import CObList, CSortableObList
from repro.history import (
    HistoryStore,
    TransactionStatus,
    classify_spec_methods,
    plan_subclass_testing,
)
from repro.mutation.mutant import rebuild_subclass


def main() -> None:
    base_spec = CObList.__tspec__
    subclass_spec = CSortableObList.__tspec__

    # -- Step 1: feature diff ------------------------------------------------
    print("=" * 72)
    print("Step 1 — classify subclass methods against the parent")
    print("=" * 72)
    diff = classify_spec_methods(base_spec, subclass_spec)
    print(diff.summary())
    print(f"new methods: {', '.join(sorted(diff.modified_or_new))}")

    # -- Step 2: incremental plan ---------------------------------------------
    print()
    print("=" * 72)
    print("Step 2 — incremental test plan")
    print("=" * 72)
    parent_suite = DriverGenerator(base_spec, seed=2001).generate()
    print(f"parent suite: {parent_suite.summary()}")
    plan = plan_subclass_testing(base_spec, subclass_spec, parent_suite)
    print(plan.summary())
    for status in (TransactionStatus.NEW, TransactionStatus.REUSED):
        decisions = plan.decisions_with(status)
        print(f"  {status.value:<7} transactions: {len(decisions)}")
    example = plan.decisions_with(TransactionStatus.NEW)[0]
    print(f"  e.g. {example.transaction} is NEW because it {example.reason}")

    # -- Step 3: persist the history ------------------------------------------
    print()
    print("=" * 72)
    print("Step 3 — testing history")
    print("=" * 72)
    with tempfile.TemporaryDirectory() as directory:
        store = HistoryStore(directory)
        path = store.save(plan.history)
        print(f"history saved to {path}")
        print(store.load("CSortableObList").summary())

    # -- Step 4: run the incremental set ---------------------------------------
    print()
    print("=" * 72)
    print("Step 4 — execute the incremental test set")
    print("=" * 72)
    result = TestExecutor(CSortableObList).run_suite(plan.executed_suite)
    print(f"incremental run: {result.summary()}")

    # -- The Table-3 warning -----------------------------------------------
    print()
    print("=" * 72)
    print("The sec.-4 warning: base-class faults can escape the incremental set")
    print("=" * 72)

    class FaultyBase(CObList):
        """A 'new release' of the base library with a fault in GetAt:
        off-by-one access that returns the predecessor's value."""

        def GetAt(self, position):
            return super().GetAt(position - 1)

    faulty_subclass = rebuild_subclass(CSortableObList, CObList, FaultyBase)

    incremental_result = TestExecutor(faulty_subclass).run_suite(plan.executed_suite)
    full_suite = DriverGenerator(subclass_spec, seed=2001).generate()
    full_result = TestExecutor(faulty_subclass).run_suite(full_suite)

    from repro.harness.report import compare_results
    reference = TestExecutor(CSortableObList)
    incremental_diffs = compare_results(
        reference.run_suite(plan.executed_suite), incremental_result
    )
    full_diffs = compare_results(
        reference.run_suite(full_suite), full_result
    )
    print(f"incremental suite ({len(plan.executed_suite)} cases): "
          f"{len(incremental_diffs)} cases notice the fault")
    print(f"full suite        ({len(full_suite)} cases): "
          f"{len(full_diffs)} cases notice the fault")
    print()
    print("GetAt is only exercised by inherited-only transactions, which the")
    print("incremental technique does not rerun — so a fault introduced by a")
    print("base-library update goes completely unnoticed.  This is exactly")
    print("the danger the paper's second experiment (Table 3) quantifies.")


if __name__ == "__main__":
    main()
