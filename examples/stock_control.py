#!/usr/bin/env python3
"""The paper's running example: the warehouse stock-control Product.

Reproduces Figures 1–3 and the use-case of sec. 3.2:

* prints the ``Product`` interface (Figure 1) from its embedded t-spec;
* renders the transaction flow model (Figure 2) with the use-case path
  *create → obtain data → remove from database → destroy* highlighted;
* prints the textual t-spec (Figure 3) and verifies it round-trips;
* completes the structured ``Provider`` parameters (the manual step of
  sec. 3.4.1), generates the suite, emits a runnable driver module
  (Figures 6–7), and executes everything against the component.

Run:  python examples/stock_control.py
"""

from repro import DriverGenerator, TestExecutor, TypeBinding, write_tspec
from repro.components import Product, Provider, reset_database
from repro.experiments.figures import figure2_product_tfm
from repro.generator.codegen import generate_driver_source
from repro.harness.report import format_suite_result
from repro.tspec.parser import parse_tspec


def main() -> None:
    spec = Product.__tspec__

    # -- Figure 1: the interface ------------------------------------------
    print("=" * 72)
    print("Figure 1 — class Product (from the embedded t-spec)")
    print("=" * 72)
    for method in spec.methods:
        print(f"  {method.category.value:<12} {method.signature()}")

    # -- Figure 2: the TFM with the use case highlighted -------------------
    print()
    print("=" * 72)
    print("Figure 2 — transaction flow model")
    print("=" * 72)
    figure2 = figure2_product_tfm()
    print(figure2.ascii_rendering)
    print(f"\n{figure2.transaction_count} transactions in total")

    # -- Figure 3: the textual t-spec ---------------------------------------
    print()
    print("=" * 72)
    print("Figure 3 — the t-spec text (excerpt)")
    print("=" * 72)
    text = write_tspec(spec)
    print("\n".join(text.splitlines()[:14]))
    print("…")
    assert parse_tspec(text) == spec.normalized()
    print("(round-trips through the parser: OK)")

    # -- Generating and completing the suite --------------------------------
    print()
    print("=" * 72)
    print("Driver generation (sec. 3.4.1)")
    print("=" * 72)
    incomplete_suite = DriverGenerator(spec, seed=2001).generate()
    print(f"as generated: {incomplete_suite.summary()}")

    # Provider-typed parameters are structured: the tester completes them by
    # binding a factory (the 'indicate which types to use' step).
    bindings = TypeBinding({
        "Provider": lambda rng: Provider(
            f"provider-{rng.randint(1, 99)}", rng.randint(0, 9999)
        ),
    })
    suite = incomplete_suite.completed(bindings)
    print(f"after completion: {suite.summary()}")

    # -- Figures 6–7: the driver as source code -----------------------------
    print()
    print("=" * 72)
    print("Figure 6 — one generated test case, as driver source")
    print("=" * 72)
    from dataclasses import replace
    tiny = replace(suite, cases=suite.cases[:1])
    source = generate_driver_source(tiny, "repro.components", "Product")
    in_function = False
    for line in source.splitlines():
        if line.startswith("def test_case_"):
            in_function = True
        if in_function:
            print(line)
            if line.strip() == "return False":
                break

    # -- Execution -----------------------------------------------------------
    print()
    print("=" * 72)
    print("Execution")
    print("=" * 72)
    reset_database()
    result = TestExecutor(Product).run_suite(suite)
    print(format_suite_result(result))


if __name__ == "__main__":
    main()
