"""Tests for driver source generation (Figures 6–7)."""

from __future__ import annotations

import io

from repro.bit import access
from repro.components import BoundedStack, Product, Provider, STACK_SPEC, PRODUCT_SPEC
from repro.generator.codegen import generate_driver_source
from repro.generator.driver import DriverGenerator
from repro.generator.values import TypeBinding


def small_stack_suite(cases=6):
    suite = DriverGenerator(STACK_SPEC).generate()
    from dataclasses import replace
    return replace(suite, cases=suite.cases[:cases])


class TestGeneratedSource:
    def test_compiles(self):
        source = generate_driver_source(
            small_stack_suite(), "repro.components", "BoundedStack"
        )
        compile(source, "<driver>", "exec")

    def test_one_function_per_case(self):
        suite = small_stack_suite()
        source = generate_driver_source(suite, "repro.components", "BoundedStack")
        for case in suite.cases:
            assert f"def test_case_{case.ident.lower()}(" in source

    def test_mentions_transaction_in_docstring(self):
        suite = small_stack_suite(2)
        source = generate_driver_source(suite, "repro.components", "BoundedStack")
        assert str(suite.cases[0].transaction) in source

    def test_figure6_shape(self):
        source = generate_driver_source(
            small_stack_suite(3), "repro.components", "BoundedStack"
        )
        # The driver mirrors Figure 6: invariant around calls, current-method
        # bookkeeping, OK / violation log lines, reporter at the end.
        assert "_invariant(cut)" in source
        assert "current_method" in source
        assert "OK!" in source
        assert "Method called:" in source
        assert "_report(cut, log_file)" in source
        assert "except ContractViolation" in source

    def test_run_all_entry_point(self):
        source = generate_driver_source(
            small_stack_suite(3), "repro.components", "BoundedStack"
        )
        assert "def run_all(" in source
        assert "ALL_TEST_CASES" in source


class TestExecution:
    def test_runs_green_against_component(self):
        source = generate_driver_source(
            small_stack_suite(8), "repro.components", "BoundedStack"
        )
        namespace = {}
        exec(compile(source, "<driver>", "exec"), namespace)  # noqa: S102
        log = io.StringIO()
        with access.test_mode():
            results = [
                function(BoundedStack, log)
                for function in namespace["ALL_TEST_CASES"]
            ]
        assert all(results)
        assert "OK!" in log.getvalue()

    def test_run_all_writes_log_file(self, tmp_path):
        source = generate_driver_source(
            small_stack_suite(4), "repro.components", "BoundedStack",
            log_path=str(tmp_path / "Result.txt"),
        )
        namespace = {}
        exec(compile(source, "<driver>", "exec"), namespace)  # noqa: S102
        passed, failed = namespace["run_all"]()
        assert passed == 4 and failed == 0
        assert (tmp_path / "Result.txt").exists()


class TestFixtures:
    def test_holes_become_fixtures(self):
        suite = DriverGenerator(PRODUCT_SPEC).generate()
        from dataclasses import replace
        incomplete = replace(suite, cases=suite.incomplete_cases[:2])
        source = generate_driver_source(incomplete, "repro.components", "Product")
        assert "FIXTURES = {" in source
        assert "FIXTURES[" in source
        assert "<hole prv" in source

    def test_non_literal_values_become_fixtures(self):
        bindings = TypeBinding({"Provider": lambda rng: Provider("p", 1)})
        suite = DriverGenerator(PRODUCT_SPEC, bindings=bindings).generate()
        from dataclasses import replace
        with_objects = replace(
            suite,
            cases=tuple(
                case for case in suite.cases
                if any(
                    isinstance(argument, Provider)
                    for step in case.steps for argument in step.arguments
                )
            )[:2],
        )
        assert with_objects.cases, "need at least one case with a Provider value"
        source = generate_driver_source(with_objects, "repro.components", "Product")
        assert "instance of Provider" in source
