"""Tests for the DriverGenerator (transaction coverage + alternatives)."""

from __future__ import annotations

import pytest

from repro.components import (
    PRODUCT_SPEC,
    SORTABLE_OBLIST_SPEC,
    STACK_SPEC,
)
from repro.core.errors import GenerationError
from repro.generator.driver import DriverGenerator, generate_suite
from repro.generator.testcase import TestCaseCounter
from repro.generator.values import TypeBinding, is_hole
from repro.tfm.graph import TransactionFlowGraph
from repro.tfm.transactions import enumerate_transactions


class TestTransactionCoverage:
    def test_every_transaction_has_a_case(self):
        suite = DriverGenerator(STACK_SPEC).generate()
        graph = TransactionFlowGraph(STACK_SPEC)
        enumerated = {t.ident for t in enumerate_transactions(graph)}
        exercised = {case.transaction.ident for case in suite.cases}
        assert exercised == enumerated

    def test_cases_match_transaction_structure(self):
        suite = DriverGenerator(STACK_SPEC).generate()
        graph = TransactionFlowGraph(STACK_SPEC)
        for case in suite.cases:
            assert len(case.steps) == case.transaction.length
            for step, node_ident in zip(case.steps, case.transaction.path):
                assert step.node_ident == node_ident
                node_methods = {m.ident for m in graph.node_methods(node_ident)}
                assert step.method_ident in node_methods

    def test_first_step_is_construction_last_is_destruction(self):
        suite = DriverGenerator(STACK_SPEC).generate()
        for case in suite.cases:
            assert case.steps[0].is_construction
            assert case.steps[-1].is_destruction


class TestAlternativeCoverage:
    def test_every_alternative_chosen_somewhere(self):
        suite = DriverGenerator(SORTABLE_OBLIST_SPEC).generate()
        graph = TransactionFlowGraph(SORTABLE_OBLIST_SPEC)
        for transaction in suite.transactions:
            cases = suite.cases_for_transaction(transaction)
            for position, node_ident in enumerate(transaction.path):
                alternatives = {m.ident for m in graph.node_methods(node_ident)}
                chosen = {case.steps[position].method_ident for case in cases}
                assert chosen == alternatives

    def test_alternatives_disabled_yields_one_case_each(self):
        generator = DriverGenerator(SORTABLE_OBLIST_SPEC, cover_alternatives=False)
        suite = generator.generate()
        assert len(suite) == suite.transactions_total

    def test_extra_variants(self):
        base = DriverGenerator(STACK_SPEC).generate()
        extra = DriverGenerator(STACK_SPEC, extra_variants=2).generate()
        assert len(extra) == len(base) + 2 * base.transactions_total

    def test_negative_extra_variants_rejected(self):
        with pytest.raises(GenerationError):
            DriverGenerator(STACK_SPEC, extra_variants=-1)


class TestValueBinding:
    def test_samplable_arguments_bound(self):
        suite = DriverGenerator(STACK_SPEC).generate()
        for case in suite.cases:
            assert case.is_complete

    def test_argument_values_within_domains(self):
        suite = DriverGenerator(STACK_SPEC).generate()
        spec_by_ident = {method.ident: method for method in STACK_SPEC.methods}
        for case in suite.cases:
            for step in case.steps:
                method = spec_by_ident[step.method_ident]
                for argument, parameter in zip(step.arguments, method.parameters):
                    assert parameter.domain.contains(argument)

    def test_structured_parameters_become_holes(self):
        suite = DriverGenerator(PRODUCT_SPEC).generate()
        assert suite.incomplete_cases
        hole_classes = {
            hole.class_name
            for case in suite.incomplete_cases
            for _, hole in case.holes
        }
        assert hole_classes == {"Provider"}

    def test_bindings_fill_structured_parameters(self):
        from repro.components import Provider

        bindings = TypeBinding({
            "Provider": lambda rng: Provider("p", rng.randint(0, 9)),
        })
        suite = DriverGenerator(PRODUCT_SPEC, bindings=bindings).generate()
        assert suite.is_executable


class TestDeterminism:
    def test_same_seed_same_suite(self):
        first = DriverGenerator(STACK_SPEC, seed=5).generate()
        second = DriverGenerator(STACK_SPEC, seed=5).generate()
        assert first == second

    def test_different_seed_different_values(self):
        first = DriverGenerator(STACK_SPEC, seed=5).generate()
        second = DriverGenerator(STACK_SPEC, seed=6).generate()
        assert first != second
        # Structure is identical, only values differ.
        assert [c.transaction.ident for c in first.cases] == [
            c.transaction.ident for c in second.cases
        ]

    def test_case_idents_are_sequential(self):
        suite = DriverGenerator(STACK_SPEC).generate()
        assert [case.ident for case in suite.cases] == [
            f"TC{i}" for i in range(len(suite))
        ]

    def test_shared_counter_across_generators(self):
        counter = TestCaseCounter()
        generator = DriverGenerator(STACK_SPEC)
        transaction = generator.enumerate()[0]
        first = generator.generate_for_transaction(transaction, counter)
        second = generator.generate_for_transaction(transaction, counter)
        all_idents = [case.ident for case in first + second]
        assert len(all_idents) == len(set(all_idents))


class TestConvenience:
    def test_generate_suite_helper(self):
        suite = generate_suite(STACK_SPEC, seed=1)
        assert len(suite) > 0
        assert suite.class_name == "BoundedStack"

    def test_suite_metadata(self):
        suite = DriverGenerator(STACK_SPEC, seed=11, edge_bound=1).generate()
        assert suite.seed == 11
        assert suite.edge_bound == 1
        assert suite.transactions_total == len(suite.transactions)
        assert not suite.truncated

    def test_truncation_propagates(self):
        suite = DriverGenerator(STACK_SPEC, max_transactions=2).generate()
        assert suite.truncated
