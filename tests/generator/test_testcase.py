"""Tests for the TestCase/TestStep model."""

from __future__ import annotations

import pytest

from repro.core.domains import ObjectDomain, RangeDomain
from repro.core.errors import IncompleteTestCaseError
from repro.core.rng import ReproRandom
from repro.generator.testcase import TestCase, TestCaseCounter, TestStep
from repro.generator.values import Hole
from repro.tfm.transactions import Transaction


def build_case(with_hole=False) -> TestCase:
    arguments = (Hole("prv", ObjectDomain("Widget")),) if with_hole else (5,)
    return TestCase(
        ident="TC0",
        transaction=Transaction(("n1", "n2", "n3")),
        steps=(
            TestStep("m1", "Thing", (), node_ident="n1", is_construction=True),
            TestStep("m2", "Work", arguments, node_ident="n2"),
            TestStep("m3", "~Thing", (), node_ident="n3", is_destruction=True),
        ),
        class_name="Thing",
        seed=99,
    )


class TestStructure:
    def test_construction_processing_destruction(self):
        case = build_case()
        assert case.construction.method_name == "Thing"
        assert [step.method_name for step in case.processing_steps] == ["Work"]
        assert case.destruction is not None
        assert case.destruction.method_name == "~Thing"

    def test_must_start_with_construction(self):
        with pytest.raises(ValueError, match="construction"):
            TestCase(
                ident="TC1",
                transaction=Transaction(("n1",)),
                steps=(TestStep("m2", "Work", ()),),
                class_name="Thing",
            )

    def test_needs_steps(self):
        with pytest.raises(ValueError, match="no steps"):
            TestCase(
                ident="TC1",
                transaction=Transaction(("n1",)),
                steps=(),
                class_name="Thing",
            )

    def test_container_protocol(self):
        case = build_case()
        assert len(case) == 3
        assert [step.method_ident for step in case] == ["m1", "m2", "m3"]

    def test_method_names(self):
        assert build_case().method_names == ("Thing", "Work", "~Thing")

    def test_no_destruction(self):
        case = TestCase(
            ident="TC2",
            transaction=Transaction(("n1",)),
            steps=(TestStep("m1", "Thing", (), is_construction=True),),
            class_name="Thing",
        )
        assert case.destruction is None


class TestHoles:
    def test_complete_case(self):
        case = build_case()
        assert case.is_complete
        case.require_complete()

    def test_incomplete_case(self):
        case = build_case(with_hole=True)
        assert not case.is_complete
        holes = case.holes
        assert len(holes) == 1
        step_index, hole = holes[0]
        assert step_index == 1
        assert hole.parameter == "prv"

    def test_require_complete_raises(self):
        with pytest.raises(IncompleteTestCaseError, match="prv"):
            build_case(with_hole=True).require_complete()

    def test_complete_fills_holes(self):
        case = build_case(with_hole=True)

        class Widget:
            pass

        filled = case.complete(lambda hole, rng: Widget())
        assert filled.is_complete
        assert isinstance(filled.steps[1].arguments[0], Widget)
        # Original untouched (frozen value semantics).
        assert not case.is_complete

    def test_complete_uses_case_seed(self):
        case = build_case(with_hole=True)
        seeds = []
        case.complete(lambda hole, rng: seeds.append(rng.seed) or 1)
        assert seeds == [case.seed]

    def test_complete_with_explicit_rng(self):
        case = build_case(with_hole=True)
        seeds = []
        case.complete(lambda hole, rng: seeds.append(rng.seed) or 1,
                      rng=ReproRandom(123))
        assert seeds == [123]


class TestFormatting:
    def test_step_format(self):
        step = TestStep("m2", "Work", (5, "x"), node_ident="n2")
        assert step.format() == "Work(5, 'x')"

    def test_construction_format(self):
        step = TestStep("m1", "Thing", (1,), is_construction=True)
        assert step.format() == "new Thing(1)"

    def test_destruction_format(self):
        step = TestStep("m3", "~Thing", (), is_destruction=True)
        assert "delete" in step.format()

    def test_hole_format(self):
        step = TestStep("m2", "Work", (Hole("p", ObjectDomain("W")),))
        assert "<hole p" in step.format()

    def test_case_format_lists_steps(self):
        text = build_case().format()
        assert "TC0" in text
        assert "new Thing()" in text
        assert "Work(5)" in text


class TestCounter:
    def test_sequence(self):
        counter = TestCaseCounter()
        assert [counter.next_ident() for _ in range(3)] == ["TC0", "TC1", "TC2"]

    def test_custom_prefix(self):
        counter = TestCaseCounter(prefix="STC")
        assert counter.next_ident() == "STC0"
