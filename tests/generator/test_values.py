"""Tests for value sampling, holes, and type bindings."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.domains import (
    BoolDomain,
    ObjectDomain,
    PointerDomain,
    RangeDomain,
    SetDomain,
    StringDomain,
)
from repro.core.rng import ReproRandom
from repro.generator.values import Hole, TypeBinding, ValueSampler, is_hole


class Widget:
    pass


class TestSampling:
    def test_samplable_domains_yield_members(self, rng):
        sampler = ValueSampler(rng)
        for domain in (RangeDomain(0, 9), StringDomain(1, 4),
                       SetDomain((1, 2, 3)), BoolDomain()):
            value = sampler.sample("p", domain)
            assert domain.contains(value)

    def test_structured_yields_hole(self, rng):
        sampler = ValueSampler(rng)
        value = sampler.sample("prv", ObjectDomain("Widget"))
        assert is_hole(value)
        assert value.parameter == "prv"
        assert value.class_name == "Widget"

    def test_pointer_hole_class_name(self, rng):
        sampler = ValueSampler(rng)
        hole = sampler.sample("p", PointerDomain(ObjectDomain("Widget")))
        assert is_hole(hole)
        assert hole.class_name == "Widget"

    def test_bound_factory_fills(self, rng):
        bindings = TypeBinding({"Widget": lambda r: Widget()})
        sampler = ValueSampler(rng, bindings=bindings)
        value = sampler.sample("p", ObjectDomain("Widget"))
        assert isinstance(value, Widget)

    def test_bound_pointer_mixes_none(self):
        bindings = TypeBinding({"Widget": lambda r: Widget()})
        sampler = ValueSampler(ReproRandom(3), bindings=bindings)
        domain = PointerDomain(ObjectDomain("Widget"), null_probability=0.5)
        values = [sampler.sample("p", domain) for _ in range(50)]
        assert any(value is None for value in values)
        assert any(isinstance(value, Widget) for value in values)

    def test_deterministic(self):
        first = ValueSampler(ReproRandom(7))
        second = ValueSampler(ReproRandom(7))
        domain = RangeDomain(0, 10**6)
        assert [first.sample("p", domain) for _ in range(10)] == [
            second.sample("p", domain) for _ in range(10)
        ]

    @settings(max_examples=30, deadline=None)
    @given(st.integers(), st.floats(0.0, 1.0))
    def test_boundary_mixing_stays_in_domain(self, seed, probability):
        sampler = ValueSampler(ReproRandom(seed),
                               boundary_probability=probability)
        domain = RangeDomain(-5, 5)
        for _ in range(20):
            assert domain.contains(sampler.sample("p", domain))

    def test_boundary_probability_one_yields_boundaries(self):
        sampler = ValueSampler(ReproRandom(1), boundary_probability=1.0)
        domain = RangeDomain(0, 100)
        values = {sampler.sample("p", domain) for _ in range(50)}
        assert values <= set(domain.boundary_values())

    def test_invalid_boundary_probability(self):
        import pytest
        with pytest.raises(ValueError):
            ValueSampler(ReproRandom(), boundary_probability=1.5)

    def test_can_sample(self, rng):
        bindings = TypeBinding({"Widget": lambda r: Widget()})
        sampler = ValueSampler(rng, bindings=bindings)
        assert sampler.can_sample(RangeDomain(0, 1))
        assert sampler.can_sample(ObjectDomain("Widget"))
        assert not sampler.can_sample(ObjectDomain("Unknown"))


class TestTypeBinding:
    def test_bind_and_lookup(self):
        binding = TypeBinding().bind("Widget", lambda r: Widget())
        assert "Widget" in binding
        assert binding.factory_for("Widget") is not None
        assert binding.factory_for("Other") is None

    def test_covers(self):
        binding = TypeBinding({"Widget": lambda r: Widget()})
        assert binding.covers(RangeDomain(0, 1))
        assert binding.covers(ObjectDomain("Widget"))
        assert binding.covers(PointerDomain(ObjectDomain("Widget")))
        assert not binding.covers(ObjectDomain("Ghost"))

    def test_domain_embedded_factory_covers(self):
        domain = ObjectDomain("Widget", factory=lambda r: Widget())
        assert TypeBinding().covers(domain)


class TestHole:
    def test_describe(self):
        hole = Hole("prv", PointerDomain(ObjectDomain("Widget")))
        text = hole.describe()
        assert "prv" in text and "Widget" in text

    def test_is_hole(self):
        assert is_hole(Hole("p", ObjectDomain("X")))
        assert not is_hole(None)
        assert not is_hole(42)
