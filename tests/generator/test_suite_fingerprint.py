"""Regression: suite fingerprints are pure functions of (spec, seed).

The cache key would be worthless if ``TestSuite.fingerprint`` leaked
wall-clock time or object identity (``id()``/``repr`` addresses) into the
hash — every run would be a cold run.  Same spec + same seed must yield
the same fingerprint across independently generated suite objects and
across processes; any content change must move it.
"""

from __future__ import annotations

import subprocess
import sys
from dataclasses import replace

from repro.components import CSortableObList
from repro.generator.driver import DriverGenerator

SEED = 20010701


def fresh_suite(seed: int = SEED):
    return DriverGenerator(CSortableObList.__tspec__, seed=seed).generate()


class TestFingerprintDeterminism:
    def test_same_spec_and_seed_same_fingerprint(self):
        first = fresh_suite()
        second = fresh_suite()
        assert first is not second
        assert first.fingerprint() == second.fingerprint()

    def test_fingerprint_is_stable_within_one_object(self):
        suite = fresh_suite()
        assert suite.fingerprint() == suite.fingerprint()

    def test_different_seed_different_fingerprint(self):
        assert fresh_suite(SEED).fingerprint() != fresh_suite(SEED + 1).fingerprint()

    def test_fingerprint_survives_process_boundary(self):
        """No ``id()``/address/wall-clock leakage: a subprocess computing the
        same suite's fingerprint must agree byte-for-byte."""
        program = (
            "from repro.components import CSortableObList\n"
            "from repro.generator.driver import DriverGenerator\n"
            f"suite = DriverGenerator(CSortableObList.__tspec__, seed={SEED}).generate()\n"
            "print(suite.fingerprint())\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, check=True,
        )
        assert completed.stdout.strip() == fresh_suite().fingerprint()


class TestFingerprintSensitivity:
    def test_dropping_a_case_changes_fingerprint(self):
        suite = fresh_suite()
        truncated = replace(suite, cases=suite.cases[:-1])
        assert truncated.fingerprint() != suite.fingerprint()

    def test_changing_one_argument_changes_fingerprint(self):
        suite = fresh_suite()
        case_index, step_index, step = next(
            (ci, si, step)
            for ci, case in enumerate(suite.cases)
            for si, step in enumerate(case.steps)
            if step.arguments and isinstance(step.arguments[0], int)
        )
        case = suite.cases[case_index]
        perturbed_case = replace(
            case,
            steps=case.steps[:step_index]
            + (replace(step, arguments=(step.arguments[0] + 1,)
                       + step.arguments[1:]),)
            + case.steps[step_index + 1:],
        )
        perturbed = replace(
            suite,
            cases=suite.cases[:case_index] + (perturbed_case,)
            + suite.cases[case_index + 1:],
        )
        assert perturbed.fingerprint() != suite.fingerprint()

    def test_seed_field_is_part_of_the_content(self):
        suite = fresh_suite()
        relabeled = replace(suite, seed=suite.seed + 1)
        assert relabeled.fingerprint() != suite.fingerprint()
