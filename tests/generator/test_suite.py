"""Tests for TestSuite derivation operations."""

from __future__ import annotations

import pytest

from repro.components import PRODUCT_SPEC, STACK_SPEC, Provider
from repro.generator.driver import DriverGenerator
from repro.generator.values import TypeBinding


@pytest.fixture
def stack_suite():
    return DriverGenerator(STACK_SPEC).generate()


class TestViews:
    def test_transactions_deduplicated(self, stack_suite):
        idents = [t.ident for t in stack_suite.transactions]
        assert len(idents) == len(set(idents))

    def test_all_new_initially(self, stack_suite):
        assert stack_suite.new_cases == stack_suite.cases
        assert stack_suite.reused_cases == ()

    def test_cases_for_transaction(self, stack_suite):
        transaction = stack_suite.transactions[0]
        cases = stack_suite.cases_for_transaction(transaction)
        assert cases
        assert all(case.transaction.ident == transaction.ident for case in cases)

    def test_stats_and_summary(self, stack_suite):
        stats = stack_suite.stats()
        assert stats["cases"] == len(stack_suite)
        assert str(stats["cases"]) in stack_suite.summary()


class TestDerivation:
    def test_filtered(self, stack_suite):
        short = stack_suite.filtered(lambda case: len(case) <= 3)
        assert all(len(case) <= 3 for case in short.cases)
        assert len(short) < len(stack_suite)

    def test_only_and_without_transactions_partition(self, stack_suite):
        chosen = [stack_suite.transactions[0].ident]
        inside = stack_suite.only_transactions(chosen)
        outside = stack_suite.without_transactions(chosen)
        assert len(inside) + len(outside) == len(stack_suite)
        assert all(c.transaction.ident in chosen for c in inside.cases)
        assert all(c.transaction.ident not in chosen for c in outside.cases)

    def test_merged_with(self, stack_suite):
        renumbered = stack_suite.renumbered("X")
        merged = stack_suite.merged_with(renumbered)
        assert len(merged) == 2 * len(stack_suite)

    def test_merge_collision_rejected(self, stack_suite):
        with pytest.raises(ValueError, match="duplicate"):
            stack_suite.merged_with(stack_suite)

    def test_marked_reused(self, stack_suite):
        reused = stack_suite.marked_reused()
        assert all(case.origin == "reused" for case in reused.cases)
        assert reused.new_cases == ()

    def test_renumbered(self, stack_suite):
        renumbered = stack_suite.renumbered("Z")
        assert [case.ident for case in renumbered.cases] == [
            f"Z{i}" for i in range(len(stack_suite))
        ]


class TestCompletion:
    def test_completed_fills_known_holes(self):
        suite = DriverGenerator(PRODUCT_SPEC).generate()
        assert not suite.is_executable
        bindings = TypeBinding({"Provider": lambda rng: Provider("x", 1)})
        completed = suite.completed(bindings)
        assert completed.is_executable

    def test_unknown_holes_left_in_place(self):
        suite = DriverGenerator(PRODUCT_SPEC).generate()
        completed = suite.completed(TypeBinding())
        assert len(completed.incomplete_cases) == len(suite.incomplete_cases)

    def test_completion_is_deterministic(self):
        suite = DriverGenerator(PRODUCT_SPEC).generate()
        bindings = TypeBinding({
            "Provider": lambda rng: Provider("p", rng.randint(0, 10**6)),
        })
        first = suite.completed(bindings)
        second = suite.completed(bindings)
        first_codes = [
            argument.code
            for case in first.cases
            for step in case.steps
            for argument in step.arguments
            if isinstance(argument, Provider)
        ]
        second_codes = [
            argument.code
            for case in second.cases
            for step in case.steps
            for argument in step.arguments
            if isinstance(argument, Provider)
        ]
        assert first_codes and first_codes == second_codes
