"""Tests for the BoundedStack and BankAccount demo components."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.components.account import BankAccount, MAX_AMOUNT
from repro.components.stack import DEFAULT_CAPACITY, MAX_CAPACITY, BoundedStack
from repro.core.errors import (
    InvariantViolation,
    PostconditionViolation,
    PreconditionViolation,
)


class TestBoundedStack:
    def test_lifo(self):
        stack = BoundedStack(4)
        for value in (1, 2, 3):
            assert stack.Push(value)
        assert stack.Pop() == 3
        assert stack.Peek() == 2
        assert stack.Size() == 2

    def test_full_push_dropped(self):
        stack = BoundedStack(1)
        assert stack.Push(1)
        assert not stack.Push(2)
        assert stack.Size() == 1
        assert stack.IsFull()

    def test_empty_pop_peek(self):
        stack = BoundedStack()
        assert stack.Pop() is None
        assert stack.Peek() is None
        assert stack.IsEmpty()

    def test_clear(self):
        stack = BoundedStack()
        stack.Push(1)
        stack.Push(2)
        assert stack.Clear() == 2
        assert stack.IsEmpty()

    def test_capacity_clamped(self):
        assert BoundedStack(0)._capacity == 1
        assert BoundedStack(10**6)._capacity == MAX_CAPACITY
        assert BoundedStack()._capacity == DEFAULT_CAPACITY

    def test_capacity_precondition_in_test_mode(self, in_test_mode):
        with pytest.raises(PreconditionViolation):
            BoundedStack(0)

    def test_invariant(self, in_test_mode):
        stack = BoundedStack(2)
        stack.Push(1)
        stack.invariant_test()
        stack._items.extend([2, 3, 4])  # overflow behind the API's back
        with pytest.raises(InvariantViolation):
            stack.invariant_test()

    def test_push_postcondition_on_seeded_fault(self, in_test_mode):
        class Lossy(BoundedStack):
            pass

        stack = Lossy(4)
        # Sabotage append so the postcondition (size grew) fails.
        class FakeList(list):
            def append(self, item):
                pass

        stack._items = FakeList()
        with pytest.raises(PostconditionViolation):
            stack.Push(1)

    def test_bit_state(self):
        stack = BoundedStack(3)
        stack.Push(9)
        assert stack.bit_state() == {"capacity": 3, "items": [9]}

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.sampled_from(["push", "pop", "clear"]), max_size=40),
           st.integers(1, 8))
    def test_never_exceeds_capacity(self, script, capacity):
        stack = BoundedStack(capacity)
        for operation in script:
            if operation == "push":
                stack.Push(1)
            elif operation == "pop":
                stack.Pop()
            else:
                stack.Clear()
            assert 0 <= stack.Size() <= capacity
            assert stack.class_invariant()


class TestBankAccount:
    def test_deposit_withdraw(self):
        account = BankAccount("ada", 100)
        assert account.Deposit(50) == 150
        assert account.Withdraw(30) == 30
        assert account.GetBalance() == 120

    def test_uncovered_withdrawal_refused(self):
        account = BankAccount("ada", 10)
        assert account.Withdraw(50) == 0
        assert account.Withdraw(-5) == 0
        assert account.GetBalance() == 10

    def test_ledger(self):
        account = BankAccount("ada", 5)
        account.Deposit(10)
        account.Withdraw(3)
        assert account.History() == (("open", 5), ("deposit", 10), ("withdraw", 3))

    def test_owner_defaults(self):
        assert BankAccount("").GetOwner() == "anonymous"
        assert BankAccount("bob").GetOwner() == "bob"

    def test_negative_opening_clamped(self):
        assert BankAccount("x", -50).GetBalance() == 0

    def test_deposit_precondition(self, in_test_mode):
        account = BankAccount()
        with pytest.raises(PreconditionViolation):
            account.Deposit(0)
        with pytest.raises(PreconditionViolation):
            account.Deposit(MAX_AMOUNT + 1)

    def test_invariant_ties_ledger_to_balance(self, in_test_mode):
        account = BankAccount("ada", 10)
        account.invariant_test()
        account.balance += 1  # ledger no longer matches
        with pytest.raises(InvariantViolation):
            account.invariant_test()

    def test_bit_state(self):
        account = BankAccount("ada", 5)
        assert account.bit_state() == {"owner": "ada", "balance": 5, "entries": 1}

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["deposit", "withdraw"]),
                              st.integers(1, 500)), max_size=30))
    def test_balance_never_negative(self, script):
        account = BankAccount("prop", 100)
        for operation, amount in script:
            if operation == "deposit":
                account.Deposit(amount)
            else:
                account.Withdraw(amount)
            assert account.GetBalance() >= 0
            assert account.class_invariant()
