"""Tests for the MFC-style CObList, incl. a hypothesis model check."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.components.oblist import BLOCK_SIZE, CObList


@pytest.fixture
def filled():
    target = CObList()
    for value in (10, 20, 30):
        target.AddTail(value)
    return target


class TestInsertion:
    def test_addhead_prepends(self):
        target = CObList()
        assert target.AddHead(1) == 0
        assert target.AddHead(2) == 0
        assert target._values() == [2, 1]

    def test_addtail_appends(self):
        target = CObList()
        assert target.AddTail(1) == 0
        assert target.AddTail(2) == 1
        assert target._values() == [1, 2]

    def test_insert_before_middle(self, filled):
        position = filled.InsertBefore(1, 15)
        assert position == 1
        assert filled._values() == [10, 15, 20, 30]

    def test_insert_after_middle(self, filled):
        position = filled.InsertAfter(0, 15)
        assert position == 1
        assert filled._values() == [10, 15, 20, 30]

    def test_insert_before_clamps_to_ends(self, filled):
        filled.InsertBefore(-3, 5)
        assert filled.GetHead() == 5
        filled.InsertBefore(99, 35)
        assert filled.GetTail() == 35

    def test_insert_after_clamps_to_ends(self, filled):
        filled.InsertAfter(99, 35)
        assert filled.GetTail() == 35
        filled.InsertAfter(-5, 5)
        assert filled.GetHead() == 5

    def test_insert_into_empty(self):
        target = CObList()
        target.InsertBefore(0, 1)
        assert target._values() == [1]


class TestRemoval:
    def test_remove_head(self, filled):
        assert filled.RemoveHead() == 10
        assert filled._values() == [20, 30]
        assert filled.GetCount() == 2

    def test_remove_tail(self, filled):
        assert filled.RemoveTail() == 30
        assert filled._values() == [10, 20]

    def test_remove_at(self, filled):
        assert filled.RemoveAt(1) == 20
        assert filled._values() == [10, 30]

    def test_remove_last_element(self):
        target = CObList()
        target.AddHead(1)
        assert target.RemoveHead() == 1
        assert target.IsEmpty()
        assert target.GetHead() is None and target.GetTail() is None

    def test_graceful_empty_removal(self):
        target = CObList()
        assert target.RemoveHead() is None
        assert target.RemoveTail() is None
        assert target.RemoveAt(0) is None
        assert target.GetCount() == 0

    def test_remove_at_out_of_range(self, filled):
        assert filled.RemoveAt(-1) is None
        assert filled.RemoveAt(3) is None
        assert filled.GetCount() == 3

    def test_remove_all(self, filled):
        assert filled.RemoveAll() == 3
        assert filled.IsEmpty()
        assert filled.RemoveAll() == 0


class TestAccess:
    def test_get_head_tail(self, filled):
        assert filled.GetHead() == 10
        assert filled.GetTail() == 30

    def test_get_at(self, filled):
        assert [filled.GetAt(i) for i in range(3)] == [10, 20, 30]
        assert filled.GetAt(-1) is None
        assert filled.GetAt(3) is None

    def test_set_at(self, filled):
        assert filled.SetAt(1, 99)
        assert filled.GetAt(1) == 99
        assert not filled.SetAt(5, 0)

    def test_find(self, filled):
        assert filled.Find(20) == 1
        assert filled.Find(99) == -1

    def test_find_with_start(self):
        target = CObList()
        for value in (7, 8, 7, 9):
            target.AddTail(value)
        assert target.Find(7) == 0
        assert target.Find(7, start=1) == 2
        assert target.Find(7, start=3) == -1
        assert target.Find(7, start=-5) == 0

    def test_count_and_len(self, filled):
        assert filled.GetCount() == 3
        assert len(filled) == 3

    def test_repr(self, filled):
        assert "[10, 20, 30]" in repr(filled)


class TestNodePool:
    def test_removal_recycles_nodes(self):
        target = CObList()
        target.AddHead(1)
        target.RemoveHead()
        assert target._free is not None
        assert target._free_count >= 1

    def test_block_allocation_on_dry_pool(self):
        target = CObList(block_size=4)
        target.AddHead(1)  # pool dry: a block of spares is created
        assert target._blocks == 1
        assert target._free_count == 3

    def test_pool_reuse_before_allocation(self):
        target = CObList(block_size=4)
        target.AddHead(1)
        blocks_after_first = target._blocks
        target.AddHead(2)  # must come from the pool
        assert target._blocks == blocks_after_first

    def test_default_block_size(self):
        assert CObList()._block_size == BLOCK_SIZE

    def test_pool_invisible_to_reporter(self):
        target = CObList()
        target.AddHead(1)
        assert set(target.bit_state()) == {"count", "values"}


class TestBuiltInTest:
    def test_invariant_holds_through_operations(self, filled, in_test_mode):
        filled.invariant_test()
        filled.RemoveAt(1)
        filled.invariant_test()

    def test_weak_invariant_is_mfc_shaped(self):
        # MFC's AssertValid does not walk the chain: a broken interior link
        # passes the invariant (but fails deep_check).
        target = CObList()
        for value in (1, 2, 3):
            target.AddTail(value)
        target._head.next.prev = None  # corrupt an interior link
        assert target.class_invariant()
        assert not target.deep_check()

    def test_invariant_rejects_null_head_with_count(self):
        target = CObList()
        target._count = 3
        assert not target.class_invariant()

    def test_deep_check_validates_count(self):
        target = CObList()
        target.AddTail(1)
        target._count = 2
        assert not target.deep_check()

    def test_bit_state(self, filled):
        state = filled.bit_state()
        assert state == {"count": 3, "values": [10, 20, 30]}

    def test_traversal_cap_on_cyclic_list(self):
        target = CObList()
        target.AddTail(1)
        target.AddTail(2)
        target._tail.next = target._head  # make it cyclic
        values = target._values()
        assert values[-1] == "<traversal cap reached>"
        assert len(values) == target._TRAVERSAL_CAP + 1


# ---------------------------------------------------------------------------
# Hypothesis: CObList behaves like a Python list
# ---------------------------------------------------------------------------

operations = st.lists(
    st.one_of(
        st.tuples(st.just("addhead"), st.integers(-50, 50)),
        st.tuples(st.just("addtail"), st.integers(-50, 50)),
        st.tuples(st.just("removehead"), st.none()),
        st.tuples(st.just("removetail"), st.none()),
        st.tuples(st.just("removeat"), st.integers(0, 6)),
        st.tuples(st.just("insertbefore"), st.tuples(st.integers(0, 6),
                                                     st.integers(-50, 50))),
    ),
    max_size=30,
)


@settings(max_examples=120, deadline=None)
@given(operations)
def test_oblist_matches_python_list_model(script):
    target = CObList()
    model = []
    for operation, argument in script:
        if operation == "addhead":
            target.AddHead(argument)
            model.insert(0, argument)
        elif operation == "addtail":
            target.AddTail(argument)
            model.append(argument)
        elif operation == "removehead":
            expected = model.pop(0) if model else None
            assert target.RemoveHead() == expected
        elif operation == "removetail":
            expected = model.pop() if model else None
            assert target.RemoveTail() == expected
        elif operation == "removeat":
            expected = model.pop(argument) if argument < len(model) else None
            assert target.RemoveAt(argument) == expected
        elif operation == "insertbefore":
            position, value = argument
            if position <= 0 or not model:
                model.insert(0, value)
            elif position >= len(model):
                model.append(value)
            else:
                model.insert(position, value)
            target.InsertBefore(position, value)
        assert target._values() == model
        assert target.GetCount() == len(model)
        assert target.deep_check()
