"""Tests for the Product/Provider components and the database substrate."""

from __future__ import annotations

import pytest

from repro.components.product import (
    DATABASE,
    NAME_MAX_LENGTH,
    Product,
    ProductDatabase,
    Provider,
    QTY_MAX,
    QTY_MIN,
    reset_database,
)
from repro.core.errors import InvariantViolation


class TestConstructorOverloads:
    def test_default(self):
        product = Product()
        assert product.qty == QTY_MIN
        assert product.name == "unnamed"
        assert product.prov is None

    def test_named(self):
        product = Product("soap")
        assert product.name == "soap"
        assert product.qty == QTY_MIN

    def test_full(self):
        provider = Provider("acme", 7)
        product = Product(12, "soap", 2.5, provider)
        assert (product.qty, product.name, product.price) == (12, "soap", 2.5)
        assert product.prov == provider

    def test_wrong_arity_rejected(self):
        with pytest.raises(TypeError, match="0, 1 or 4"):
            Product(1, "x")


class TestUpdates:
    def test_update_name_truncates(self):
        product = Product()
        product.UpdateName("y" * 50)
        assert len(product.name) == NAME_MAX_LENGTH

    def test_update_name_rejects_empty(self):
        product = Product("x")
        product.UpdateName("")
        assert product.name == "unnamed"

    def test_update_qty_clamps(self):
        product = Product()
        product.UpdateQty(-5)
        assert product.qty == QTY_MIN
        product.UpdateQty(10**9)
        assert product.qty == QTY_MAX

    def test_update_price_clamps(self):
        product = Product()
        product.UpdatePrice(-1.0)
        assert product.price == 0.0

    def test_update_prov(self):
        product = Product()
        provider = Provider()
        product.UpdateProv(provider)
        assert product.prov is provider
        product.UpdateProv(None)
        assert product.prov is None

    def test_update_prov_type_checked(self):
        with pytest.raises(TypeError):
            Product().UpdateProv("not a provider")  # type: ignore[arg-type]


class TestShowAttributes:
    def test_contains_all_fields(self):
        product = Product(3, "soap", 1.5, Provider("acme", 1))
        text = product.ShowAttributes()
        assert "soap" in text and "3" in text and "1.50" in text and "acme" in text

    def test_without_provider(self):
        assert "<none>" in Product().ShowAttributes()


class TestDatabaseLifecycle:
    def test_insert_and_remove(self):
        product = Product("soap")
        assert product.InsertProduct() == 1
        assert DATABASE.count() == 1
        assert product.RemoveProduct() is product
        assert DATABASE.count() == 0

    def test_duplicate_insert_rejected(self):
        first = Product("soap")
        second = Product("soap")
        assert first.InsertProduct() == 1
        assert second.InsertProduct() == 0

    def test_remove_absent_returns_none(self):
        assert Product("ghost").RemoveProduct() is None

    def test_use_case_scenario(self):
        """The sec.-3.2 scenario: create, obtain data, remove, destroy."""
        product = Product(5, "bolts", 0.1, Provider("acme", 3))
        product.InsertProduct()
        assert "bolts" in product.ShowAttributes()
        assert product.RemoveProduct() is product

    def test_rename_after_insert_strands_row(self):
        # Documented behaviour: the row is keyed by the insert-time name.
        product = Product("old")
        product.InsertProduct()
        product.UpdateName("new")
        assert product.RemoveProduct() is None
        assert DATABASE.lookup("old") is not None


class TestProductDatabase:
    def test_lookup_returns_copy(self):
        database = ProductDatabase()
        database.insert(Product("x"))
        row = database.lookup("x")
        row["qty"] = 999
        assert database.lookup("x")["qty"] != 999

    def test_clear(self):
        database = ProductDatabase()
        database.insert(Product("x"))
        database.clear()
        assert database.count() == 0

    def test_reset_database_helper(self):
        Product("x").InsertProduct()
        reset_database()
        assert DATABASE.count() == 0


class TestContracts:
    def test_invariant_holds_on_fresh_product(self, in_test_mode):
        Product().invariant_test()
        Product(5, "x", 1.0, Provider()).invariant_test()

    def test_invariant_rejects_bad_qty(self, in_test_mode):
        product = Product()
        product.qty = 0
        with pytest.raises(InvariantViolation):
            product.invariant_test()

    def test_invariant_rejects_bad_name(self, in_test_mode):
        product = Product()
        product.name = ""
        with pytest.raises(InvariantViolation):
            product.invariant_test()

    def test_provider_invariant(self, in_test_mode):
        Provider("acme", 1).invariant_test()
        broken = Provider("acme", 1)
        broken.code = -2
        with pytest.raises(InvariantViolation):
            broken.invariant_test()

    def test_bit_state(self):
        state = Product("soap").bit_state()
        assert state["name"] == "soap"
        assert state["inserted"] is False


class TestProviderValue:
    def test_equality_and_hash(self):
        assert Provider("a", 1) == Provider("a", 1)
        assert Provider("a", 1) != Provider("a", 2)
        assert hash(Provider("a", 1)) == hash(Provider("a", 1))

    def test_repr(self):
        assert "acme" in repr(Provider("acme", 5))
