"""Tests for CSortableObList, incl. hypothesis sorting properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.components.sortable_oblist import CSortableObList
from repro.core.errors import PostconditionViolation


def list_of(*values) -> CSortableObList:
    target = CSortableObList()
    for value in values:
        target.AddTail(value)
    return target


SORT_METHODS = ("Sort1", "Sort2", "ShellSort")


class TestSorts:
    @pytest.mark.parametrize("method", SORT_METHODS)
    def test_sorts_values(self, method):
        target = list_of(5, -3, 9, 0, 5, 2)
        getattr(target, method)()
        assert target._values() == [-3, 0, 2, 5, 5, 9]

    @pytest.mark.parametrize("method", SORT_METHODS)
    def test_empty_and_singleton(self, method):
        empty = CSortableObList()
        assert getattr(empty, method)() == 0
        single = list_of(7)
        getattr(single, method)()
        assert single._values() == [7]

    @pytest.mark.parametrize("method", SORT_METHODS)
    def test_already_sorted_moves_nothing(self, method):
        target = list_of(1, 2, 3, 4)
        assert getattr(target, method)() == 0

    @pytest.mark.parametrize("method", SORT_METHODS)
    def test_structure_preserved(self, method):
        target = list_of(3, 1, 2)
        getattr(target, method)()
        assert target.GetCount() == 3
        assert target.deep_check()

    def test_sort1_counts_shifts(self):
        # Reverse order maximises insertion-sort shifting: n*(n-1)/2.
        target = list_of(4, 3, 2, 1)
        assert target.Sort1() == 6

    def test_sort2_counts_swaps(self):
        target = list_of(2, 1)
        assert target.Sort2() == 1

    def test_shellsort_counts_moves(self):
        target = list_of(3, 2, 1)
        assert target.ShellSort() > 0

    @pytest.mark.parametrize("method", SORT_METHODS)
    def test_postcondition_fires_on_seeded_fault(self, method, in_test_mode):
        class Broken(CSortableObList):
            def IsSorted(self):
                return False  # seeded oracle fault

        target = Broken()
        target.AddTail(2)
        target.AddTail(1)
        with pytest.raises(PostconditionViolation, match=method):
            getattr(target, method)()


class TestExtrema:
    def test_findmax_min_positions(self):
        target = list_of(3, 9, -2, 9)
        assert target.FindMax() == 1  # first maximum
        assert target.FindMin() == 2

    def test_empty_returns_minus_one(self):
        empty = CSortableObList()
        assert empty.FindMax() == -1
        assert empty.FindMin() == -1

    def test_single_element(self):
        assert list_of(5).FindMax() == 0
        assert list_of(5).FindMin() == 0

    def test_sorted_list_extrema_at_ends(self):
        target = list_of(4, 1, 3)
        target.Sort1()
        assert target.FindMin() == 0
        assert target.FindMax() == target.GetCount() - 1


class TestIsSorted:
    def test_detects_order(self):
        assert list_of(1, 2, 2, 3).IsSorted()
        assert not list_of(2, 1).IsSorted()
        assert CSortableObList().IsSorted()
        assert list_of(9).IsSorted()


class TestInheritance:
    def test_is_a_coblist(self):
        from repro.components.oblist import CObList

        assert issubclass(CSortableObList, CObList)
        target = list_of(2, 1)
        assert target.RemoveHead() == 2  # inherited behaviour intact

    def test_harrold_constraints_hold(self):
        from repro.components.oblist import CObList
        from repro.history.diff import classify_methods

        diff = classify_methods(CObList, CSortableObList)
        assert diff.violations == ()
        from repro.history.diff import MethodChange
        assert "Sort1" in diff.methods_with(MethodChange.NEW)


# ---------------------------------------------------------------------------
# Hypothesis: all three sorts agree with sorted()
# ---------------------------------------------------------------------------

values_lists = st.lists(st.integers(-100, 100), max_size=25)


@settings(max_examples=100, deadline=None)
@given(values_lists, st.sampled_from(SORT_METHODS))
def test_sorts_agree_with_python_sorted(values, method):
    target = CSortableObList()
    for value in values:
        target.AddTail(value)
    getattr(target, method)()
    assert target._values() == sorted(values)
    assert target.IsSorted()
    assert target.GetCount() == len(values)
    assert target.deep_check()


@settings(max_examples=60, deadline=None)
@given(values_lists)
def test_extrema_agree_with_python(values):
    target = CSortableObList()
    for value in values:
        target.AddTail(value)
    if not values:
        assert target.FindMax() == -1 and target.FindMin() == -1
    else:
        assert values[target.FindMax()] == max(values)
        assert values[target.FindMin()] == min(values)
        assert target.FindMax() == values.index(max(values))
        assert target.FindMin() == values.index(min(values))
