"""Tests for the embedded t-specs: validity, paper-scale, green suites."""

from __future__ import annotations

import pytest

from repro.components import (
    ACCOUNT_SPEC,
    BankAccount,
    BoundedStack,
    CObList,
    CSortableObList,
    OBLIST_SPEC,
    OBLIST_TYPE_MODEL,
    PRODUCT_SPEC,
    PROVIDER_SPEC,
    Product,
    Provider,
    SORTABLE_OBLIST_SPEC,
    STACK_SPEC,
)
from repro.generator.driver import DriverGenerator
from repro.generator.values import TypeBinding
from repro.harness.executor import TestExecutor
from repro.tspec.validate import find_problems

ALL = (
    (CObList, OBLIST_SPEC),
    (CSortableObList, SORTABLE_OBLIST_SPEC),
    (Product, PRODUCT_SPEC),
    (Provider, PROVIDER_SPEC),
    (BoundedStack, STACK_SPEC),
    (BankAccount, ACCOUNT_SPEC),
)


class TestEmbedding:
    @pytest.mark.parametrize("component, spec", ALL,
                             ids=lambda item: getattr(item, "__name__", ""))
    def test_spec_attached_and_valid(self, component, spec):
        assert component.__tspec__ is spec
        assert find_problems(spec) == []
        assert spec.name == component.__name__

    def test_every_spec_method_exists_on_class(self):
        for component, spec in ALL:
            for method in spec.methods:
                if method.is_constructor or method.is_destructor:
                    continue
                attribute = getattr(component, method.name, None)
                assert callable(attribute), (
                    f"{component.__name__} is missing {method.name}"
                )

    def test_components_are_self_testable(self):
        from repro.bit.builtintest import is_self_testable

        for component, _ in ALL:
            assert is_self_testable(component)


class TestPaperScale:
    def test_sortable_model_is_16_nodes_43_links(self):
        counts = SORTABLE_OBLIST_SPEC.stats()
        assert counts["nodes"] == 16
        assert counts["links"] == 43

    def test_subclass_spec_names_superclass(self):
        assert SORTABLE_OBLIST_SPEC.superclass == "CObList"

    def test_suite_sizes_near_paper(self):
        base = DriverGenerator(OBLIST_SPEC).generate()
        subclass = DriverGenerator(SORTABLE_OBLIST_SPEC).generate()
        # Paper totals: 329 reused (base-shaped) + 233 new = 562.
        assert 200 <= len(base) <= 450
        assert 450 <= len(subclass) <= 850

    def test_type_model_covers_all_attributes(self):
        from repro.mutation.operators.base import infer_attribute_universe

        universe = infer_attribute_universe(CSortableObList)
        assert universe <= set(OBLIST_TYPE_MODEL.attribute_types)


def provider_binding():
    return TypeBinding({"Provider": lambda rng: Provider("p", rng.randint(0, 99))})


class TestGeneratedSuitesGreen:
    @pytest.mark.parametrize("component", [
        CObList, CSortableObList, BoundedStack, BankAccount,
    ], ids=lambda c: c.__name__)
    def test_simple_components_green(self, component):
        suite = DriverGenerator(component.__tspec__).generate()
        result = TestExecutor(component).run_suite(suite)
        assert result.all_passed, result.summary()

    def test_product_green_with_bound_provider(self):
        suite = DriverGenerator(
            PRODUCT_SPEC, bindings=provider_binding()
        ).generate()
        assert suite.is_executable
        result = TestExecutor(Product).run_suite(suite)
        assert result.all_passed, result.summary()

    def test_product_without_binding_reports_incomplete(self):
        suite = DriverGenerator(PRODUCT_SPEC).generate()
        result = TestExecutor(Product).run_suite(suite)
        from repro.harness.outcomes import Verdict
        incompletes = result.by_verdict(Verdict.INCOMPLETE)
        assert len(incompletes) == len(suite.incomplete_cases)
        assert not result.by_verdict(Verdict.CRASH)
