"""Integration tests over the frozen experiment modules (quick variants).

Full experiment runs live in ``benchmarks/``; here we verify the experiment
plumbing and the *shape* claims on reduced configurations so the test suite
stays fast.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    OPERATOR_DEFINITIONS,
    figure1_product_interface,
    figure2_product_tfm,
    figure3_tspec_roundtrip,
    figure45_bit_demo,
    figure67_generated_driver,
    edge_bound_ablation,
    incremental_plan,
    run_table1,
    test_mode_overhead as _test_mode_overhead,
)


class TestTable1:
    def test_all_operators_demonstrated(self):
        result = run_table1()
        assert len(result.demos) == 5
        for demo in result.demos:
            assert demo.typed_mutants > 0
            assert demo.untyped_mutants >= demo.typed_mutants
            assert demo.definition == OPERATOR_DEFINITIONS[demo.operator]
            assert demo.example != "<no mutants>"

    def test_format_contains_table_header(self):
        assert "Table 1" in run_table1().format()

    def test_demo_lookup(self):
        result = run_table1()
        assert result.demo_for("IndVarBitNeg").operator == "IndVarBitNeg"
        with pytest.raises(KeyError):
            result.demo_for("Bogus")


class TestFigures:
    def test_figure1_interface(self):
        text = figure1_product_interface()
        assert "Product" in text
        assert "constructor" in text
        assert "UpdateQty" in text

    def test_figure2_tfm(self):
        result = figure2_product_tfm()
        assert result.metrics.nodes == 6
        assert result.use_case_path.length == 4  # create → show → remove → destroy
        assert "*" in result.ascii_rendering
        assert "digraph" in result.dot_rendering
        assert result.transaction_count > 10

    def test_figure3_roundtrip(self):
        text, roundtrips = figure3_tspec_roundtrip()
        assert roundtrips
        assert "Class ('Product'" in text

    def test_figure45_bit(self):
        result = figure45_bit_demo()
        assert set(result.violations_in_test_mode) == {"pre", "post", "invariant"}
        assert result.silent_outside_test_mode
        assert result.bit_blocked_outside_test_mode
        assert result.reporter_state["reading"] == 3

    def test_figure67_driver(self):
        result = figure67_generated_driver(max_cases=8)
        assert result.test_case_count == 8
        assert result.passed == 8
        assert result.failed == 0
        assert "def test_case_" in result.driver_source


class TestIncrementalPlanShape:
    def test_paper_shape(self):
        plan = incremental_plan()
        stats = plan.stats()
        # New and reused pools both substantial (paper: 233 / 329).
        assert stats["new_cases"] > 100
        assert stats["reused_cases"] > 100
        assert stats["executed_cases"] == stats["new_cases"]


class TestAblationPlumbing:
    def test_edge_bound_rows_monotone(self):
        rows = edge_bound_ablation(bounds=(1, 2))
        by_class = {}
        for row in rows:
            by_class.setdefault(row.class_name, []).append(row.transactions)
        for counts in by_class.values():
            assert counts[0] < counts[1]

    def test_overhead_production_is_free(self):
        # The identity claim is what matters (timing is noisy in CI): the
        # production build IS the original class, so its cost is the plain
        # cost by construction.
        from repro.bit.instrument import compile_component
        from repro.components import BoundedStack

        assert compile_component(BoundedStack, test_mode=False) is BoundedStack
        result = _test_mode_overhead(rounds=300)
        assert result.plain_seconds > 0
        # Instrumentation in test mode does real work: measurably slower.
        assert result.instrumented_on_seconds > result.plain_seconds
        assert "test-mode overhead" in result.format()
