"""Integration tests: the full self-testable component lifecycle.

These cross-module tests exercise the producer and consumer workflows of
sec. 3.1 end to end — construct the t-spec, instrument, generate, execute,
analyse — plus a miniature mutation study, on components small enough to
run in seconds.
"""

from __future__ import annotations

import pytest

from repro.bit import access
from repro.bit.instrument import compile_component, instrument, tracer_of
from repro.core.domains import RangeDomain
from repro.generator.codegen import generate_driver_source
from repro.generator.driver import DriverGenerator
from repro.harness.executor import TestExecutor
from repro.harness.logfile import ResultLog
from repro.harness.oracles import paper_oracle
from repro.harness.outcomes import Verdict
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.generate import generate_mutants
from repro.tspec.builder import SpecBuilder
from repro.tspec.parser import parse_tspec
from repro.tspec.writer import write_tspec


class Thermostat:
    """A component written by a 'producer' without any repro imports."""

    def __init__(self, target: int = 20):
        self.target = int(target)
        self.heating = False

    def SetTarget(self, degrees: int) -> None:
        bounded = max(5, min(int(degrees), 30))
        self.target = bounded

    def Tick(self, ambient: int) -> bool:
        self.heating = ambient < self.target
        return self.heating

    def GetTarget(self) -> int:
        return self.target

    def IsHeating(self) -> bool:
        return self.heating


def thermostat_spec():
    return (
        SpecBuilder("Thermostat")
        .attribute("target", RangeDomain(5, 30))
        .constructor("Thermostat", [("target", RangeDomain(5, 30))])
        .destructor("~Thermostat")
        .method("SetTarget", [("degrees", RangeDomain(-10, 50))], category="update")
        .method("Tick", [("ambient", RangeDomain(-20, 45))], category="process",
                return_type="bool")
        .method("GetTarget", category="access", return_type="int")
        .method("IsHeating", category="access", return_type="bool")
        .node("birth", ["Thermostat"], start=True)
        .node("set", ["SetTarget"])
        .node("tick", ["Tick"])
        .node("query", ["GetTarget", "IsHeating"])
        .node("death", ["~Thermostat"])
        .chain("birth", "set", "tick", "query", "death")
        .edge("birth", "tick")
        .edge("tick", "tick")
        .edge("query", "tick")
        .edge("birth", "death")
        .build()
    )


def thermostat_invariant(self) -> bool:
    return 5 <= self.target <= 30


class TestProducerWorkflow:
    """Sec. 3.1: the three producer tasks."""

    def test_spec_construction_and_embedding(self):
        spec = thermostat_spec()
        text = write_tspec(spec)
        assert parse_tspec(text) == spec.normalized()

    def test_instrumentation(self):
        spec = thermostat_spec()
        testable = instrument(Thermostat, spec=spec,
                              invariant=thermostat_invariant)
        assert testable.__tspec__ is spec
        with access.test_mode():
            unit = testable(20)
            unit.invariant_test()
            report = unit.reporter()
            assert report.as_dict()["target"] == 20

    def test_production_build_untouched(self):
        built = compile_component(Thermostat, test_mode=False)
        assert built is Thermostat


class TestConsumerWorkflow:
    """Sec. 3.1: the four consumer tasks."""

    def test_generate_compile_execute_analyze(self):
        spec = thermostat_spec()
        testable = compile_component(
            Thermostat, test_mode=True,
            spec=spec, invariant=thermostat_invariant,
        )
        suite = DriverGenerator(spec, seed=7).generate()
        assert len(suite) >= 5  # one case per transaction, alternatives expanded

        log = ResultLog()
        result = TestExecutor(testable, log=log).run_suite(suite)
        assert result.all_passed
        assert "OK!" in log.text()

        tracer = tracer_of(testable)
        assert tracer is not None and len(tracer) > 0

    def test_faulty_component_detected(self):
        class FaultyThermostat(Thermostat):
            def SetTarget(self, degrees):
                self.target = int(degrees)  # fault: no clamping

        spec = thermostat_spec()
        testable = compile_component(
            FaultyThermostat, test_mode=True,
            spec=spec, invariant=thermostat_invariant,
        )
        suite = DriverGenerator(spec, seed=7).generate()
        result = TestExecutor(testable).run_suite(suite)
        violations = result.by_verdict(Verdict.CONTRACT_VIOLATION)
        assert violations, "the seeded fault must be caught by the invariant"
        assert any("SetTarget" in r.failing_method for r in violations)

    def test_generated_driver_module_runs(self):
        import io

        spec = thermostat_spec()
        suite = DriverGenerator(spec, seed=7).generate()
        from dataclasses import replace
        small = replace(suite, cases=suite.cases[:10])
        source = generate_driver_source(
            small, "tests.integration.test_end_to_end", "Thermostat"
        )
        namespace = {}
        exec(compile(source, "<driver>", "exec"), namespace)  # noqa: S102
        log = io.StringIO()
        with access.test_mode():
            outcomes = [
                function(Thermostat, log)
                for function in namespace["ALL_TEST_CASES"]
            ]
        assert all(outcomes)


class TestMiniMutationStudy:
    def test_detects_seeded_interface_faults(self):
        spec = thermostat_spec()
        mutants, report = generate_mutants(Thermostat, ["SetTarget", "Tick"])
        assert report.generated == len(mutants)
        assert mutants

        suite = DriverGenerator(spec, seed=7).generate()
        analysis = MutationAnalysis(Thermostat, suite, oracle=paper_oracle())
        run = analysis.analyze(mutants)
        # The thermostat's behaviour is fully observable: the suite should
        # kill a clear majority of interface mutants.
        assert len(run.killed) > 0.6 * run.total

        from repro.mutation.score import build_score_table
        table = build_score_table(run)
        assert table.total_generated == len(mutants)
        assert 0.0 < table.total_score <= 1.0
