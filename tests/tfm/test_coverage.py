"""Tests for coverage measurement and greedy criterion selections."""

from __future__ import annotations

import pytest

from repro.components import SORTABLE_OBLIST_SPEC, STACK_SPEC
from repro.tfm.coverage import (
    covered_links,
    covered_nodes,
    measure,
    select_for_link_coverage,
    select_for_node_coverage,
)
from repro.tfm.graph import TransactionFlowGraph
from repro.tfm.transactions import Transaction, enumerate_transactions


@pytest.fixture
def stack_setup():
    graph = TransactionFlowGraph(STACK_SPEC)
    return graph, enumerate_transactions(graph)


class TestCoveredSets:
    def test_covered_nodes(self):
        transactions = [Transaction(("a", "b")), Transaction(("a", "c"))]
        assert covered_nodes(transactions) == frozenset({"a", "b", "c"})

    def test_covered_links(self):
        transactions = [Transaction(("a", "b", "c"))]
        assert covered_links(transactions) == frozenset({("a", "b"), ("b", "c")})

    def test_empty(self):
        assert covered_nodes([]) == frozenset()
        assert covered_links([]) == frozenset()


class TestMeasure:
    def test_full_enumeration_covers_everything(self, stack_setup):
        graph, enumeration = stack_setup
        report = measure(graph, list(enumeration), enumeration)
        assert report.node_ratio == 1.0
        assert report.link_ratio == 1.0
        assert report.uncovered_nodes == ()
        assert report.uncovered_links == ()

    def test_partial_choice_reports_gaps(self, stack_setup):
        graph, enumeration = stack_setup
        shortest = min(enumeration, key=lambda t: t.length)
        report = measure(graph, [shortest], enumeration)
        assert report.transactions_chosen == 1
        assert report.node_ratio < 1.0
        assert report.uncovered_nodes

    def test_summary_format(self, stack_setup):
        graph, enumeration = stack_setup
        report = measure(graph, list(enumeration), enumeration)
        text = report.summary()
        assert "BoundedStack" in text
        assert "nodes" in text and "links" in text


class TestGreedySelections:
    def test_node_cover_is_complete_and_smaller(self, stack_setup):
        graph, enumeration = stack_setup
        chosen = select_for_node_coverage(enumeration)
        assert covered_nodes(chosen) >= set(graph.node_idents)
        assert len(chosen) < len(enumeration)

    def test_link_cover_is_complete(self, stack_setup):
        graph, enumeration = stack_setup
        chosen = select_for_link_coverage(enumeration)
        assert covered_links(chosen) >= set(graph.edges)

    def test_link_cover_at_least_node_cover(self, stack_setup):
        __, enumeration = stack_setup
        node_chosen = select_for_node_coverage(enumeration)
        link_chosen = select_for_link_coverage(enumeration)
        assert len(link_chosen) >= len(node_chosen)

    def test_on_experiment_model(self):
        graph = TransactionFlowGraph(SORTABLE_OBLIST_SPEC)
        enumeration = enumerate_transactions(graph)
        node_chosen = select_for_node_coverage(enumeration)
        link_chosen = select_for_link_coverage(enumeration)
        # Transaction coverage (all 224) dwarfs the structural criteria —
        # the ordering the ablation relies on.
        assert len(node_chosen) <= len(link_chosen) <= len(enumeration)
        assert len(node_chosen) < 20
