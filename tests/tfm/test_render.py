"""Tests for TFM rendering (ASCII and DOT)."""

from __future__ import annotations

from repro.components import PRODUCT_SPEC
from repro.tfm.graph import TransactionFlowGraph
from repro.tfm.render import render_ascii, render_dot, render_transaction_table
from repro.tfm.transactions import Transaction, enumerate_transactions


def product_graph():
    return TransactionFlowGraph(PRODUCT_SPEC)


class TestAscii:
    def test_lists_all_nodes_and_methods(self):
        graph = product_graph()
        text = render_ascii(graph)
        for ident in graph.node_idents:
            assert ident in text
        assert "UpdateName" in text
        assert "[birth]" in text and "[death]" in text

    def test_highlight_stars_path(self):
        graph = product_graph()
        highlight = Transaction(path=(graph.birth_nodes[0], graph.death_nodes[0]))
        text = render_ascii(graph, highlight=highlight)
        assert "highlighted transaction" in text
        starred = [line for line in text.splitlines() if line.startswith("*")]
        assert len(starred) == 2  # both path nodes starred

    def test_edges_shown(self):
        text = render_ascii(product_graph())
        assert "->" in text


class TestDot:
    def test_valid_digraph_structure(self):
        graph = product_graph()
        dot = render_dot(graph)
        assert dot.startswith('digraph "Product" {')
        assert dot.rstrip().endswith("}")
        for source, target in graph.edges:
            assert f"{source} -> {target}" in dot

    def test_birth_death_shapes(self):
        dot = render_dot(product_graph())
        assert "invhouse" in dot
        assert "house" in dot

    def test_highlight_bold(self):
        graph = product_graph()
        highlight = Transaction(path=(graph.birth_nodes[0], graph.death_nodes[0]))
        dot = render_dot(graph, highlight=highlight)
        assert "penwidth=2" in dot

    def test_custom_name(self):
        dot = render_dot(product_graph(), graph_name="Fig2")
        assert 'digraph "Fig2"' in dot


class TestTransactionTable:
    def test_numbered_rows(self):
        graph = product_graph()
        transactions = list(enumerate_transactions(graph))
        table = render_transaction_table(transactions)
        assert table.splitlines()[0].startswith("T0000")

    def test_truncation_is_explicit(self):
        graph = product_graph()
        transactions = list(enumerate_transactions(graph))
        table = render_transaction_table(transactions, limit=2)
        assert "more transactions" in table
