"""Tests for transaction enumeration, including hypothesis properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.components import PRODUCT_SPEC, STACK_SPEC
from repro.core.errors import NoTransactionError
from repro.tfm.graph import TransactionFlowGraph
from repro.tfm.transactions import (
    EnumerationResult,
    Transaction,
    enumerate_transactions,
    shortest_transaction,
    transactions_through,
)
from repro.tspec.builder import SpecBuilder


@pytest.fixture
def stack_graph():
    return TransactionFlowGraph(STACK_SPEC)


class TestTransaction:
    def test_identity(self):
        transaction = Transaction(path=("n1", "n2", "n3"))
        assert transaction.ident == "n1>n2>n3"
        assert transaction.length == 3
        assert str(transaction) == "n1 -> n2 -> n3"

    def test_edges(self):
        transaction = Transaction(path=("a", "b", "c"))
        assert transaction.edges() == (("a", "b"), ("b", "c"))

    def test_visits(self):
        transaction = Transaction(path=("a", "b", "a"))
        assert transaction.visits("a") == 2
        assert transaction.visits("z") == 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Transaction(path=())


class TestEnumeration:
    def test_every_transaction_is_valid_path(self, stack_graph):
        for transaction in enumerate_transactions(stack_graph):
            assert stack_graph.validate_path(transaction.path)

    def test_deterministic_order(self, stack_graph):
        first = enumerate_transactions(stack_graph)
        second = enumerate_transactions(stack_graph)
        assert [t.ident for t in first] == [t.ident for t in second]

    def test_no_duplicates(self, stack_graph):
        enumeration = enumerate_transactions(stack_graph)
        idents = [transaction.ident for transaction in enumeration]
        assert len(idents) == len(set(idents))

    def test_edge_bound_respected(self, stack_graph):
        for bound in (1, 2, 3):
            for transaction in enumerate_transactions(stack_graph, edge_bound=bound):
                edge_counts = {}
                for edge in transaction.edges():
                    edge_counts[edge] = edge_counts.get(edge, 0) + 1
                assert max(edge_counts.values(), default=0) <= bound

    def test_higher_bound_superset(self, stack_graph):
        bound1 = {t.ident for t in enumerate_transactions(stack_graph, edge_bound=1)}
        bound2 = {t.ident for t in enumerate_transactions(stack_graph, edge_bound=2)}
        assert bound1 <= bound2
        assert len(bound2) > len(bound1)  # the stack model has self-loops

    def test_truncation_reported(self, stack_graph):
        result = enumerate_transactions(stack_graph, max_transactions=3)
        assert result.truncated
        assert len(result) == 3

    def test_invalid_arguments(self, stack_graph):
        with pytest.raises(ValueError):
            enumerate_transactions(stack_graph, edge_bound=0)
        with pytest.raises(ValueError):
            enumerate_transactions(stack_graph, max_transactions=0)

    def test_no_transaction_raises(self):
        spec = (
            SpecBuilder("Stuck")
            .constructor("Stuck")
            .method("Spin")
            .destructor("~Stuck")
            .node("birth", ["Stuck"], start=True)
            .node("work", ["Spin"])
            .node("death", ["~Stuck"])
            .edge("birth", "work")
            .edge("work", "work")
            .edge("death", "work")   # death unreachable forward
            .build(check=False)
        )
        graph = TransactionFlowGraph(spec)
        with pytest.raises(NoTransactionError):
            enumerate_transactions(graph)

    def test_container_protocol(self, stack_graph):
        result = enumerate_transactions(stack_graph)
        assert isinstance(result, EnumerationResult)
        assert len(list(result)) == len(result)
        assert result[0].path[0] in stack_graph.birth_nodes


class TestShortestTransaction:
    def test_shortest_is_valid_and_minimal(self, stack_graph):
        shortest = shortest_transaction(stack_graph)
        assert stack_graph.validate_path(shortest.path)
        all_lengths = [t.length for t in enumerate_transactions(stack_graph)]
        assert shortest.length == min(all_lengths)

    def test_product_use_case_exists(self):
        graph = TransactionFlowGraph(PRODUCT_SPEC)
        shortest = shortest_transaction(graph)
        assert shortest.length == 2  # birth -> death is modelled


class TestTransactionsThrough:
    def test_filters_by_node(self, stack_graph):
        result = enumerate_transactions(stack_graph)
        clear_node = next(
            ident for ident in stack_graph.node_idents
            if any(m.name == "Clear" for m in stack_graph.node_methods(ident))
        )
        through = transactions_through(result, clear_node)
        assert through
        assert all(clear_node in t.path for t in through)
        assert len(through) < len(result)


# ---------------------------------------------------------------------------
# Hypothesis: random layered graphs
# ---------------------------------------------------------------------------


@st.composite
def layered_graphs(draw):
    """Random small layered models built through the builder (always valid)."""
    layer_count = draw(st.integers(1, 3))
    builder = SpecBuilder("Random").constructor("Create")
    layers = []
    for layer_index in range(layer_count):
        name = f"Op{layer_index}"
        builder.method(name)
        layers.append(name)
    builder.destructor("Destroy")
    builder.node("birth", ["Create"], start=True)
    for layer_index, name in enumerate(layers):
        builder.node(f"layer{layer_index}", [name])
    builder.node("death", ["Destroy"])

    aliases = ["birth"] + [f"layer{i}" for i in range(layer_count)] + ["death"]
    builder.chain(*aliases)
    # Random skip edges (always forward: keeps the model a DAG).
    for source_index in range(len(aliases) - 1):
        for target_index in range(source_index + 1, len(aliases)):
            if target_index - source_index > 1 and draw(st.booleans()):
                builder.edge(aliases[source_index], aliases[target_index])
    # Optional self loops.
    for layer_index in range(layer_count):
        if draw(st.booleans()):
            builder.edge(f"layer{layer_index}", f"layer{layer_index}")
    return TransactionFlowGraph(builder.build())


class TestEnumerationProperties:
    @settings(max_examples=40, deadline=None)
    @given(layered_graphs(), st.integers(1, 3))
    def test_properties_hold(self, graph, bound):
        result = enumerate_transactions(graph, edge_bound=bound,
                                        max_transactions=5000)
        idents = [t.ident for t in result]
        assert len(idents) == len(set(idents))  # no duplicates
        for transaction in result:
            assert graph.validate_path(transaction.path)  # legal walks
            counts = {}
            for edge in transaction.edges():
                counts[edge] = counts.get(edge, 0) + 1
            assert max(counts.values(), default=0) <= bound  # bound holds
