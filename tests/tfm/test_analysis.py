"""Tests for TFM structural analysis."""

from __future__ import annotations

from repro.components import (
    ACCOUNT_SPEC,
    PRODUCT_SPEC,
    SORTABLE_OBLIST_SPEC,
    STACK_SPEC,
)
from repro.tfm.analysis import analyze, dead_end_nodes, unreachable_nodes
from repro.tfm.graph import TransactionFlowGraph
from repro.tspec.builder import SpecBuilder


class TestMetrics:
    def test_paper_model_size(self):
        metrics = analyze(TransactionFlowGraph(SORTABLE_OBLIST_SPEC))
        assert metrics.nodes == 16   # sec. 4: "16 nodes"
        assert metrics.links == 43   # sec. 4: "43 links"

    def test_cyclomatic(self):
        metrics = analyze(TransactionFlowGraph(PRODUCT_SPEC))
        assert metrics.cyclomatic == metrics.links - metrics.nodes + 2

    def test_self_loops_counted(self):
        metrics = analyze(TransactionFlowGraph(STACK_SPEC))
        assert metrics.self_loops == 1  # push -> push

    def test_birth_death_counts(self):
        metrics = analyze(TransactionFlowGraph(ACCOUNT_SPEC))
        assert metrics.birth_nodes == 1
        assert metrics.death_nodes == 1

    def test_cycle_nodes_include_self_loops(self):
        metrics = analyze(TransactionFlowGraph(STACK_SPEC))
        assert metrics.cycle_nodes >= 1

    def test_dag_has_no_cycle_nodes(self):
        metrics = analyze(TransactionFlowGraph(SORTABLE_OBLIST_SPEC))
        assert metrics.cycle_nodes == 0  # the list model is a DAG

    def test_summary_mentions_name(self):
        metrics = analyze(TransactionFlowGraph(PRODUCT_SPEC))
        assert "Product" in metrics.summary()

    def test_method_alternatives_counted(self):
        metrics = analyze(TransactionFlowGraph(PRODUCT_SPEC))
        total = sum(len(node.methods) for node in PRODUCT_SPEC.nodes)
        assert metrics.method_alternatives == total


class TestMultiBirthSelfLoop:
    """Metrics on a graph with two birth nodes and one self-loop."""

    def spec(self):
        return (
            SpecBuilder("TwinBirth")
            .constructor("Create")
            .constructor("Load")
            .method("Spin")
            .destructor("Destroy")
            .node("birth_new", ["Create"], start=True)
            .node("birth_load", ["Load"], start=True)
            .node("work", ["Spin"])
            .node("death", ["Destroy"])
            .edge("birth_new", "work")
            .edge("birth_load", "work")
            .edge("work", "work")
            .edge("work", "death")
            .build()
        )

    def test_counts_both_birth_nodes(self):
        metrics = analyze(TransactionFlowGraph(self.spec()))
        assert metrics.birth_nodes == 2
        assert metrics.death_nodes == 1

    def test_cyclomatic_with_self_loop(self):
        metrics = analyze(TransactionFlowGraph(self.spec()))
        assert metrics.nodes == 4
        assert metrics.links == 4
        assert metrics.cyclomatic == 2  # E - N + 2

    def test_self_loop_node_counts_as_cycle_node(self):
        metrics = analyze(TransactionFlowGraph(self.spec()))
        assert metrics.self_loops == 1
        assert metrics.cycle_nodes == 1  # only the self-looping work node


class TestSccCycles:
    def test_two_node_cycle_detected(self):
        spec = (
            SpecBuilder("Cyclic")
            .constructor("Create")
            .method("A")
            .method("B")
            .destructor("Destroy")
            .node("birth", ["Create"], start=True)
            .node("a", ["A"])
            .node("b", ["B"])
            .node("death", ["Destroy"])
            .chain("birth", "a", "b", "death")
            .edge("b", "a")
            .build()
        )
        metrics = analyze(TransactionFlowGraph(spec))
        assert metrics.cycle_nodes == 2
        assert metrics.self_loops == 0


class TestDiagnostics:
    def test_clean_models_have_no_findings(self):
        for spec in (PRODUCT_SPEC, STACK_SPEC, ACCOUNT_SPEC):
            graph = TransactionFlowGraph(spec)
            assert dead_end_nodes(graph) == ()
            assert unreachable_nodes(graph) == ()

    def test_dead_end_detected(self):
        spec = (
            SpecBuilder("DeadEnd")
            .constructor("Create")
            .method("Trap")
            .destructor("Destroy")
            .node("birth", ["Create"], start=True)
            .node("trap", ["Trap"])
            .node("death", ["Destroy"])
            .edge("birth", "trap")
            .edge("birth", "death")
            .build(check=False)
        )
        graph = TransactionFlowGraph(spec)
        assert dead_end_nodes(graph) == ("n2",)

    def test_unreachable_detected(self):
        spec = (
            SpecBuilder("Island")
            .constructor("Create")
            .method("Alone")
            .destructor("Destroy")
            .node("birth", ["Create"], start=True)
            .node("island", ["Alone"])
            .node("death", ["Destroy"])
            .edge("birth", "death")
            .edge("island", "death")
            .build(check=False)
        )
        graph = TransactionFlowGraph(spec)
        assert unreachable_nodes(graph) == ("n2",)
