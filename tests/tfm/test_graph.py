"""Tests for the TransactionFlowGraph traversal view."""

from __future__ import annotations

import pytest

from repro.components import PRODUCT_SPEC, STACK_SPEC
from repro.core.errors import ModelError
from repro.tfm.graph import TransactionFlowGraph
from repro.tspec.builder import SpecBuilder
from repro.tspec.model import ClassSpec


@pytest.fixture
def stack_graph() -> TransactionFlowGraph:
    return TransactionFlowGraph(STACK_SPEC)


class TestConstruction:
    def test_rejects_modelless_spec(self):
        with pytest.raises(ModelError, match="no test model"):
            TransactionFlowGraph(ClassSpec(name="Empty"))

    def test_rejects_model_without_birth(self):
        spec = (
            SpecBuilder("X")
            .method("Work")
            .destructor("~X")
            .node("work", ["Work"])
            .node("death", ["~X"])
            .edge("work", "death")
            .build(check=False)
        )
        with pytest.raises(ModelError, match="birth"):
            TransactionFlowGraph(spec)

    def test_rejects_model_without_death(self):
        spec = (
            SpecBuilder("X")
            .constructor("X")
            .method("Work")
            .node("birth", ["X"], start=True)
            .node("work", ["Work"])
            .edge("birth", "work")
            .build(check=False)
        )
        with pytest.raises(ModelError, match="death"):
            TransactionFlowGraph(spec)


class TestAccessors:
    def test_counts_match_spec(self, stack_graph):
        assert stack_graph.node_count == len(STACK_SPEC.nodes)
        assert stack_graph.edge_count == len(STACK_SPEC.edges)

    def test_birth_and_death(self, stack_graph):
        assert stack_graph.birth_nodes == ("n1",)
        assert stack_graph.is_birth("n1")
        death = stack_graph.death_nodes[0]
        assert stack_graph.is_death(death)

    def test_successors_and_predecessors_are_consistent(self, stack_graph):
        for ident in stack_graph.node_idents:
            for successor in stack_graph.successors(ident):
                assert ident in stack_graph.predecessors(successor)

    def test_degrees(self, stack_graph):
        for ident in stack_graph.node_idents:
            assert stack_graph.out_degree(ident) == len(stack_graph.successors(ident))
            assert stack_graph.in_degree(ident) == len(stack_graph.predecessors(ident))

    def test_unknown_node_raises(self, stack_graph):
        with pytest.raises(ModelError):
            stack_graph.node("n99")
        with pytest.raises(ModelError):
            stack_graph.successors("n99")

    def test_node_methods_resolved(self, stack_graph):
        birth_methods = stack_graph.node_methods("n1")
        assert [method.name for method in birth_methods] == ["BoundedStack"]

    def test_edges_reflect_spec(self, stack_graph):
        assert set(stack_graph.edges) == {
            (edge.source, edge.target) for edge in STACK_SPEC.edges
        }

    def test_repr_mentions_size(self, stack_graph):
        assert "BoundedStack" in repr(stack_graph)


class TestValidatePath:
    def test_valid_path(self):
        graph = TransactionFlowGraph(PRODUCT_SPEC)
        birth = graph.birth_nodes[0]
        death = graph.death_nodes[0]
        assert graph.validate_path([birth, death])

    def test_path_must_start_at_birth(self, stack_graph):
        death = stack_graph.death_nodes[0]
        assert not stack_graph.validate_path([death])

    def test_path_must_follow_edges(self, stack_graph):
        birth = stack_graph.birth_nodes[0]
        death = stack_graph.death_nodes[0]
        # birth -> death directly exists in the stack spec; birth -> clear
        # does not.
        clear_node = next(
            ident for ident in stack_graph.node_idents
            if any(m.name == "Clear" for m in stack_graph.node_methods(ident))
        )
        assert not stack_graph.validate_path([birth, clear_node, death]) or \
            clear_node in stack_graph.successors(birth)

    def test_empty_path_invalid(self, stack_graph):
        assert not stack_graph.validate_path([])
