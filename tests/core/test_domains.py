"""Tests for repro.core.domains: membership, sampling, boundaries."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.domains import (
    BoolDomain,
    FloatRangeDomain,
    ObjectDomain,
    PointerDomain,
    RangeDomain,
    SetDomain,
    StringDomain,
)
from repro.core.errors import DomainError
from repro.core.rng import ReproRandom


class TestRangeDomain:
    def test_contains_endpoints(self):
        domain = RangeDomain(1, 99999)
        assert domain.contains(1)
        assert domain.contains(99999)
        assert not domain.contains(0)
        assert not domain.contains(100000)

    def test_rejects_bool_membership(self):
        # True == 1 in Python, but a range of ints should not accept bools.
        assert not RangeDomain(0, 5).contains(True)

    def test_rejects_non_int(self):
        domain = RangeDomain(0, 5)
        assert not domain.contains(2.5)
        assert not domain.contains("3")

    def test_empty_range_raises(self):
        with pytest.raises(DomainError):
            RangeDomain(5, 4)

    def test_non_integer_bounds_raise(self):
        with pytest.raises(DomainError):
            RangeDomain(0.0, 5)  # type: ignore[arg-type]

    @given(st.integers(-1000, 1000), st.integers(0, 1000), st.integers())
    def test_samples_are_members(self, low, span, seed):
        domain = RangeDomain(low, low + span)
        value = domain.sample(ReproRandom(seed))
        assert domain.contains(value)

    def test_boundary_values_are_members(self):
        domain = RangeDomain(-3, 7)
        boundaries = domain.boundary_values()
        assert boundaries
        assert all(domain.contains(value) for value in boundaries)
        assert -3 in boundaries and 7 in boundaries
        assert 0 in boundaries  # crosses zero

    def test_singleton_range(self):
        domain = RangeDomain(4, 4)
        assert domain.sample(ReproRandom()) == 4
        assert domain.boundary_values() == (4,)


class TestFloatRangeDomain:
    def test_contains(self):
        domain = FloatRangeDomain(0.0, 1.0)
        assert domain.contains(0.5)
        assert domain.contains(0)
        assert not domain.contains(1.5)
        assert not domain.contains(True)

    def test_empty_raises(self):
        with pytest.raises(DomainError):
            FloatRangeDomain(1.0, 0.0)

    @given(st.integers())
    def test_samples_are_members(self, seed):
        domain = FloatRangeDomain(-2.0, 3.0)
        assert domain.contains(domain.sample(ReproRandom(seed)))

    def test_boundaries(self):
        boundaries = FloatRangeDomain(0.0, 10.0).boundary_values()
        assert 0.0 in boundaries and 10.0 in boundaries and 5.0 in boundaries


class TestSetDomain:
    def test_contains_exact_typed_members(self):
        domain = SetDomain((1, "two", 3.0))
        assert domain.contains(1)
        assert domain.contains("two")
        assert domain.contains(3.0)
        assert not domain.contains(2)
        assert not domain.contains(True)  # bool is not the int 1 here

    def test_empty_set_raises(self):
        with pytest.raises(DomainError):
            SetDomain(())

    def test_sample_is_member(self, rng):
        domain = SetDomain(("a", "b", "c"))
        for _ in range(10):
            assert domain.contains(domain.sample(rng))

    def test_boundaries_small_and_large(self):
        small = SetDomain((1, 2))
        assert small.boundary_values() == (1, 2)
        large = SetDomain(tuple(range(10)))
        assert large.boundary_values() == (0, 9)


class TestStringDomain:
    def test_contains_by_length(self):
        domain = StringDomain(2, 4)
        assert domain.contains("ab")
        assert domain.contains("abcd")
        assert not domain.contains("a")
        assert not domain.contains("abcde")
        assert not domain.contains(42)

    def test_bad_bounds_raise(self):
        with pytest.raises(DomainError):
            StringDomain(3, 2)
        with pytest.raises(DomainError):
            StringDomain(-1, 2)

    @given(st.integers(0, 10), st.integers(0, 10), st.integers())
    def test_samples_have_valid_length(self, minimum, extra, seed):
        domain = StringDomain(minimum, minimum + extra)
        assert domain.contains(domain.sample(ReproRandom(seed)))

    def test_boundaries(self):
        domain = StringDomain(1, 5)
        boundaries = domain.boundary_values()
        assert all(domain.contains(value) for value in boundaries)
        lengths = {len(value) for value in boundaries}
        assert lengths == {1, 5}


class TestBoolDomain:
    def test_contains_only_bools(self):
        domain = BoolDomain()
        assert domain.contains(True)
        assert domain.contains(False)
        assert not domain.contains(1)
        assert not domain.contains(0)

    def test_boundaries(self):
        assert BoolDomain().boundary_values() == (False, True)


class _Thing:
    pass


class TestObjectDomain:
    def test_unbound_is_structured(self):
        domain = ObjectDomain("_Thing")
        assert domain.is_structured
        with pytest.raises(DomainError):
            domain.sample(ReproRandom())

    def test_bound_samples_via_factory(self, rng):
        domain = ObjectDomain("_Thing", factory=lambda r: _Thing())
        assert not domain.is_structured
        assert isinstance(domain.sample(rng), _Thing)

    def test_contains_by_class_name(self):
        domain = ObjectDomain("_Thing")
        assert domain.contains(_Thing())
        assert not domain.contains(object())


class TestPointerDomain:
    def test_none_is_member(self):
        domain = PointerDomain(ObjectDomain("_Thing"))
        assert domain.contains(None)
        assert domain.contains(_Thing())
        assert not domain.contains(17)

    def test_structured_follows_target(self):
        unbound = PointerDomain(ObjectDomain("_Thing"))
        assert unbound.is_structured
        bound = PointerDomain(ObjectDomain("_Thing", factory=lambda r: _Thing()))
        assert not bound.is_structured

    def test_sampling_mixes_none(self):
        domain = PointerDomain(
            ObjectDomain("_Thing", factory=lambda r: _Thing()),
            null_probability=0.5,
        )
        source = ReproRandom(13)
        samples = [domain.sample(source) for _ in range(60)]
        assert any(sample is None for sample in samples)
        assert any(isinstance(sample, _Thing) for sample in samples)

    def test_boundary_is_null(self):
        assert PointerDomain(ObjectDomain("_Thing")).boundary_values() == (None,)


class TestDescriptions:
    @pytest.mark.parametrize("domain, fragment", [
        (RangeDomain(1, 9), "range"),
        (FloatRangeDomain(0.0, 1.0), "float"),
        (SetDomain((1, 2)), "set"),
        (StringDomain(0, 3), "string"),
        (BoolDomain(), "bool"),
        (ObjectDomain("X"), "object<X>"),
        (PointerDomain(ObjectDomain("X")), "pointer"),
    ])
    def test_describe_mentions_kind(self, domain, fragment):
        assert fragment in domain.describe()
