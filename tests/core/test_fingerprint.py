"""The canonical-encoding substrate under every cache fingerprint.

``canonical`` must be identity-free (no ``id()``, no default ``repr``
addresses), order-stable for unordered containers, and source-sensitive
for types and routines — those properties are what make the cache key
both *stable* (warm runs hit) and *honest* (edits invalidate).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import pytest

from repro.core.fingerprint import MAX_CANONICAL_DEPTH, canonical, sha256_hex


class Colour(enum.Enum):
    RED = 1
    BLUE = 2


@dataclass(frozen=True)
class Point:
    x: int
    y: int


class Plain:
    def __init__(self, value):
        self.value = value


class TestSha256Hex:
    def test_deterministic(self):
        assert sha256_hex("a", "b") == sha256_hex("a", "b")

    def test_parts_are_delimited(self):
        """("ab", "c") and ("a", "bc") must not collide."""
        assert sha256_hex("ab", "c") != sha256_hex("a", "bc")

    def test_is_hex_digest(self):
        digest = sha256_hex("x")
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")


class TestCanonicalStability:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -7, 3.25, "text", b"bytes",
        (1, 2), [1, [2, 3]], {"k": "v"}, Colour.RED, Point(1, 2),
    ])
    def test_equal_values_encode_identically(self, value):
        assert canonical(value) == canonical(value)

    def test_identity_free_for_objects(self):
        assert canonical(Plain(7)) == canonical(Plain(7))
        assert canonical(Plain(7)) != canonical(Plain(8))

    def test_no_memory_addresses_leak(self):
        instance = Plain(7)
        assert hex(id(instance))[2:] not in canonical(instance)

    def test_dict_insertion_order_is_irrelevant(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_set_iteration_order_is_irrelevant(self):
        assert canonical({3, 1, 2}) == canonical({2, 3, 1})
        assert canonical(frozenset("abc")) == canonical(frozenset("cba"))

    def test_distinguishes_container_kinds(self):
        assert canonical((1, 2)) != canonical([1, 2])
        assert canonical({1, 2}) != canonical((1, 2))

    def test_distinguishes_scalar_types(self):
        assert canonical(1) != canonical(1.0)
        assert canonical(True) != canonical(1)
        assert canonical("1") != canonical(1)
        assert canonical(None) != canonical("None")


class TestCanonicalSourceSensitivity:
    def test_type_embeds_source_hash(self):
        encoded = canonical(Plain)
        assert "Plain" in encoded
        assert "#" in encoded  # qualname#digest

    def test_routine_encodes_by_qualified_name(self):
        assert canonical(sha256_hex) == canonical(sha256_hex)
        assert canonical(sha256_hex) != canonical(canonical)

    def test_dataclass_field_values_matter(self):
        assert canonical(Point(1, 2)) != canonical(Point(2, 1))


class TestCanonicalDepthCap:
    def test_deep_nesting_is_capped_not_fatal(self):
        value = "leaf"
        for _ in range(MAX_CANONICAL_DEPTH + 10):
            value = [value]
        assert isinstance(canonical(value), str)

    def test_self_referential_object_terminates(self):
        loop = Plain(None)
        loop.value = loop
        assert isinstance(canonical(loop), str)
