"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.core import errors


class TestHierarchy:
    @pytest.mark.parametrize("exception_class", [
        errors.SpecError,
        errors.SpecParseError,
        errors.SpecValidationError,
        errors.DomainError,
        errors.ModelError,
        errors.NoTransactionError,
        errors.ContractViolation,
        errors.InvariantViolation,
        errors.PreconditionViolation,
        errors.PostconditionViolation,
        errors.BitError,
        errors.TestModeError,
        errors.InstrumentationError,
        errors.GenerationError,
        errors.IncompleteTestCaseError,
        errors.ExecutionError,
        errors.MutationError,
        errors.MutantCompileError,
        errors.SandboxTimeout,
    ])
    def test_everything_derives_from_repro_error(self, exception_class):
        instance = _construct(exception_class)
        assert isinstance(instance, errors.ReproError)

    def test_contract_branch(self):
        for violation_class in (errors.InvariantViolation,
                                errors.PreconditionViolation,
                                errors.PostconditionViolation):
            assert issubclass(violation_class, errors.ContractViolation)

    def test_contract_is_not_bit_error(self):
        # Contract violations are detected faults, not infrastructure misuse.
        assert not issubclass(errors.ContractViolation, errors.BitError)


def _construct(exception_class):
    if exception_class is errors.SpecValidationError:
        return exception_class(["problem"])
    return exception_class("message")


class TestMessages:
    def test_parse_error_carries_location(self):
        error = errors.SpecParseError("bad token", line=4, column=9)
        assert error.line == 4
        assert error.column == 9
        assert "line 4" in str(error)

    def test_parse_error_without_location(self):
        error = errors.SpecParseError("truncated input")
        assert "line" not in str(error)

    def test_validation_error_joins_problems(self):
        error = errors.SpecValidationError(["a is wrong", "b is missing"])
        assert "a is wrong" in str(error)
        assert "b is missing" in str(error)
        assert error.problems == ["a is wrong", "b is missing"]

    def test_contract_violation_default_message(self):
        assert "violated" in str(errors.InvariantViolation())
        assert "Pre-condition" in str(errors.PreconditionViolation())
        assert "Post-condition" in str(errors.PostconditionViolation())

    def test_contract_violation_subject(self):
        violation = errors.InvariantViolation(subject="Stack")
        assert violation.subject == "Stack"
        assert "Stack" in str(violation)

    def test_violation_kinds(self):
        assert errors.InvariantViolation.kind == "invariant"
        assert errors.PreconditionViolation.kind == "pre-condition"
        assert errors.PostconditionViolation.kind == "post-condition"
