"""Tests for repro.core.rng: determinism, bounds, forking."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.rng import DEFAULT_SEED, ReproRandom


class TestDeterminism:
    def test_same_seed_same_stream(self):
        first = ReproRandom(42)
        second = ReproRandom(42)
        assert [first.randint(0, 1000) for _ in range(20)] == [
            second.randint(0, 1000) for _ in range(20)
        ]

    def test_default_seed_is_fixed(self):
        assert ReproRandom().seed == DEFAULT_SEED

    def test_different_seeds_differ(self):
        a = [ReproRandom(1).randint(0, 10**9) for _ in range(5)]
        b = [ReproRandom(2).randint(0, 10**9) for _ in range(5)]
        assert a != b

    def test_fork_is_deterministic(self):
        assert ReproRandom(7).fork(3).seed == ReproRandom(7).fork(3).seed

    def test_fork_decorrelates(self):
        base = ReproRandom(7)
        assert base.fork(1).seed != base.fork(2).seed

    def test_fork_does_not_disturb_parent(self):
        lone = ReproRandom(5)
        expected = [lone.randint(0, 100) for _ in range(5)]
        parent = ReproRandom(5)
        parent.fork(99)
        assert [parent.randint(0, 100) for _ in range(5)] == expected


class TestBounds:
    @given(st.integers(-10**6, 10**6), st.integers(0, 10**6))
    def test_randint_within_bounds(self, low, span):
        value = ReproRandom(1).randint(low, low + span)
        assert low <= value <= low + span

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ValueError):
            ReproRandom().randint(5, 4)

    def test_uniform_within_bounds(self):
        source = ReproRandom(3)
        for _ in range(50):
            value = source.uniform(-2.5, 7.5)
            assert -2.5 <= value <= 7.5

    def test_uniform_rejects_empty_range(self):
        with pytest.raises(ValueError):
            ReproRandom().uniform(1.0, 0.0)

    def test_choice_from_singleton(self):
        assert ReproRandom().choice(["only"]) == "only"

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            ReproRandom().choice([])

    def test_sample_distinct(self):
        picked = ReproRandom(9).sample(range(100), 10)
        assert len(set(picked)) == 10

    def test_shuffle_preserves_elements(self):
        items = list(range(30))
        shuffled = list(items)
        ReproRandom(4).shuffle(shuffled)
        assert sorted(shuffled) == items


class TestStrings:
    @given(st.integers(0, 20), st.integers(0, 20))
    def test_printable_string_length(self, minimum, extra):
        text = ReproRandom(2).printable_string(minimum, minimum + extra)
        assert minimum <= len(text) <= minimum + extra

    def test_printable_string_is_printable(self):
        text = ReproRandom(8).printable_string(50, 50)
        assert text.isprintable()

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ReproRandom().printable_string(5, 3)
        with pytest.raises(ValueError):
            ReproRandom().printable_string(-1, 3)

    def test_boolean_bias(self):
        source = ReproRandom(11)
        always = [source.boolean(1.0) for _ in range(20)]
        never = [source.boolean(0.0) for _ in range(20)]
        assert all(always)
        assert not any(never)
