"""Tests for verdicts, observations, and result aggregation."""

from __future__ import annotations

import pytest

from repro.bit.reporter import StateReport
from repro.harness.outcomes import (
    Observation,
    StepObservation,
    SuiteResult,
    TestResult,
    Verdict,
)


def make_result(ident="TC0", verdict=Verdict.PASS, steps=()):
    return TestResult(
        case_ident=ident,
        class_name="X",
        verdict=verdict,
        observation=Observation(steps=tuple(steps)),
    )


class TestVerdict:
    def test_ran(self):
        assert Verdict.PASS.ran
        assert Verdict.CRASH.ran
        assert Verdict.CONTRACT_VIOLATION.ran
        assert Verdict.TIMEOUT.ran
        assert not Verdict.INCOMPLETE.ran
        assert not Verdict.HARNESS_ERROR.ran


class TestObservation:
    def test_of_return_snapshots(self):
        observation = Observation.of_return("Get", [1, 2])
        assert observation.detail == [1, 2]
        assert observation.outcome == "return"

    def test_of_raise(self):
        observation = Observation.of_raise("Get", ValueError("bad"))
        assert observation.outcome == "raise"
        assert "ValueError: bad" in observation.detail

    def test_equality(self):
        first = Observation(steps=(StepObservation("a", "return", 1),))
        second = Observation(steps=(StepObservation("a", "return", 1),))
        assert first == second

    def test_differs_from_step_detail(self):
        first = Observation(steps=(StepObservation("a", "return", 1),))
        second = Observation(steps=(StepObservation("a", "return", 2),))
        differences = first.differs_from(second)
        assert differences and "step 0" in differences[0]

    def test_differs_from_step_count(self):
        first = Observation(steps=(StepObservation("a", "return", 1),))
        second = Observation(steps=())
        assert any("step count" in line for line in first.differs_from(second))

    def test_differs_from_final_state(self):
        first = Observation(steps=(), final_state=StateReport("X", (("n", 1),)))
        second = Observation(steps=(), final_state=StateReport("X", (("n", 2),)))
        assert any("'n'" in line for line in first.differs_from(second))

    def test_identical_no_differences(self):
        observation = Observation(steps=(StepObservation("a", "return", 1),))
        assert observation.differs_from(observation) == ()


class TestTestResult:
    def test_passed(self):
        assert make_result().passed
        assert not make_result(verdict=Verdict.CRASH).passed

    def test_format(self):
        result = TestResult(
            case_ident="TC3",
            class_name="X",
            verdict=Verdict.CONTRACT_VIOLATION,
            observation=Observation(steps=()),
            detail="Invariant is violated!",
            failing_method="Add(5)",
        )
        text = result.format()
        assert "TC3" in text and "Invariant" in text and "Add(5)" in text


class TestSuiteResult:
    def make_suite_result(self):
        return SuiteResult(
            class_name="X",
            results=(
                make_result("TC0"),
                make_result("TC1", Verdict.CRASH),
                make_result("TC2", Verdict.CONTRACT_VIOLATION),
                make_result("TC3", Verdict.INCOMPLETE),
            ),
        )

    def test_partitions(self):
        result = self.make_suite_result()
        assert [r.case_ident for r in result.passed] == ["TC0"]
        assert {r.case_ident for r in result.failed} == {"TC1", "TC2"}
        assert not result.all_passed

    def test_counts(self):
        counts = self.make_suite_result().counts()
        assert counts["pass"] == 1
        assert counts["crash"] == 1
        assert counts["contract_violation"] == 1
        assert counts["incomplete"] == 1

    def test_by_verdict(self):
        result = self.make_suite_result()
        assert len(result.by_verdict(Verdict.CRASH)) == 1

    def test_result_for(self):
        result = self.make_suite_result()
        assert result.result_for("TC2").verdict is Verdict.CONTRACT_VIOLATION
        with pytest.raises(KeyError):
            result.result_for("TC99")

    def test_summary(self):
        text = self.make_suite_result().summary()
        assert "4 cases" in text and "pass=1" in text

    def test_container(self):
        result = self.make_suite_result()
        assert len(result) == 4
        assert len(list(result)) == 4
