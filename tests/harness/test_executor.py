"""Tests for the test executor (the runtime of Figure 6)."""

from __future__ import annotations

import pytest

from repro.bit.builtintest import BuiltInTest
from repro.components import BoundedStack, STACK_SPEC
from repro.core.errors import ExecutionError
from repro.generator.driver import DriverGenerator
from repro.generator.testcase import TestCase, TestStep
from repro.generator.values import Hole
from repro.core.domains import ObjectDomain
from repro.harness.executor import TestExecutor, run_suite
from repro.harness.logfile import ResultLog
from repro.harness.outcomes import Verdict
from repro.tfm.transactions import Transaction


def case_of(*steps, ident="TC0") -> TestCase:
    return TestCase(
        ident=ident,
        transaction=Transaction(tuple(f"n{i}" for i in range(len(steps)))),
        steps=tuple(steps),
        class_name="X",
    )


class Gadget(BuiltInTest):
    def __init__(self, start: int = 0):
        self.value = start
        self.disposed = False

    def class_invariant(self):
        return self.value >= 0

    def add(self, amount):
        self.value += amount
        return self.value

    def crashy(self):
        raise RuntimeError("kaboom")

    def dispose(self):
        self.disposed = True
        self.value = 0
        return "disposed"


class TestRunCase:
    def test_pass_verdict_and_observation(self):
        case = case_of(
            TestStep("m1", "Gadget", (3,), is_construction=True),
            TestStep("m2", "add", (4,)),
        )
        result = TestExecutor(Gadget).run_case(case)
        assert result.verdict is Verdict.PASS
        steps = result.observation.steps
        assert steps[0].detail == "<constructed>"
        assert steps[1].detail == 7
        assert result.observation.final_state.as_dict()["value"] == 7

    def test_crash_verdict(self):
        case = case_of(
            TestStep("m1", "Gadget", (), is_construction=True),
            TestStep("m2", "crashy", ()),
        )
        result = TestExecutor(Gadget).run_case(case)
        assert result.verdict is Verdict.CRASH
        assert "kaboom" in result.detail
        assert "crashy()" in result.failing_method

    def test_invariant_checked_after_each_call(self):
        case = case_of(
            TestStep("m1", "Gadget", (5,), is_construction=True),
            TestStep("m2", "add", (-50,)),
        )
        result = TestExecutor(Gadget).run_case(case)
        assert result.verdict is Verdict.CONTRACT_VIOLATION
        assert "add(-50)" in result.failing_method

    def test_invariant_checking_disableable(self):
        case = case_of(
            TestStep("m1", "Gadget", (5,), is_construction=True),
            TestStep("m2", "add", (-50,)),
        )
        result = TestExecutor(Gadget, check_invariants=False).run_case(case)
        assert result.verdict is Verdict.PASS

    def test_destruction_calls_dispose(self):
        case = case_of(
            TestStep("m1", "Gadget", (), is_construction=True),
            TestStep("m3", "~Gadget", (), is_destruction=True),
        )
        result = TestExecutor(Gadget).run_case(case)
        assert result.verdict is Verdict.PASS
        assert result.observation.steps[-1].detail == "disposed"

    def test_destruction_without_dispose_is_noop(self):
        class Bare:
            def __init__(self):
                self.x = 1

        case = case_of(
            TestStep("m1", "Bare", (), is_construction=True),
            TestStep("m2", "~Bare", (), is_destruction=True),
        )
        result = TestExecutor(Bare).run_case(case)
        assert result.verdict is Verdict.PASS
        assert result.observation.steps[-1].detail == "<deleted>"

    def test_incomplete_case_skipped(self):
        case = case_of(
            TestStep("m1", "Gadget", (), is_construction=True),
            TestStep("m2", "add", (Hole("p", ObjectDomain("X")),)),
        )
        result = TestExecutor(Gadget).run_case(case)
        assert result.verdict is Verdict.INCOMPLETE

    def test_missing_method_is_harness_crash(self):
        case = case_of(
            TestStep("m1", "Gadget", (), is_construction=True),
            TestStep("m2", "no_such_method", ()),
        )
        result = TestExecutor(Gadget).run_case(case)
        # ExecutionError derives from ReproError, caught as a crash with a
        # clear message naming the missing method.
        assert result.verdict is Verdict.CRASH
        assert "no_such_method" in result.detail

    def test_constructor_crash(self):
        class Fussy:
            def __init__(self):
                raise ValueError("cannot construct")

        case = case_of(TestStep("m1", "Fussy", (), is_construction=True))
        result = TestExecutor(Fussy).run_case(case)
        assert result.verdict is Verdict.CRASH
        assert result.observation.final_state is None

    def test_rejects_non_class(self):
        with pytest.raises(ExecutionError):
            TestExecutor(Gadget())  # type: ignore[arg-type]


class TestRunSuite:
    def test_generated_suite_green(self):
        suite = DriverGenerator(STACK_SPEC).generate()
        result = run_suite(BoundedStack, suite)
        assert result.all_passed
        assert len(result) == len(suite)

    def test_log_records_results(self):
        suite = DriverGenerator(STACK_SPEC).generate()
        log = ResultLog()
        TestExecutor(BoundedStack, log=log).run_suite(suite)
        text = log.text()
        assert "OK!" in text
        assert text.count("TestCase") >= len(suite)

    def test_step_guard_sees_every_call(self):
        from repro.mutation.sandbox import CallCountGuard

        guard = CallCountGuard()
        case = case_of(
            TestStep("m1", "Gadget", (1,), is_construction=True),
            TestStep("m2", "add", (2,)),
        )
        TestExecutor(Gadget, step_guard=guard).run_case(case)
        # construction + invariant + add + invariant + state capture
        assert guard.calls == 5

    def test_test_mode_enabled_only_during_execution(self):
        from repro.bit import access

        case = case_of(TestStep("m1", "Gadget", (), is_construction=True))
        assert not access.is_test_mode()
        TestExecutor(Gadget).run_case(case)
        assert not access.is_test_mode()
