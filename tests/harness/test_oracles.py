"""Tests for the kill-rule oracles."""

from __future__ import annotations

from repro.bit.reporter import StateReport
from repro.harness.oracles import (
    AssertionOracle,
    CompositeOracle,
    CrashOracle,
    GoldenOutputOracle,
    KillReason,
    LogOutputOracle,
    SelectiveOutputOracle,
    assertions_only_oracle,
    experiment_oracle,
    log_level_oracle,
    output_only_oracle,
    paper_oracle,
)
from repro.harness.outcomes import Observation, StepObservation, TestResult, Verdict


def state_of(**attributes) -> StateReport:
    return StateReport(
        class_name="X",
        state=tuple(sorted(attributes.items())),
    )


def result(verdict=Verdict.PASS, steps=(), final_state=None, detail=""):
    return TestResult(
        case_ident="TC0",
        class_name="X",
        verdict=verdict,
        observation=Observation(steps=tuple(steps), final_state=final_state),
        detail=detail,
    )


def step(name, value):
    return StepObservation(name, "return", value)


class TestCrashOracle:
    def test_detects_new_crash(self):
        judgement = CrashOracle().judge(result(Verdict.CRASH), result())
        assert judgement.reason is KillReason.CRASH

    def test_timeout_counts_as_crash(self):
        judgement = CrashOracle().judge(result(Verdict.TIMEOUT), result())
        assert judgement.detected

    def test_matching_crash_not_detected(self):
        judgement = CrashOracle().judge(
            result(Verdict.CRASH), result(Verdict.CRASH)
        )
        assert not judgement.detected

    def test_crash_without_reference_detected(self):
        assert CrashOracle().judge(result(Verdict.CRASH), None).detected


class TestAssertionOracle:
    def test_detects_new_violation(self):
        judgement = AssertionOracle().judge(
            result(Verdict.CONTRACT_VIOLATION), result()
        )
        assert judgement.reason is KillReason.ASSERTION

    def test_rule_ii_given_clause(self):
        # "given that this was not the case with the original program"
        judgement = AssertionOracle().judge(
            result(Verdict.CONTRACT_VIOLATION),
            result(Verdict.CONTRACT_VIOLATION),
        )
        assert not judgement.detected

    def test_pass_not_detected(self):
        assert not AssertionOracle().judge(result(), result()).detected


class TestGoldenOutputOracle:
    def test_detects_return_value_difference(self):
        observed = result(steps=[step("Get", 5)])
        reference = result(steps=[step("Get", 6)])
        judgement = GoldenOutputOracle().judge(observed, reference)
        assert judgement.reason is KillReason.OUTPUT_DIFFERENCE

    def test_detects_final_state_difference(self):
        observed = result(final_state=state_of(count=1))
        reference = result(final_state=state_of(count=2))
        assert GoldenOutputOracle().judge(observed, reference).detected

    def test_identical_not_detected(self):
        observed = result(steps=[step("Get", 5)], final_state=state_of(n=1))
        reference = result(steps=[step("Get", 5)], final_state=state_of(n=1))
        assert not GoldenOutputOracle().judge(observed, reference).detected

    def test_no_reference_no_detection(self):
        assert not GoldenOutputOracle().judge(result(), None).detected


class TestLogOutputOracle:
    def test_ignores_intermediate_returns(self):
        observed = result(steps=[step("Sort1", 3)], final_state=state_of(n=1))
        reference = result(steps=[step("Sort1", 7)], final_state=state_of(n=1))
        assert not LogOutputOracle().judge(observed, reference).detected

    def test_detects_state_difference(self):
        observed = result(final_state=state_of(n=1))
        reference = result(final_state=state_of(n=2))
        assert LogOutputOracle().judge(observed, reference).detected

    def test_missing_state_on_one_side(self):
        observed = result(final_state=None)
        reference = result(final_state=state_of(n=2))
        assert LogOutputOracle().judge(observed, reference).detected


class TestSelectiveOutputOracle:
    def test_observed_methods_compared(self):
        oracle = SelectiveOutputOracle({"GetCount"})
        observed = result(steps=[step("GetCount", 5)])
        reference = result(steps=[step("GetCount", 6)])
        assert oracle.judge(observed, reference).detected

    def test_unobserved_methods_ignored(self):
        oracle = SelectiveOutputOracle({"GetCount"})
        observed = result(steps=[step("Sort1", 5)])
        reference = result(steps=[step("Sort1", 99)])
        assert not oracle.judge(observed, reference).detected

    def test_falls_back_to_final_state(self):
        oracle = SelectiveOutputOracle(set())
        observed = result(final_state=state_of(n=1))
        reference = result(final_state=state_of(n=2))
        assert oracle.judge(observed, reference).detected

    def test_exception_steps_matched_by_bare_name(self):
        oracle = SelectiveOutputOracle({"GetAt"})
        observed = result(steps=[StepObservation("GetAt(3)", "raise", "E: x")])
        reference = result(steps=[step("GetAt", 1)])
        assert oracle.judge(observed, reference).detected


class TestComposite:
    def test_paper_order(self):
        # Crash wins over output difference when both apply.
        observed = result(Verdict.CRASH, steps=[step("Get", 1)])
        reference = result(steps=[step("Get", 2)])
        judgement = paper_oracle().judge(observed, reference)
        assert judgement.reason is KillReason.CRASH

    def test_none_when_identical(self):
        judgement = paper_oracle().judge(result(), result())
        assert judgement.reason is KillReason.NONE

    def test_assertions_only_blind_to_output(self):
        observed = result(steps=[step("Get", 1)])
        reference = result(steps=[step("Get", 2)])
        assert not assertions_only_oracle().judge(observed, reference).detected

    def test_output_only_blind_to_assertions(self):
        observed = result(Verdict.CONTRACT_VIOLATION)
        reference = result()
        assert not output_only_oracle().judge(observed, reference).detected

    def test_log_level_weaker_than_paper(self):
        observed = result(steps=[step("Get", 1)], final_state=state_of(n=1))
        reference = result(steps=[step("Get", 2)], final_state=state_of(n=1))
        assert paper_oracle().judge(observed, reference).detected
        assert not log_level_oracle().judge(observed, reference).detected

    def test_custom_order(self):
        oracle = CompositeOracle((GoldenOutputOracle(), CrashOracle()))
        observed = result(Verdict.CRASH, steps=[step("Get", 1)])
        reference = result(steps=[step("Get", 2)])
        assert oracle.judge(observed, reference).reason is KillReason.OUTPUT_DIFFERENCE


class TestExperimentOracle:
    def test_observes_access_methods_of_spec(self):
        from repro.components import SORTABLE_OBLIST_SPEC

        oracle = experiment_oracle(SORTABLE_OBLIST_SPEC)
        selective = oracle.oracles[-1]
        assert isinstance(selective, SelectiveOutputOracle)
        assert "FindMax" in selective.observed
        assert "GetCount" in selective.observed
        assert "Sort1" not in selective.observed
