"""Tests for the Figure-6 style result log."""

from __future__ import annotations

from repro.bit.reporter import StateReport
from repro.harness.logfile import ResultLog
from repro.harness.outcomes import Observation, TestResult, Verdict


def passing_result(ident="TC0"):
    return TestResult(
        case_ident=ident,
        class_name="X",
        verdict=Verdict.PASS,
        observation=Observation(
            steps=(), final_state=StateReport("X", (("n", 1),))
        ),
    )


def failing_result():
    return TestResult(
        case_ident="TC1",
        class_name="X",
        verdict=Verdict.CONTRACT_VIOLATION,
        observation=Observation(steps=()),
        detail="Invariant is violated!",
        failing_method="Add(5)",
    )


class TestInMemory:
    def test_ok_line(self):
        log = ResultLog()
        log.record(passing_result())
        assert "TestCaseTC0 OK!" in log.text()

    def test_failure_block(self):
        log = ResultLog()
        log.record(failing_result())
        text = log.text()
        assert "TestCaseTC1" in text
        assert "Invariant is violated!" in text
        assert "Method called: Add(5)" in text
        assert "OK!" not in text

    def test_state_report_appended(self):
        log = ResultLog()
        log.record(passing_result())
        assert "state of X" in log.text()

    def test_note(self):
        log = ResultLog()
        log.note("session start")
        assert log.lines == ["session start"]

    def test_lines_are_copies(self):
        log = ResultLog()
        log.note("a")
        lines = log.lines
        lines.append("tampered")
        assert log.lines == ["a"]


class TestOnDisk:
    def test_appends_to_file(self, tmp_path):
        path = str(tmp_path / "Result.txt")
        log = ResultLog(path)
        log.record(passing_result("TC0"))
        log.record(passing_result("TC1"))
        content = (tmp_path / "Result.txt").read_text()
        assert "TestCaseTC0 OK!" in content
        assert "TestCaseTC1 OK!" in content
        assert log.path == path

    def test_existing_content_preserved(self, tmp_path):
        target = tmp_path / "Result.txt"
        target.write_text("previous session\n")
        log = ResultLog(str(target))
        log.note("new session")
        content = target.read_text()
        assert content.startswith("previous session")
        assert "new session" in content
