"""Tests for the Figure-6 style result log."""

from __future__ import annotations

from repro.bit.reporter import StateReport
from repro.harness.logfile import ResultLog
from repro.harness.outcomes import Observation, TestResult, Verdict


def passing_result(ident="TC0"):
    return TestResult(
        case_ident=ident,
        class_name="X",
        verdict=Verdict.PASS,
        observation=Observation(
            steps=(), final_state=StateReport("X", (("n", 1),))
        ),
    )


def failing_result():
    return TestResult(
        case_ident="TC1",
        class_name="X",
        verdict=Verdict.CONTRACT_VIOLATION,
        observation=Observation(steps=()),
        detail="Invariant is violated!",
        failing_method="Add(5)",
    )


class TestInMemory:
    def test_ok_line(self):
        log = ResultLog()
        log.record(passing_result())
        assert "TestCaseTC0 OK!" in log.text()

    def test_failure_block(self):
        log = ResultLog()
        log.record(failing_result())
        text = log.text()
        assert "TestCaseTC1" in text
        assert "Invariant is violated!" in text
        assert "Method called: Add(5)" in text
        assert "OK!" not in text

    def test_state_report_appended(self):
        log = ResultLog()
        log.record(passing_result())
        assert "state of X" in log.text()

    def test_note(self):
        log = ResultLog()
        log.note("session start")
        assert log.lines == ["session start"]

    def test_lines_are_copies(self):
        log = ResultLog()
        log.note("a")
        lines = log.lines
        lines.append("tampered")
        assert log.lines == ["a"]


class TestOnDisk:
    def test_appends_to_file(self, tmp_path):
        path = str(tmp_path / "Result.txt")
        log = ResultLog(path)
        log.record(passing_result("TC0"))
        log.record(passing_result("TC1"))
        content = (tmp_path / "Result.txt").read_text()
        assert "TestCaseTC0 OK!" in content
        assert "TestCaseTC1 OK!" in content
        assert log.path == path

    def test_existing_content_preserved(self, tmp_path):
        target = tmp_path / "Result.txt"
        target.write_text("previous session\n")
        log = ResultLog(str(target))
        log.note("new session")
        content = target.read_text()
        assert content.startswith("previous session")
        assert "new session" in content


class TestSingleHandle:
    """Regression: the backing file is opened once, not once per line."""

    @staticmethod
    def counting_open(monkeypatch):
        import builtins

        counts = {"opens": 0}
        real_open = builtins.open

        def spy(file, *args, **kwargs):
            counts["opens"] += 1
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", spy)
        return counts

    def test_one_open_across_many_records(self, tmp_path, monkeypatch):
        path = str(tmp_path / "Result.txt")
        log = ResultLog(path)
        counts = self.counting_open(monkeypatch)
        for index in range(25):
            log.record(passing_result(f"TC{index}"))
        log.note("done")
        assert counts["opens"] == 1
        content = (tmp_path / "Result.txt").read_text()
        assert content.count("OK!") == 25
        assert content.rstrip().endswith("done")

    def test_records_flushed_while_open(self, tmp_path):
        """The file stays live-tailable: each record lands before close."""
        target = tmp_path / "Result.txt"
        log = ResultLog(str(target))
        log.record(passing_result("TC0"))
        assert "TestCaseTC0 OK!" in target.read_text()

    def test_close_idempotent_and_reopens_on_next_write(self, tmp_path):
        target = tmp_path / "Result.txt"
        log = ResultLog(str(target))
        log.note("first")
        log.close()
        log.close()
        log.note("second")  # transparently reopens, still appending
        log.close()
        assert target.read_text() == "first\nsecond\n"
        assert log.lines == ["first", "second"]

    def test_context_manager_closes(self, tmp_path):
        target = tmp_path / "Result.txt"
        with ResultLog(str(target)) as log:
            log.note("inside")
        assert log._stream is None
        assert target.read_text() == "inside\n"

    def test_in_memory_log_never_opens(self, monkeypatch):
        counts = self.counting_open(monkeypatch)
        log = ResultLog()
        log.record(passing_result())
        log.close()
        assert counts["opens"] == 0
