"""Tests for human-readable suite reports."""

from __future__ import annotations

from repro.harness.outcomes import Observation, StepObservation, SuiteResult, TestResult, Verdict
from repro.harness.report import (
    compare_results,
    failing_methods_histogram,
    format_suite_result,
    pass_rate,
)


def result(ident, verdict=Verdict.PASS, failing_method="", detail="", steps=()):
    return TestResult(
        case_ident=ident,
        class_name="X",
        verdict=verdict,
        observation=Observation(steps=tuple(steps)),
        detail=detail,
        failing_method=failing_method,
    )


def suite_result(*results):
    return SuiteResult(class_name="X", results=tuple(results))


class TestFormat:
    def test_green_report(self):
        text = format_suite_result(suite_result(result("TC0"), result("TC1")))
        assert "pass" in text
        assert "failures" not in text

    def test_failures_listed(self):
        text = format_suite_result(suite_result(
            result("TC0"),
            result("TC1", Verdict.CRASH, detail="boom"),
        ))
        assert "failures (1 total" in text
        assert "boom" in text

    def test_failure_cap(self):
        failures = [
            result(f"TC{i}", Verdict.CRASH) for i in range(30)
        ]
        text = format_suite_result(suite_result(*failures), max_failures=5)
        assert "showing 5" in text


class TestHistogram:
    def test_counts_by_method(self):
        histogram = failing_methods_histogram(suite_result(
            result("TC0", Verdict.CRASH, failing_method="Add(1)"),
            result("TC1", Verdict.CRASH, failing_method="Add(2)"),
            result("TC2", Verdict.CONTRACT_VIOLATION, failing_method="Remove()"),
            result("TC3"),
        ))
        assert histogram == {"Add": 2, "Remove": 1}

    def test_unknown_bucket(self):
        histogram = failing_methods_histogram(suite_result(
            result("TC0", Verdict.CRASH),
        ))
        assert histogram == {"<unknown>": 1}


class TestCompare:
    def test_detects_verdict_changes(self):
        baseline = suite_result(result("TC0"), result("TC1"))
        observed = suite_result(result("TC0"), result("TC1", Verdict.CRASH))
        differing = compare_results(baseline, observed)
        assert len(differing) == 1
        assert differing[0][1].verdict is Verdict.CRASH

    def test_detects_observation_changes(self):
        baseline = suite_result(
            result("TC0", steps=[StepObservation("Get", "return", 1)])
        )
        observed = suite_result(
            result("TC0", steps=[StepObservation("Get", "return", 2)])
        )
        assert len(compare_results(baseline, observed)) == 1

    def test_identical_runs_have_no_differences(self):
        baseline = suite_result(result("TC0"))
        assert compare_results(baseline, baseline) == ()

    def test_unknown_cases_skipped(self):
        baseline = suite_result(result("TC0"))
        observed = suite_result(result("TC99", Verdict.CRASH))
        assert compare_results(baseline, observed) == ()


class TestPassRate:
    def test_rates(self):
        results = [result("TC0"), result("TC1", Verdict.CRASH)]
        assert pass_rate(results) == 0.5
        assert pass_rate([]) == 1.0
