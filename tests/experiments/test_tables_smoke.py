"""Smoke tests for the frozen experiment tables on tiny configurations.

These are deliberately small: one method, a truncated suite.  They pin
down the *shape* of each table (rows, operators, totals that must agree)
and the parallel contract — ``workers=2`` must reproduce the ``workers=1``
rows exactly — without paying for the full paper workloads.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    OPERATOR_DEFINITIONS,
    TABLE2_METHODS,
    TABLE3_METHODS,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.table2 import main as table2_main
from repro.experiments.table3 import main as table3_main
from repro.mutation.operators import ALL_OPERATORS

OPERATOR_NAMES = tuple(operator.name for operator in ALL_OPERATORS)


class TestTable1:
    def test_parallel_reproduces_serial_rows(self):
        serial = run_table1()
        parallel = run_table1(workers=2)
        assert parallel == serial
        assert parallel.demos == serial.demos

    def test_row_shape(self):
        result = run_table1()
        assert len(result.demos) == len(OPERATOR_NAMES)
        assert tuple(demo.operator for demo in result.demos) == OPERATOR_NAMES
        for demo in result.demos:
            assert demo.definition == OPERATOR_DEFINITIONS[demo.operator]
            assert 0 < demo.typed_mutants <= demo.untyped_mutants
            assert demo.example != "<no mutants>"


class TestTable2:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_table2(methods=("FindMax",), with_equivalence=False,
                          max_cases=120)

    def test_row_shape(self, serial):
        table = serial.table
        assert table.class_name == "CSortableObList"
        assert table.methods == ("FindMax",)
        assert table.operators == OPERATOR_NAMES
        assert table.total_generated == serial.run.total
        assert sum(table.per_method.values()) == table.total_generated
        assert len(serial.suite) == 120
        assert serial.run.suite_size == 120

    def test_workers_2_reproduces_serial(self, serial):
        parallel = run_table2(methods=("FindMax",), with_equivalence=False,
                              max_cases=120, workers=2)
        assert parallel.run.same_results(serial.run)
        assert parallel.table == serial.table
        assert parallel.suite == serial.suite

    def test_methods_default_is_table2(self):
        assert TABLE2_METHODS == (
            "Sort1", "Sort2", "ShellSort", "FindMax", "FindMin"
        )


class TestTable3:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_table3(methods=("RemoveHead",), max_cases=80)

    def test_row_shape(self, serial):
        table = serial.incremental_table
        assert table.class_name == "CSortableObList"
        assert table.methods == ("RemoveHead",)
        assert table.operators == OPERATOR_NAMES
        assert table.total_generated == serial.incremental_run.total
        # Contrast runs are off by default.
        assert serial.base_suite_run is None
        assert serial.full_suite_run is None
        assert serial.plan.executed_suite is not None

    def test_workers_2_reproduces_serial(self, serial):
        parallel = run_table3(methods=("RemoveHead",), max_cases=80, workers=2)
        assert parallel.incremental_run.same_results(serial.incremental_run)
        assert parallel.incremental_table == serial.incremental_table

    def test_methods_default_is_table3(self):
        assert TABLE3_METHODS == ("AddHead", "RemoveAt", "RemoveHead")


class TestCommandLine:
    def test_table2_cli_smoke(self, capsys):
        exit_code = table2_main([
            "--methods", "FindMax", "--max-cases", "40",
            "--workers", "2", "--no-equivalence",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Mutation results for class CSortableObList" in output
        assert "Table 2" in output

    def test_table3_cli_smoke(self, capsys):
        exit_code = table3_main([
            "--methods", "RemoveHead", "--max-cases", "40",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table 3" in output
