"""Shard semantics (satellite d): disjoint, exhaustive, stable.

``--shard k/n`` assigns each scenario by hashing its own content
fingerprint, so for a fixed registry fingerprint the partition is a pure
function — CI can split a sweep across jobs and merge the reports knowing
no scenario ran twice or not at all.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ScenarioError
from repro.scenarios import ScenarioRegistry, builtin_registry, parse_shard


@pytest.mark.parametrize("count", [2, 3, 5])
def test_shards_are_disjoint_and_exhaustive(count):
    registry = builtin_registry()
    shards = [registry.shard(index, count)
              for index in range(1, count + 1)]
    idents = [scenario.ident for shard in shards for scenario in shard]
    assert len(idents) == len(set(idents))  # disjoint
    assert set(idents) == {scenario.ident for scenario in registry}  # exhaustive


def test_shards_are_stable_for_fixed_fingerprint():
    first = builtin_registry()
    second = builtin_registry()
    assert first.fingerprint() == second.fingerprint()
    for index in (1, 2):
        assert (tuple(first.shard(index, 2))
                == tuple(second.shard(index, 2)))


def test_shard_assignment_ignores_other_scenarios():
    """Removing other scenarios never moves a scenario between shards —
    assignment depends only on the scenario's own fingerprint."""
    registry = builtin_registry()
    shard_of = {}
    for index in (1, 2, 3):
        for scenario in registry.shard(index, 3):
            shard_of[scenario.ident] = index
    half = ScenarioRegistry(tuple(registry)[::2])
    for index in (1, 2, 3):
        for scenario in half.shard(index, 3):
            assert shard_of[scenario.ident] == index


def test_sharding_composes_with_filtering():
    registry = builtin_registry().filtered("ci")
    one = registry.shard(1, 2)
    two = registry.shard(2, 2)
    assert len(one) + len(two) == len(registry)
    assert not ({s.ident for s in one} & {s.ident for s in two})


def test_shard_1_of_1_is_everything():
    registry = builtin_registry()
    assert tuple(registry.shard(1, 1)) == tuple(registry)


@pytest.mark.parametrize("text,expected", [
    ("1/2", (1, 2)),
    ("3/3", (3, 3)),
    (" 2/5 ", (2, 5)),
])
def test_parse_shard_accepts_valid(text, expected):
    assert parse_shard(text) == expected


@pytest.mark.parametrize("text", [
    "0/2", "3/2", "2/0", "-1/2", "a/b", "1-2", "1/", "/2", "1/2/3", "",
])
def test_parse_shard_rejects_invalid(text):
    with pytest.raises(ScenarioError):
        parse_shard(text)


@pytest.mark.parametrize("index,count", [(0, 2), (3, 2), (1, 0)])
def test_shard_method_rejects_out_of_range(index, count):
    with pytest.raises(ScenarioError):
        builtin_registry().shard(index, count)
