"""Scenario-corpus tests (registry, generator, sharding, sweep)."""
