"""Sweep runner and CLI: determinism, shard merging, gating.

The determinism contract under test is the acceptance criterion: same
registry + same seeds ⇒ byte-identical report JSON modulo timings
(``to_json(timings=False)``).
"""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ScenarioError
from repro.scenarios import (
    ScenarioResult,
    SweepReport,
    SweepRunner,
    merge_reports,
    registry_from_mappings,
    report_from_mapping,
    scenario_to_mapping,
)
from repro.scenarios.cli import main as cli_main

#: A small fast corpus: two recipes of one generated family (sharing one
#: synthesis), one catalog component, tight budgets.
SMALL_ENTRIES = [
    {
        "ident": "small-stack-bitneg",
        "component": {"family": "stack", "seed": 3},
        "operators": ["IndVarBitNeg"],
        "budgets": {"max_mutants": 8},
        "groups": ["small"],
    },
    {
        "ident": "small-stack-glob",
        "component": {"family": "stack", "seed": 3},
        "operators": ["IndVarRepGlob"],
        "budgets": {"max_mutants": 8},
        "groups": ["small"],
    },
    {
        "ident": "small-account",
        "component": {"ref": "BankAccount"},
        "operators": ["IndVarRepGlob"],
        "suite": {"max_cases": 6},
        "budgets": {"max_mutants": 8},
        "groups": ["small"],
    },
]


@pytest.fixture
def small_registry():
    return registry_from_mappings(SMALL_ENTRIES)


def _run(registry, workspace, **kwargs):
    return SweepRunner(registry, workspace=workspace).run(**kwargs)


def test_sweep_report_is_deterministic(small_registry, tmp_path):
    first = _run(small_registry, tmp_path / "ws1")
    second = _run(small_registry, tmp_path / "ws2")
    assert first.to_json(timings=False) == second.to_json(timings=False)
    assert first.passed
    assert len(first.results) == 3
    assert all(result.mutants_total > 0 for result in first.results)


def test_sweep_shares_generated_components(small_registry, tmp_path):
    runner = SweepRunner(small_registry, workspace=tmp_path / "ws")
    runner.run()
    # Two stack scenarios, one (family, seed) — synthesized exactly once.
    assert len(runner._classes) == 1
    # Suites memoized per (component, suite-config).
    assert len(runner._suites) == 2


def test_shard_merge_equals_full_run(small_registry, tmp_path):
    full = _run(small_registry, tmp_path / "ws")
    parts = [
        _run(small_registry, tmp_path / "ws", shard=(index, 2))
        for index in (1, 2)
    ]
    merged = merge_reports(parts)
    assert merged.to_json(timings=False) == full.to_json(timings=False)


def test_report_json_roundtrip(small_registry, tmp_path):
    report = _run(small_registry, tmp_path / "ws")
    reloaded = report_from_mapping(json.loads(report.to_json(timings=True)))
    assert reloaded.to_json(timings=False) == report.to_json(timings=False)
    assert reloaded.total_oracle_failures == 0


def test_max_scenarios_truncates(small_registry, tmp_path):
    report = _run(small_registry, tmp_path / "ws", max_scenarios=1)
    assert len(report.results) == 1


def test_merge_rejects_mismatched_registries():
    base = ScenarioResult(ident="x", component="c", scenario_fingerprint="f")
    one = SweepReport(registry_fingerprint="aaaa", results=(base,))
    two = SweepReport(registry_fingerprint="bbbb", results=())
    with pytest.raises(ScenarioError, match="different registries"):
        merge_reports([one, two])
    with pytest.raises(ScenarioError, match="nothing to merge"):
        merge_reports([])


def test_merge_rejects_overlapping_shards():
    result = ScenarioResult(ident="x", component="c",
                            scenario_fingerprint="f")
    one = SweepReport(registry_fingerprint="aaaa", results=(result,),
                      shard="1/2")
    two = SweepReport(registry_fingerprint="aaaa", results=(result,),
                      shard="2/2")
    with pytest.raises(ScenarioError, match="more than one report"):
        merge_reports([one, two])


def test_gate_fails_on_oracle_failures_and_errors():
    clean = SweepReport(registry_fingerprint="a", results=(
        ScenarioResult(ident="ok", component="c", scenario_fingerprint="f"),
    ))
    assert clean.passed
    failing = SweepReport(registry_fingerprint="a", results=(
        ScenarioResult(ident="bad", component="c", scenario_fingerprint="f",
                       oracle_failures=2),
    ))
    assert not failing.passed
    erroring = SweepReport(registry_fingerprint="a", results=(
        ScenarioResult(ident="boom", component="c", scenario_fingerprint="f",
                       error="GenerationError: nope"),
    ))
    assert not erroring.passed and erroring.errors


# ---------------------------------------------------------------------------
# CLI (in-process)
# ---------------------------------------------------------------------------

def _registry_file(tmp_path):
    path = tmp_path / "registry.json"
    path.write_text(json.dumps(SMALL_ENTRIES))
    return str(path)


def test_cli_list_and_validate(tmp_path, capsys):
    registry = _registry_file(tmp_path)
    assert cli_main(["list", "--registry", registry, "-v"]) == 0
    out = capsys.readouterr().out
    assert "small-stack-bitneg" in out and "3 scenarios" in out
    assert cli_main(["validate", "--registry", registry]) == 0
    assert "ok: 3 scenarios" in capsys.readouterr().out


def test_cli_validate_reports_problems(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(
        {"ident": "bad", "component": {"family": "btree"}}
    ))
    assert cli_main(["validate", "--registry", str(bad)]) == 2
    assert "unknown family" in capsys.readouterr().err


def test_cli_run_writes_report_and_gates_green(tmp_path, capsys):
    registry = _registry_file(tmp_path)
    out_path = tmp_path / "report.json"
    code = cli_main([
        "run", "--registry", registry,
        "--workspace", str(tmp_path / "ws"),
        "--report-out", str(out_path), "-v",
    ])
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["scenarios"] == 3
    assert payload["oracle_failures"] == 0
    console = capsys.readouterr().out
    assert "sweep: 3 scenarios" in console
    assert "[   3/3]" in console  # -v progress lines


def test_cli_run_filter_and_shard(tmp_path, capsys):
    registry = _registry_file(tmp_path)
    code = cli_main([
        "run", "--registry", registry, "--filter", "small-stack",
        "--shard", "1/1", "--workspace", str(tmp_path / "ws"),
    ])
    assert code == 0
    assert "sweep: 2 scenarios" in capsys.readouterr().out


def test_cli_report_merges_shards(tmp_path, capsys):
    registry = _registry_file(tmp_path)
    shard_paths = []
    for index in (1, 2):
        path = tmp_path / f"shard{index}.json"
        assert cli_main([
            "run", "--registry", registry, "--shard", f"{index}/2",
            "--workspace", str(tmp_path / "ws"),
            "--report-out", str(path),
        ]) == 0
        shard_paths.append(str(path))
    capsys.readouterr()
    merged_path = tmp_path / "merged.json"
    assert cli_main(
        ["report", *shard_paths, "--report-out", str(merged_path)]
    ) == 0
    assert json.loads(merged_path.read_text())["scenarios"] == 3


def test_cli_report_gate_fails_on_failures(tmp_path, capsys):
    failing = SweepReport(registry_fingerprint="a", results=(
        ScenarioResult(ident="bad", component="c", scenario_fingerprint="f",
                       oracle_failures=1),
    ))
    path = tmp_path / "failing.json"
    path.write_text(failing.to_json(timings=True))
    assert cli_main(["report", str(path)]) == 1
    assert "oracle failure" in capsys.readouterr().err


def test_scenario_mapping_roundtrip_through_cli_formats(small_registry):
    mappings = [scenario_to_mapping(s) for s in small_registry]
    assert registry_from_mappings(mappings) == small_registry
