"""Registry semantics: builtin corpus, loaders, validation, no-drift.

The no-drift test is satellite (c): the builtin registry's catalog refs
must cover :func:`repro.components.discover_components` exactly — adding
a component module without a registry entry (or vice versa) fails here,
not in production.
"""

from __future__ import annotations

import json

import pytest

from repro.components import COMPONENTS, discover_components
from repro.core.errors import ScenarioError
from repro.scenarios import (
    ScenarioRegistry,
    builtin_registry,
    load_registry,
    registry_from_mappings,
    scenario_to_mapping,
)


def test_builtin_registry_validates_clean():
    assert builtin_registry().validate() == []


def test_builtin_registry_counts():
    registry = builtin_registry()
    assert len(registry.filtered("smoke")) >= 100  # the acceptance floor
    assert len(registry.filtered("ci")) == 40
    assert len(registry.filtered("paper")) == 2
    # ci ⊂ smoke: every CI scenario is also a smoke scenario.
    smoke_idents = {scenario.ident for scenario in registry.filtered("smoke")}
    assert all(scenario.ident in smoke_idents
               for scenario in registry.filtered("ci"))


def test_builtin_fingerprint_is_stable():
    assert builtin_registry().fingerprint() == builtin_registry().fingerprint()


def test_builtin_refs_cover_discovered_components_exactly():
    """Satellite (c): no drift between the component catalog and the
    registry's catalog-backed entries, in either direction."""
    refs = {
        scenario.component.ref
        for scenario in builtin_registry()
        if not scenario.component.is_generated
    }
    assert refs == set(discover_components())


def test_discovery_matches_package_exports():
    """The package-level COMPONENTS mapping is the discovery scan, and
    every discovered class is importable from the package namespace."""
    import repro.components as package

    assert COMPONENTS == discover_components()
    for name, cls in COMPONENTS.items():
        assert name in package.__all__
        assert getattr(package, name) is cls
        assert hasattr(cls, "__tspec__")


def test_json_roundtrip_preserves_registry():
    registry = builtin_registry()
    mappings = [scenario_to_mapping(scenario) for scenario in registry]
    reloaded = registry_from_mappings(mappings)
    assert reloaded == registry
    assert reloaded.fingerprint() == registry.fingerprint()


def test_load_registry_from_directory(tmp_path):
    registry = builtin_registry()
    few = list(registry)[:3]
    for position, scenario in enumerate(few):
        path = tmp_path / f"{position:02d}-{scenario.ident}.json"
        path.write_text(json.dumps(scenario_to_mapping(scenario)))
    loaded = load_registry(tmp_path)
    assert tuple(loaded) == tuple(few)


def test_load_registry_accepts_list_files(tmp_path):
    few = list(builtin_registry())[:2]
    path = tmp_path / "batch.json"
    path.write_text(json.dumps([scenario_to_mapping(s) for s in few]))
    assert tuple(load_registry(path)) == tuple(few)


def test_load_registry_rejects_missing_and_empty(tmp_path):
    with pytest.raises(ScenarioError):
        load_registry(tmp_path / "nope")
    with pytest.raises(ScenarioError):
        load_registry(tmp_path)  # directory without *.json


@pytest.mark.parametrize("patch,needle", [
    ({"ident": "Bad Ident!"}, "must match"),
    ({"component": {}}, "exactly one of"),
    ({"component": {"ref": "BoundedStack", "family": "queue"}},
     "exactly one of"),
    ({"component": {"family": "btree"}}, "unknown family"),
    ({"component": {"ref": "NoSuchThing"}}, "unknown component ref"),
    ({"component": {"ref": "BoundedStack"}, "methods": ["Nope"]},
     "not declared"),
    ({"operators": []}, "must not be empty"),
    ({"operators": ["IndVarBitNeg", "IndVarBitNeg"]}, "duplicate operators"),
    ({"operators": ["Bogus"]}, "unknown operator"),
    ({"oracle": "vibes"}, "unknown oracle"),
    ({"suite": {"edge_bound": 0}}, "edge_bound"),
    ({"budgets": {"step_budget": 0}}, "step_budget"),
    ({"tags": ["no-such-fault-class"]}, "unknown"),
    ({"unexpected": 1}, "unknown key"),
])
def test_validator_rejects_bad_entries(patch, needle):
    base = {"ident": "ok-entry", "component": {"family": "queue", "seed": 1}}
    base.update(patch)
    with pytest.raises(ScenarioError, match=needle):
        registry_from_mappings([base])


def test_duplicate_idents_rejected():
    entry = {"ident": "twice", "component": {"family": "queue", "seed": 1}}
    with pytest.raises(ScenarioError, match="duplicate scenario ident"):
        registry_from_mappings([entry, dict(entry)])


def test_filter_terms_are_conjunctive():
    registry = builtin_registry()
    both = registry.filtered("ci,queue")
    assert 0 < len(both) < len(registry.filtered("ci"))
    assert all(scenario.component.family == "queue" for scenario in both)
    assert len(registry.filtered("no-such-term")) == 0


def test_get_by_ident():
    registry = builtin_registry()
    assert registry.get("paper-oblist").component.ref == "CObList"
    with pytest.raises(KeyError):
        registry.get("missing")


def test_empty_filter_is_identity():
    registry = builtin_registry()
    assert registry.filtered("") is registry


def test_registry_equality_is_content_based():
    first = builtin_registry()
    second = ScenarioRegistry(tuple(first))
    assert first == second and first is not second
