"""Differential execution over generated components (satellite b).

For one generated component per family: the serial engine, the parallel
engine at workers ∈ {1, 2}, and a cached cold→warm pair must all agree
via :meth:`MutationRun.same_results` — the same contract the hand-written
components pin, now holding for synthesized classes whose modules only
exist in a temp workspace.
"""

from __future__ import annotations

import pytest

from repro.generator.driver import DriverGenerator
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.cache import MutationOutcomeCache
from repro.mutation.generate import build_battery
from repro.mutation.parallel import ParallelMutationAnalysis
from repro.scenarios import FAMILY_NAMES, GeneratorSpec, materialize, synthesize

#: One seed per family, small suites — the whole module stays fast.
DIFFERENTIAL_SEED = 13
MAX_MUTANTS = 40


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    return tmp_path_factory.mktemp("differential-ws")


def _subject(family, workspace):
    component = synthesize(GeneratorSpec(family, DIFFERENTIAL_SEED))
    cls = materialize(component, workspace)
    suite = DriverGenerator(cls.__tspec__, seed=20010701).generate()
    mutants, _, _ = build_battery(
        cls, _methods(cls), max_mutants=MAX_MUTANTS
    )
    return cls, suite, mutants


def _methods(cls):
    from repro.scenarios import default_methods

    return list(default_methods(cls.__tspec__))


@pytest.mark.parametrize("family", FAMILY_NAMES)
def test_serial_equals_parallel_workers_1_and_2(family, workspace):
    cls, suite, mutants = _subject(family, workspace)
    assert mutants, f"{family}: battery unexpectedly empty"
    serial = MutationAnalysis(cls, suite).analyze(mutants)
    for workers in (1, 2):
        parallel = ParallelMutationAnalysis(
            cls, suite, workers=workers
        ).analyze(mutants)
        assert serial.same_results(parallel), (
            f"{family}: parallel (workers={workers}) diverged from serial"
        )


@pytest.mark.parametrize("family", FAMILY_NAMES)
def test_cold_cache_equals_warm_cache(family, workspace, tmp_path):
    cls, suite, mutants = _subject(family, workspace)
    cache = MutationOutcomeCache(tmp_path / f"cache-{family}")
    cold = MutationAnalysis(cls, suite, cache=cache).analyze(mutants)
    warm = MutationAnalysis(cls, suite, cache=cache).analyze(mutants)
    assert cold.same_results(warm)
    assert warm.cache_stats is not None
    assert warm.cache_stats.misses == 0
    # Every dispatched verdict came from the store on the warm pass.
    assert warm.cache_stats.hits == cold.dispatched_count
    uncached = MutationAnalysis(cls, suite).analyze(mutants)
    assert uncached.same_results(warm)
