"""Pipelined sweep: differential matrix, warm replay, error isolation.

The pipelined scheduler's whole contract is *invisibility*: whatever
``inflight``, ``workers`` and cache temperature a sweep runs at, the
deterministic report projection must be byte-identical to the
sequential runner's.  On top of that, a fully-warm sweep of an
unchanged registry must replay from the scenario store without
executing a single mutant or reference pass, and one scenario dying of
an arbitrary ``Exception`` must cost exactly its own row, never its
neighbours in flight.
"""

from __future__ import annotations

import pytest

from repro.mutation.cache import MutationOutcomeCache
from repro.mutation.parallel import shutdown_shared_pool
from repro.obs import MemorySink, Telemetry
from repro.scenarios import SweepRunner, registry_from_mappings
import repro.scenarios.sweep as sweep_module

ENTRIES = [
    {
        "ident": "pipe-stack-bitneg",
        "component": {"family": "stack", "seed": 5},
        "operators": ["IndVarBitNeg"],
        "suite": {"max_cases": 6},
        "budgets": {"max_mutants": 6},
    },
    {
        "ident": "pipe-stack-glob",
        "component": {"family": "stack", "seed": 5},
        "operators": ["IndVarRepGlob"],
        "suite": {"max_cases": 6},
        "budgets": {"max_mutants": 6},
    },
    {
        "ident": "pipe-queue",
        "component": {"family": "queue", "seed": 2},
        "operators": ["IndVarRepGlob"],
        "suite": {"max_cases": 6},
        "budgets": {"max_mutants": 6},
    },
    {
        "ident": "pipe-account",
        "component": {"ref": "BankAccount"},
        "operators": ["IndVarRepGlob"],
        "suite": {"max_cases": 6},
        "budgets": {"max_mutants": 6},
    },
]

#: Spans whose presence means real work happened (reference execution,
#: mutant execution, battery compilation) — a fully-warm sweep emits none.
WORK_SPANS = ("analysis.reference", "analysis.mutant", "parallel.run",
              "executor.case", "generate.operator")


@pytest.fixture(scope="module", autouse=True)
def _shared_pool_cleanup():
    yield
    shutdown_shared_pool()


@pytest.fixture(scope="module")
def registry():
    return registry_from_mappings(ENTRIES)


@pytest.fixture(scope="module")
def baseline(registry, tmp_path_factory):
    workspace = tmp_path_factory.mktemp("baseline-ws")
    report = SweepRunner(registry, workspace=workspace).run()
    assert report.passed
    return report.to_json(timings=False)


class TestDifferentialMatrix:
    """inflight {1,2,4} × workers {1,2} × cache cold/warm ⇒ same bytes."""

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("inflight", [1, 2, 4])
    def test_report_is_byte_identical(self, registry, baseline, tmp_path,
                                      workers, inflight):
        cache_dir = tmp_path / "cache"
        cold = SweepRunner(
            registry, workers=workers, inflight=inflight,
            workspace=tmp_path / "ws-cold",
            cache=MutationOutcomeCache(cache_dir),
        ).run()
        assert cold.to_json(timings=False) == baseline
        warm = SweepRunner(
            registry, workers=workers, inflight=inflight,
            workspace=tmp_path / "ws-warm",
            cache=MutationOutcomeCache(cache_dir),
        ).run()
        assert warm.to_json(timings=False) == baseline

    def test_results_keep_registry_order(self, registry, tmp_path):
        report = SweepRunner(
            registry, inflight=4, workspace=tmp_path / "ws"
        ).run()
        assert [result.ident for result in report.results] == \
            [scenario.ident for scenario in registry]

    def test_progress_positions_stay_dense(self, registry, tmp_path):
        seen = []
        SweepRunner(registry, inflight=4, workspace=tmp_path / "ws").run(
            progress=lambda position, total, scenario, result:
                seen.append((position, total))
        )
        assert seen == [(index, len(ENTRIES))
                        for index in range(1, len(ENTRIES) + 1)]


class TestWarmReplay:
    """A fully-warm sweep executes zero mutants and zero reference passes."""

    def test_warm_sweep_does_no_work(self, registry, baseline, tmp_path):
        cache_dir = tmp_path / "cache"
        cold_cache = MutationOutcomeCache(cache_dir)
        cold = SweepRunner(
            registry, workspace=tmp_path / "ws-cold", cache=cold_cache,
        ).run()
        assert cold.passed
        assert cold_cache.scenario_stats()["stores"] == len(ENTRIES)

        telemetry = Telemetry(sink=MemorySink())
        warm_cache = MutationOutcomeCache(cache_dir, telemetry=telemetry)
        runner = SweepRunner(
            registry, inflight=2, workspace=tmp_path / "ws-warm",
            cache=warm_cache, telemetry=telemetry,
        )
        warm = runner.run()
        counters = telemetry.counters()
        spans = telemetry.span_stats()
        telemetry.close()

        assert warm.to_json(timings=False) == baseline
        assert warm.mutants_total == cold.mutants_total > 0
        # Every scenario replayed from the store …
        assert warm_cache.scenario_stats()["hits"] == len(ENTRIES)
        assert counters.get("sweep.scenario_cache_hits", 0) == len(ENTRIES)
        assert counters.get("sweep.scenario_cache_misses", 0) == 0
        # … and no engine ever ran: no reference memo was built, no
        # reference/mutant/battery span was emitted.
        assert len(runner._references) == 0
        assert not any(name in spans for name in WORK_SPANS)

    def test_editing_the_component_misses(self, registry, tmp_path,
                                          monkeypatch):
        cache_dir = tmp_path / "cache"
        SweepRunner(
            registry, workspace=tmp_path / "ws-cold",
            cache=MutationOutcomeCache(cache_dir),
        ).run()
        # A different component source hash must address a different
        # record: simulate the edit by perturbing the canonical rendering
        # of classes.
        real_canonical = sweep_module.canonical
        monkeypatch.setattr(
            sweep_module, "canonical",
            lambda value: "edited:" + real_canonical(value),
        )
        warm_cache = MutationOutcomeCache(cache_dir)
        report = SweepRunner(
            registry, workspace=tmp_path / "ws-warm", cache=warm_cache,
        ).run()
        assert report.passed
        assert warm_cache.scenario_stats()["hits"] == 0
        assert warm_cache.scenario_stats()["misses"] == len(ENTRIES)


class TestErrorIsolation:
    """One scenario's crash never takes down the scenarios beside it."""

    def test_non_repro_error_is_contained(self, registry, tmp_path,
                                          monkeypatch):
        real_synthesize = sweep_module.synthesize

        def hostile_synthesize(genspec):
            if genspec.family == "queue":
                raise RuntimeError("synthetic fault")
            return real_synthesize(genspec)

        monkeypatch.setattr(sweep_module, "synthesize", hostile_synthesize)
        telemetry = Telemetry(sink=MemorySink())
        report = SweepRunner(
            registry, inflight=2, workspace=tmp_path / "ws",
            telemetry=telemetry,
        ).run()
        counters = telemetry.counters()
        telemetry.close()

        assert not report.passed
        assert len(report.errors) == 1
        assert report.errors[0].ident == "pipe-queue"
        assert report.errors[0].error == "RuntimeError: synthetic fault"
        assert counters.get("sweep.errors", 0) == 1
        # The three survivors are complete, green rows.
        healthy = [result for result in report.results if not result.error]
        assert len(healthy) == 3
        assert all(result.mutants_total > 0 for result in healthy)
        assert all(result.oracle_failures == 0 for result in healthy)
