"""Generator soundness at scale: 100 seeded specs (satellite a).

Every (family, seed) recipe in a 5×20 grid must

* survive the writer→parser→writer pipeline as a fixed point,
* compile and instantiate as a real Python class, and
* run its own generated BIT suite green unmutated.

Plus the cross-process contract: a generated class pickles by content
(module, qualname, file path), so a subprocess that never synthesized it
can still unpickle and use it.
"""

from __future__ import annotations

import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bit.builtintest import BuiltInTest
from repro.core.errors import GenerationError
from repro.generator.driver import DriverGenerator
from repro.harness.executor import TestExecutor
from repro.scenarios import (
    FAMILY_NAMES,
    GeneratorSpec,
    materialize,
    synthesize,
)
from repro.tspec.parser import parse_tspec
from repro.tspec.writer import write_tspec

#: The satellite's grid: 5 families × 20 seeds = 100 recipes.
SEEDS = tuple(range(1, 21))
GRID = [(family, seed) for family in FAMILY_NAMES for seed in SEEDS]


@pytest.mark.parametrize("family,seed", GRID)
def test_spec_roundtrip_fixed_point(family, seed):
    component = synthesize(GeneratorSpec(family, seed))
    text = write_tspec(component.spec)
    parsed = parse_tspec(text)
    assert parsed.normalized() == component.spec.normalized()
    assert write_tspec(parsed) == text  # writer fixed point


@pytest.mark.parametrize("family,seed", GRID)
def test_component_compiles_and_instantiates(family, seed, tmp_path_factory):
    workspace = tmp_path_factory.getbasetemp() / "genspec-ws"
    component = synthesize(GeneratorSpec(family, seed))
    cls = materialize(component, workspace)
    assert issubclass(cls, BuiltInTest)
    assert cls.__name__ == component.class_name
    assert cls.__tspec__.normalized() == component.spec.normalized()
    constructor = component.spec.constructor_methods[0]
    arguments = [parameter.domain.low
                 if hasattr(parameter.domain, "low") else 1
                 for parameter in constructor.parameters]
    instance = cls(*arguments)
    assert instance.class_invariant()


@pytest.mark.parametrize("family", FAMILY_NAMES)
@pytest.mark.parametrize("seed", SEEDS)
def test_bit_suite_runs_green_unmutated(family, seed, tmp_path_factory):
    workspace = tmp_path_factory.getbasetemp() / "genspec-ws"
    component = synthesize(GeneratorSpec(family, seed))
    cls = materialize(component, workspace)
    suite = DriverGenerator(cls.__tspec__, seed=20010701).generate()
    assert len(suite.cases) > 0
    result = TestExecutor(cls).run_suite(suite)
    failing = [case for case in result.results
               if case.verdict.value != "pass"]
    assert not failing, (
        f"{component.class_name}: {len(failing)} failing unmutated cases: "
        + "; ".join(f"{case.case_ident}={case.verdict.value}"
                    for case in failing[:5])
    )


def test_synthesis_is_deterministic():
    first = synthesize(GeneratorSpec("queue", 7))
    second = synthesize(GeneratorSpec("queue", 7))
    assert first == second
    assert first.fingerprint() == second.fingerprint()
    # Different seeds must not collide on module identity.
    other = synthesize(GeneratorSpec("queue", 8))
    assert other.module_name != first.module_name


def test_unknown_family_and_bad_seed_rejected():
    with pytest.raises(GenerationError):
        GeneratorSpec("btree", 1)
    with pytest.raises(GenerationError):
        GeneratorSpec("queue", -1)


def test_generated_class_unpickles_in_fresh_process(tmp_path):
    """The content-addressed reducer ships (module, qualname, path); a
    fresh interpreter that never ran the generator must resolve it."""
    component = synthesize(GeneratorSpec("ringbuffer", 3))
    cls = materialize(component, tmp_path)
    payload_path = tmp_path / "payload.pickle"
    payload_path.write_bytes(pickle.dumps(cls))
    src = str(Path(__file__).resolve().parents[2] / "src")
    script = (
        "import pickle, sys\n"
        f"cls = pickle.load(open({str(payload_path)!r}, 'rb'))\n"
        f"assert cls.__name__ == {component.class_name!r}, cls\n"
        "print('unpickled', cls.__name__)\n"
    )
    completed = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True,
        env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 0, completed.stderr
    assert f"unpickled {component.class_name}" in completed.stdout


def test_in_process_pickle_roundtrip_is_identity(tmp_path):
    component = synthesize(GeneratorSpec("stack", 5))
    cls = materialize(component, tmp_path)
    assert pickle.loads(pickle.dumps(cls)) is cls
