"""Ctrl-C and cooperative-cancel regressions for the sweep runner.

The bug under test: a SIGINT during a pipelined sweep used to leave the
main thread hanging in ``join`` while scheduler threads sat blocked in
the worker pool.  The contract now: the interrupt drains cooperatively,
``run()`` returns promptly with the interrupted scenario and every
unstarted one marked cancelled, and the report gate fails.
"""

from __future__ import annotations

import signal
import threading
import time

import pytest

from repro.scenarios import SweepRunner, registry_from_mappings

FAST = {
    "component": {"ref": "BankAccount"},
    "operators": ["IndVarRepGlob"],
    "suite": {"max_cases": 6},
    "budgets": {"max_mutants": 8},
}


def _registry(*idents):
    return registry_from_mappings(
        [dict(FAST, ident=ident) for ident in idents]
    )


class BlockingRunner(SweepRunner):
    """Scenarios whose ident starts with ``blocker`` park on the sweep
    cancel event — a stand-in for an engine blocked in the worker pool."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.blocked = threading.Semaphore(0)

    def run_scenario(self, scenario, telemetry=None, cancel=None,
                     rlimits=None):
        if scenario.ident.startswith("blocker"):
            self.blocked.release()
            assert self._cancel.wait(timeout=30), "cancel never arrived"
            return self._cancelled_result(scenario)
        return super().run_scenario(scenario, telemetry=telemetry,
                                    cancel=cancel, rlimits=rlimits)


def test_request_cancel_before_run_marks_everything_cancelled():
    runner = SweepRunner(_registry("cancel-a", "cancel-b"))
    runner.request_cancel()
    assert runner.cancelled
    started = time.monotonic()
    report = runner.run()
    assert time.monotonic() - started < 10
    assert len(report.results) == 2
    for result in report.results:
        assert result.error.startswith("RunCancelled")
        assert result.mutants_total == 0
    assert report.passed is False  # the gate fails loudly, never silently


def test_pipelined_sigint_returns_promptly_with_rest_cancelled():
    # Both scheduler threads park in "blocker" scenarios, so the two
    # fast scenarios never start; SIGINT lands on the main thread
    # blocked in join — the pre-fix hang.
    runner = BlockingRunner(
        _registry("blocker-a", "blocker-b", "fast-a", "fast-b"),
        inflight=2,
    )

    main_ident = threading.main_thread().ident

    def interrupt():
        assert runner.blocked.acquire(timeout=30)
        assert runner.blocked.acquire(timeout=30)
        time.sleep(0.2)  # let the main thread settle into join
        # a real SIGINT to the main thread: unlike interrupt_main it
        # wakes a join blocked in the thread-state lock, like Ctrl-C does
        signal.pthread_kill(main_ident, signal.SIGINT)

    threading.Thread(target=interrupt, daemon=True).start()
    started = time.monotonic()
    try:
        report = runner.run()
    except KeyboardInterrupt:  # the regression: the interrupt escaped
        pytest.fail("KeyboardInterrupt escaped the pipelined sweep")
    assert time.monotonic() - started < 30
    assert runner.cancelled
    by_ident = {result.ident: result for result in report.results}
    assert len(by_ident) == 4
    for ident in ("blocker-a", "blocker-b"):
        assert by_ident[ident].error.startswith("RunCancelled")
    for ident in ("fast-a", "fast-b"):
        assert by_ident[ident].error == (
            "RunCancelled: sweep cancelled before this scenario ran")
    assert report.passed is False


def test_sequential_sigint_cancels_current_and_rest():
    class ExplodingRunner(SweepRunner):
        def run_scenario(self, scenario, telemetry=None, cancel=None,
                         rlimits=None):
            if scenario.ident == "boom":
                raise KeyboardInterrupt
            return super().run_scenario(scenario, telemetry=telemetry,
                                        cancel=cancel, rlimits=rlimits)

    runner = ExplodingRunner(_registry("seq-a", "boom", "seq-b"))
    report = runner.run()
    assert runner.cancelled
    by_ident = {result.ident: result for result in report.results}
    assert by_ident["seq-a"].error == ""  # completed before the interrupt
    assert by_ident["seq-a"].mutants_total > 0
    assert by_ident["boom"].error.startswith("RunCancelled")
    assert by_ident["seq-b"].error.startswith("RunCancelled")
    assert report.passed is False


def test_cancel_mid_pipeline_still_reports_started_work():
    # request_cancel from another thread (the SIGTERM path): scenarios
    # already finished keep their real rows; the blocked one drains.
    runner = BlockingRunner(
        _registry("fast-a", "blocker-a", "fast-b"), inflight=2,
    )

    def cancel():
        assert runner.blocked.acquire(timeout=30)
        runner.request_cancel()

    threading.Thread(target=cancel, daemon=True).start()
    report = runner.run()
    by_ident = {result.ident: result for result in report.results}
    assert by_ident["blocker-a"].error.startswith("RunCancelled")
    # fast-a ran on the second scheduler thread before (or while) the
    # cancel landed — either a real row or a cancelled one, never missing
    assert len(by_ident) == 3
    assert report.passed is False
