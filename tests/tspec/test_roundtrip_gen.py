"""Seeded-random round-trip: 50 generated specs hit the write fixed point.

Complements the hypothesis property in ``test_writer_roundtrip.py`` with a
deterministic :class:`~repro.core.rng.ReproRandom` generator — the same
seeded-reproducibility discipline the suite generator uses — so the exact
50 specs are stable across machines and runs.  For each spec:

* ``parse(write(spec)) == spec.normalized()`` (semantic round trip), and
* ``write(parse(write(spec))) == write(spec)`` (the written text is a
  fixed point: one normalization, then byte-stable forever).
"""

from __future__ import annotations

import pytest

from repro.core.domains import (
    BoolDomain,
    FloatRangeDomain,
    ObjectDomain,
    PointerDomain,
    RangeDomain,
    SetDomain,
    StringDomain,
)
from repro.core.rng import ReproRandom
from repro.tspec.builder import SpecBuilder
from repro.tspec.parser import parse_tspec
from repro.tspec.writer import write_tspec

SPEC_COUNT = 50
BASE_SEED = 20010701

_CATEGORIES = ("update", "access", "process")


def random_domain(rng: ReproRandom):
    choice = rng.randint(0, 6)
    if choice == 0:
        low = rng.randint(-1000, 1000)
        return RangeDomain(low, low + rng.randint(0, 1000))
    if choice == 1:
        low = float(rng.randint(-100, 100))
        return FloatRangeDomain(low, low + rng.randint(0, 50))
    if choice == 2:
        members = tuple(
            dict.fromkeys(
                rng.randint(-50, 50) for _ in range(rng.randint(1, 4))
            )
        )
        return SetDomain(members)
    if choice == 3:
        minimum = rng.randint(0, 5)
        return StringDomain(minimum, minimum + rng.randint(0, 10))
    if choice == 4:
        return BoolDomain()
    if choice == 5:
        return ObjectDomain(f"CHeld{rng.randint(0, 9)}")
    return PointerDomain(ObjectDomain(f"CRef{rng.randint(0, 9)}"))


def random_spec(rng: ReproRandom):
    """One random-but-valid spec built through the public builder."""
    builder = SpecBuilder(f"CGen{rng.randint(0, 9999)}")
    for index in range(rng.randint(0, 3)):
        builder.attribute(f"attr{index}", random_domain(rng))
    builder.constructor(
        "Create",
        [(f"c{position}", random_domain(rng))
         for position in range(rng.randint(0, 2))],
    )
    method_names = []
    for index in range(rng.randint(0, 5)):
        name = f"Op{index}"
        method_names.append(name)
        builder.method(
            name,
            [(f"p{position}", random_domain(rng))
             for position in range(rng.randint(0, 3))],
            category=rng.choice(_CATEGORIES),
        )
    builder.destructor("Destroy")
    builder.node("birth", ["Create"], start=True)
    if method_names:
        group_count = rng.randint(1, min(2, len(method_names)))
        groups = [method_names[index::group_count]
                  for index in range(group_count)]
        aliases = []
        for index, group in enumerate(groups):
            alias = f"work{index}"
            aliases.append(alias)
            builder.node(alias, group)
        builder.node("death", ["Destroy"])
        builder.chain("birth", *aliases, "death")
        if rng.randint(0, 1):
            builder.edge(aliases[0], aliases[0])  # self-loop
        if rng.randint(0, 1):
            builder.edge("birth", "death")  # early exit
        if len(aliases) > 1 and rng.randint(0, 1):
            builder.edge(aliases[-1], aliases[0])  # back edge
    else:
        builder.node("death", ["Destroy"])
        builder.edge("birth", "death")
    return builder.build()


@pytest.fixture(scope="module")
def generated_specs():
    return [random_spec(ReproRandom(BASE_SEED).fork(index))
            for index in range(SPEC_COUNT)]


def test_fifty_distinct_specs(generated_specs):
    assert len(generated_specs) == SPEC_COUNT
    assert len({write_tspec(spec) for spec in generated_specs}) > 1


@pytest.mark.parametrize("index", range(SPEC_COUNT))
def test_write_parse_write_fixed_point(index, generated_specs):
    spec = generated_specs[index]
    text = write_tspec(spec)
    reparsed = parse_tspec(text)
    assert reparsed == spec.normalized()
    assert write_tspec(reparsed) == text


def test_generation_is_seed_deterministic():
    first = [write_tspec(random_spec(ReproRandom(BASE_SEED).fork(index)))
             for index in range(5)]
    second = [write_tspec(random_spec(ReproRandom(BASE_SEED).fork(index)))
              for index in range(5)]
    assert first == second
