"""Round-trip tests: write_tspec ∘ parse_tspec is the identity (normalized).

Includes a hypothesis strategy that builds random-but-valid specs through
the builder, so the round-trip property is checked over a broad family of
specs, not just the shipped components.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.components import (
    ACCOUNT_SPEC,
    OBLIST_SPEC,
    PRODUCT_SPEC,
    PROVIDER_SPEC,
    SORTABLE_OBLIST_SPEC,
    STACK_SPEC,
)
from repro.core.domains import (
    BoolDomain,
    FloatRangeDomain,
    ObjectDomain,
    PointerDomain,
    RangeDomain,
    SetDomain,
    StringDomain,
)
from repro.tspec.builder import SpecBuilder
from repro.tspec.parser import parse_tspec
from repro.tspec.writer import write_tspec

ALL_COMPONENT_SPECS = (
    OBLIST_SPEC,
    SORTABLE_OBLIST_SPEC,
    PRODUCT_SPEC,
    PROVIDER_SPEC,
    STACK_SPEC,
    ACCOUNT_SPEC,
)


class TestComponentSpecsRoundTrip:
    @pytest.mark.parametrize("spec", ALL_COMPONENT_SPECS,
                             ids=lambda spec: spec.name)
    def test_roundtrip(self, spec):
        text = write_tspec(spec)
        assert parse_tspec(text) == spec.normalized()

    @pytest.mark.parametrize("spec", ALL_COMPONENT_SPECS,
                             ids=lambda spec: spec.name)
    def test_written_text_mentions_every_method(self, spec):
        text = write_tspec(spec)
        for method in spec.methods:
            assert method.ident in text
            assert method.name in text

    def test_written_text_is_stable(self):
        first = write_tspec(PRODUCT_SPEC)
        second = write_tspec(parse_tspec(first))
        assert first == second


# ---------------------------------------------------------------------------
# Property-based round trip over generated specs
# ---------------------------------------------------------------------------

_identifiers = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True)
_safe_text = st.from_regex(r"[A-Za-z0-9_ .-]{1,12}", fullmatch=True)


@st.composite
def domains(draw):
    choice = draw(st.integers(0, 6))
    if choice == 0:
        low = draw(st.integers(-1000, 1000))
        return RangeDomain(low, low + draw(st.integers(0, 1000)))
    if choice == 1:
        low = draw(st.integers(-100, 100))
        return FloatRangeDomain(float(low), float(low + draw(st.integers(0, 50))))
    if choice == 2:
        members = draw(st.lists(
            st.one_of(st.integers(-50, 50), _safe_text), min_size=1, max_size=4,
            unique_by=lambda v: (type(v).__name__, v),
        ))
        return SetDomain(tuple(members))
    if choice == 3:
        minimum = draw(st.integers(0, 5))
        return StringDomain(minimum, minimum + draw(st.integers(0, 10)))
    if choice == 4:
        return BoolDomain()
    if choice == 5:
        return ObjectDomain(draw(_identifiers))
    return PointerDomain(ObjectDomain(draw(_identifiers)))


@st.composite
def specs(draw):
    builder = SpecBuilder(draw(_identifiers))
    attribute_names = draw(st.lists(_identifiers, max_size=3, unique=True))
    for name in attribute_names:
        builder.attribute(name, draw(domains()))
    builder.constructor("Create")
    method_count = draw(st.integers(0, 4))
    method_names = []
    for index in range(method_count):
        name = f"Op{index}"
        method_names.append(name)
        parameters = [
            (f"p{position}", draw(domains()))
            for position in range(draw(st.integers(0, 3)))
        ]
        builder.method(name, parameters, category=draw(
            st.sampled_from(["update", "access", "process"])
        ))
    builder.destructor("Destroy")
    builder.node("birth", ["Create"], start=True)
    if method_names:
        builder.node("work", method_names)
        builder.node("death", ["Destroy"])
        builder.chain("birth", "work", "death")
        if draw(st.booleans()):
            builder.edge("work", "work")
        if draw(st.booleans()):
            builder.edge("birth", "death")
    else:
        builder.node("death", ["Destroy"])
        builder.edge("birth", "death")
    return builder.build()


class TestGeneratedSpecsRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(specs())
    def test_roundtrip_property(self, spec):
        text = write_tspec(spec)
        assert parse_tspec(text) == spec.normalized()

    @settings(max_examples=30, deadline=None)
    @given(specs())
    def test_double_write_is_stable(self, spec):
        once = write_tspec(spec)
        twice = write_tspec(parse_tspec(once))
        assert once == twice
