"""Tests for the t-spec tokenizer and parser (Figure 3 format)."""

from __future__ import annotations

import pytest

from repro.core.domains import (
    BoolDomain,
    FloatRangeDomain,
    ObjectDomain,
    PointerDomain,
    RangeDomain,
    SetDomain,
    StringDomain,
)
from repro.core.errors import SpecParseError
from repro.tspec.model import MethodCategory
from repro.tspec.parser import parse_tspec, tokenize

MINIMAL = """
// A minimal but complete specification.
Class ('Counter', No, <empty>, <empty>)
Method (m1, 'Counter', <empty>, constructor, 0)
Method (m2, '~Counter', <empty>, destructor, 0)
Node (n1, Yes, 1, [m1])
Node (n2, No, 0, [m2])
Edge (n1, n2)
"""

PRODUCT_LIKE = """
Class ('Product', No, <empty>, ['product.cpp', 'product.h'])
Attribute ('qty', range, 1, 99999)       // from Figure 3
Attribute ('name', string, 1, 30)
Attribute ('price', float_range, 0.0, 100.5)
Method (m1, 'Product', <empty>, constructor, 0)
Method (m5, 'UpdateName', void, update, 1)
Parameter (m5, 'n', string, 1, 30)
Method (m6, 'Mode', <empty>, update, 1)
Parameter (m6, 'mode', set, ['p1', 'p2', 'p3'])
Method (m7, 'UpdateProv', <empty>, update, 1)
Parameter (m7, 'prv', pointer, 'Provider')
Method (m9, '~Product', <empty>, destructor, 0)
Node (n1, Yes, 2, [m1])
Node (n2, No, 2, [m5, m6, m7])
Node (n3, No, 0, [m9])
Edge (n1, n2)
Edge (n1, n3)
Edge (n2, n2)
Edge (n2, n3)
"""


class TestTokenizer:
    def test_basic_kinds(self):
        tokens = tokenize("Class ('X', No, <empty>, [1, -2, 3.5])")
        kinds = [token.kind for token in tokens]
        assert kinds == [
            "IDENT", "LPAREN", "STRING", "COMMA", "IDENT", "COMMA",
            "EMPTY", "COMMA", "LBRACKET", "NUMBER", "COMMA", "NUMBER",
            "COMMA", "NUMBER", "RBRACKET", "RPAREN",
        ]

    def test_numbers(self):
        tokens = tokenize("(1, -2, 3.5, +4)")
        values = [token.value for token in tokens if token.kind == "NUMBER"]
        assert values == [1, -2, 3.5, 4]

    def test_comment_stripping(self):
        tokens = tokenize("Edge (n1, n2) // comment ignored")
        assert all(token.kind != "STRING" for token in tokens)
        assert len(tokens) == 6

    def test_comment_inside_string_kept(self):
        tokens = tokenize("Attribute ('path//name', string)")
        strings = [token.value for token in tokens if token.kind == "STRING"]
        assert strings == ["path//name"]

    def test_double_quoted_strings(self):
        tokens = tokenize('Class ("X", No, <empty>, <empty>)')
        assert tokens[2].value == "X"

    def test_unterminated_string(self):
        with pytest.raises(SpecParseError):
            tokenize("Class ('oops")

    def test_unexpected_character(self):
        with pytest.raises(SpecParseError):
            tokenize("Edge (n1 & n2)")

    def test_line_and_column_tracking(self):
        tokens = tokenize("Edge (n1, n2)\nEdge (n2, n3)")
        assert tokens[0].line == 1
        assert tokens[6].line == 2


class TestParseMinimal:
    def test_header(self):
        spec = parse_tspec(MINIMAL)
        assert spec.name == "Counter"
        assert not spec.is_abstract
        assert spec.superclass is None
        assert spec.source_files == ()

    def test_methods(self):
        spec = parse_tspec(MINIMAL)
        assert [method.ident for method in spec.methods] == ["m1", "m2"]
        assert spec.method_by_ident("m1").category is MethodCategory.CONSTRUCTOR
        assert spec.method_by_ident("m2").is_destructor

    def test_nodes_and_edges(self):
        spec = parse_tspec(MINIMAL)
        assert [node.ident for node in spec.nodes] == ["n1", "n2"]
        assert spec.nodes[0].is_start
        assert spec.nodes[0].declared_out_degree == 1
        assert spec.edges[0].source == "n1"
        assert spec.edges[0].target == "n2"


class TestParseDomains:
    def test_attribute_domains(self):
        spec = parse_tspec(PRODUCT_LIKE)
        assert spec.attribute_by_name("qty").domain == RangeDomain(1, 99999)
        assert spec.attribute_by_name("name").domain == StringDomain(1, 30)
        assert spec.attribute_by_name("price").domain == FloatRangeDomain(0.0, 100.5)

    def test_parameter_attachment_in_order(self):
        spec = parse_tspec(PRODUCT_LIKE)
        update_name = spec.method_by_ident("m5")
        assert update_name.arity == 1
        assert update_name.parameters[0].name == "n"
        assert update_name.parameters[0].domain == StringDomain(1, 30)

    def test_set_parameter(self):
        spec = parse_tspec(PRODUCT_LIKE)
        mode = spec.method_by_ident("m6")
        assert mode.parameters[0].domain == SetDomain(("p1", "p2", "p3"))

    def test_pointer_parameter(self):
        spec = parse_tspec(PRODUCT_LIKE)
        prov = spec.method_by_ident("m7")
        assert prov.parameters[0].domain == PointerDomain(ObjectDomain("Provider"))

    def test_source_file_list(self):
        spec = parse_tspec(PRODUCT_LIKE)
        assert spec.source_files == ("product.cpp", "product.h")

    def test_bool_and_bare_string_domains(self):
        text = """
        Class ('X', No, <empty>, <empty>)
        Attribute ('flag', bool)
        Attribute ('tag', string)
        Method (m1, 'X', <empty>, constructor, 0)
        Method (m2, '~X', <empty>, destructor, 0)
        Node (n1, Yes, 1, [m1])
        Node (n2, No, 0, [m2])
        Edge (n1, n2)
        """
        spec = parse_tspec(text)
        assert spec.attribute_by_name("flag").domain == BoolDomain()
        assert spec.attribute_by_name("tag").domain == StringDomain()

    def test_object_domain(self):
        text = """
        Class ('X', No, <empty>, <empty>)
        Method (m1, 'X', <empty>, constructor, 1)
        Parameter (m1, 'o', object, 'Widget')
        Method (m2, '~X', <empty>, destructor, 0)
        Node (n1, Yes, 1, [m1])
        Node (n2, No, 0, [m2])
        Edge (n1, n2)
        """
        spec = parse_tspec(text)
        domain = spec.method_by_ident("m1").parameters[0].domain
        assert domain == ObjectDomain("Widget")


class TestParseErrors:
    def test_missing_class_record(self):
        with pytest.raises(SpecParseError, match="no Class record"):
            parse_tspec("Edge (n1, n2)")

    def test_duplicate_class_record(self):
        text = MINIMAL + "\nClass ('Another', No, <empty>, <empty>)"
        with pytest.raises(SpecParseError, match="duplicate Class"):
            parse_tspec(text)

    def test_unknown_record_kind(self):
        with pytest.raises(SpecParseError, match="unknown record"):
            parse_tspec("Klass ('X', No, <empty>, <empty>)")

    def test_parameter_for_unknown_method(self):
        text = """
        Class ('X', No, <empty>, <empty>)
        Parameter (m9, 'n', string)
        """
        with pytest.raises(SpecParseError, match="unknown method"):
            parse_tspec(text)

    def test_bad_yes_no(self):
        with pytest.raises(SpecParseError, match="Yes/No"):
            parse_tspec("Class ('X', Maybe, <empty>, <empty>)")

    def test_unknown_domain_kind(self):
        text = """
        Class ('X', No, <empty>, <empty>)
        Attribute ('a', quaternion, 1, 2)
        """
        with pytest.raises(SpecParseError, match="unknown domain"):
            parse_tspec(text)

    def test_truncated_record(self):
        with pytest.raises(SpecParseError):
            parse_tspec("Class ('X', No, <empty>")

    def test_unknown_category(self):
        text = """
        Class ('X', No, <empty>, <empty>)
        Method (m1, 'X', <empty>, sideways, 0)
        """
        with pytest.raises(Exception, match="category"):
            parse_tspec(text)

    def test_superclass_string(self):
        text = """
        Class ('Y', No, 'X', <empty>)
        Method (m1, 'Y', <empty>, constructor, 0)
        Method (m2, '~Y', <empty>, destructor, 0)
        Node (n1, Yes, 1, [m1])
        Node (n2, No, 0, [m2])
        Edge (n1, n2)
        """
        assert parse_tspec(text).superclass == "X"

    def test_abstract_class(self):
        text = "Class ('A', Yes, <empty>, <empty>)"
        assert parse_tspec(text).is_abstract
