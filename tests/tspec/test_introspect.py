"""Tests for skeleton t-spec derivation via dynamic introspection."""

from __future__ import annotations

from repro.core.domains import (
    BoolDomain,
    FloatRangeDomain,
    ObjectDomain,
    RangeDomain,
    StringDomain,
)
from repro.tspec.introspect import derive_skeleton_spec, guess_domain
from repro.tspec.model import MethodCategory
from repro.tspec.validate import find_problems


class _Gadget:
    """Introspection subject with annotated and unannotated methods."""

    def __init__(self, size: int, label: str = "g"):
        self.size = size
        self.label = label

    def update_size(self, size: int) -> None:
        self.size = size

    def get_label(self) -> str:
        return self.label

    def process(self, factor: float, enabled: bool):
        return self.size * factor if enabled else 0

    def _internal(self):
        return None


class TestGuessDomain:
    def test_known_annotations(self):
        assert isinstance(guess_domain(int), RangeDomain)
        assert isinstance(guess_domain(float), FloatRangeDomain)
        assert isinstance(guess_domain(str), StringDomain)
        assert isinstance(guess_domain(bool), BoolDomain)

    def test_string_annotations(self):
        assert isinstance(guess_domain("int"), RangeDomain)
        assert isinstance(guess_domain("Widget"), ObjectDomain)

    def test_class_annotation(self):
        class Widget:
            pass
        domain = guess_domain(Widget)
        assert isinstance(domain, ObjectDomain)
        assert domain.class_name == "Widget"

    def test_default_value_fallback(self):
        import inspect
        domain = guess_domain(inspect.Parameter.empty, default=3)
        assert isinstance(domain, RangeDomain)

    def test_unknown_becomes_object(self):
        import inspect
        domain = guess_domain(inspect.Parameter.empty)
        assert isinstance(domain, ObjectDomain)


class TestSkeleton:
    def test_skeleton_is_valid(self):
        spec = derive_skeleton_spec(_Gadget)
        assert find_problems(spec) == []

    def test_constructor_parameters(self):
        spec = derive_skeleton_spec(_Gadget)
        constructor = spec.constructor_methods[0]
        assert [parameter.name for parameter in constructor.parameters] == [
            "size", "label",
        ]
        assert isinstance(constructor.parameters[0].domain, RangeDomain)

    def test_private_methods_excluded(self):
        spec = derive_skeleton_spec(_Gadget)
        names = {method.name for method in spec.methods}
        assert "_internal" not in names

    def test_categorization_heuristics(self):
        spec = derive_skeleton_spec(_Gadget)
        by_name = {method.name: method for method in spec.methods}
        assert by_name["update_size"].category is MethodCategory.UPDATE
        assert by_name["get_label"].category is MethodCategory.ACCESS
        assert by_name["process"].category is MethodCategory.PROCESS

    def test_star_model_shape(self):
        spec = derive_skeleton_spec(_Gadget)
        assert len(spec.nodes) == 3
        adjacency = spec.adjacency()
        work = spec.nodes[1].ident
        assert work in adjacency[work]  # self loop: any order allowed

    def test_synthetic_destructor(self):
        spec = derive_skeleton_spec(_Gadget)
        assert spec.destructor_methods[0].name == "~_Gadget"

    def test_superclass_recorded(self):
        class Base:
            pass

        class Derived(Base):
            def work(self):
                return 1

        spec = derive_skeleton_spec(Derived)
        assert spec.superclass == "Base"

    def test_attribute_domains_passthrough(self):
        spec = derive_skeleton_spec(
            _Gadget, attribute_domains=[("size", RangeDomain(0, 10))]
        )
        assert spec.attribute_by_name("size").domain == RangeDomain(0, 10)

    def test_methodless_class(self):
        class Bare:
            pass

        spec = derive_skeleton_spec(Bare)
        assert find_problems(spec) == []
        assert len(spec.nodes) == 2  # birth and death only

    def test_skeleton_drives_generation(self):
        """The permissive skeleton must be generateable end to end."""
        from repro.generator.driver import DriverGenerator

        spec = derive_skeleton_spec(_Gadget)
        suite = DriverGenerator(spec, max_transactions=200).generate()
        assert len(suite) > 0
