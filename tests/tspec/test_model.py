"""Tests for the t-spec data model (lookups, derived views)."""

from __future__ import annotations

import pytest

from repro.core.domains import RangeDomain
from repro.core.errors import SpecValidationError
from repro.tspec.model import (
    AttributeSpec,
    ClassSpec,
    EdgeSpec,
    MethodCategory,
    MethodSpec,
    NodeSpec,
    ParameterSpec,
)


def small_spec() -> ClassSpec:
    return ClassSpec(
        name="Sample",
        attributes=(AttributeSpec("count", RangeDomain(0, 9)),),
        methods=(
            MethodSpec("m1", "Sample", MethodCategory.CONSTRUCTOR),
            MethodSpec("m2", "Work", MethodCategory.PROCESS,
                       parameters=(ParameterSpec("n", RangeDomain(0, 5)),),
                       return_type="int"),
            MethodSpec("m3", "~Sample", MethodCategory.DESTRUCTOR),
        ),
        nodes=(
            NodeSpec("n1", ("m1",), is_start=True),
            NodeSpec("n2", ("m2",)),
            NodeSpec("n3", ("m3",)),
        ),
        edges=(EdgeSpec("n1", "n2"), EdgeSpec("n2", "n3"), EdgeSpec("n1", "n3")),
    )


class TestLookups:
    def test_method_by_ident(self):
        spec = small_spec()
        assert spec.method_by_ident("m2").name == "Work"
        with pytest.raises(KeyError):
            spec.method_by_ident("m9")

    def test_methods_by_name(self):
        spec = small_spec()
        assert len(spec.methods_by_name("Work")) == 1
        assert spec.methods_by_name("Missing") == ()

    def test_node_by_ident(self):
        spec = small_spec()
        assert spec.node_by_ident("n2").methods == ("m2",)
        with pytest.raises(KeyError):
            spec.node_by_ident("n9")

    def test_attribute_by_name(self):
        spec = small_spec()
        assert spec.attribute_by_name("count").domain == RangeDomain(0, 9)
        with pytest.raises(KeyError):
            spec.attribute_by_name("missing")


class TestDerivedViews:
    def test_constructor_and_destructor_views(self):
        spec = small_spec()
        assert [method.ident for method in spec.constructor_methods] == ["m1"]
        assert [method.ident for method in spec.destructor_methods] == ["m3"]

    def test_start_nodes_flagged(self):
        spec = small_spec()
        assert [node.ident for node in spec.start_nodes] == ["n1"]

    def test_start_nodes_fall_back_to_constructors(self):
        spec = small_spec()
        from dataclasses import replace
        unflagged = replace(
            spec,
            nodes=tuple(replace(node, is_start=False) for node in spec.nodes),
        )
        assert [node.ident for node in unflagged.start_nodes] == ["n1"]

    def test_end_nodes_from_destructors(self):
        spec = small_spec()
        assert [node.ident for node in spec.end_nodes] == ["n3"]

    def test_adjacency(self):
        adjacency = small_spec().adjacency()
        assert adjacency["n1"] == ("n2", "n3")
        assert adjacency["n2"] == ("n3",)
        assert adjacency["n3"] == ()

    def test_in_out_edges(self):
        spec = small_spec()
        assert len(spec.outgoing_edges("n1")) == 2
        assert len(spec.incoming_edges("n3")) == 2

    def test_stats(self):
        counts = small_spec().stats()
        assert counts == {"attributes": 1, "methods": 3, "nodes": 3, "links": 3}

    def test_describe_mentions_model_size(self):
        text = small_spec().describe()
        assert "3 nodes" in text and "3 links" in text

    def test_iter_parameter_specs(self):
        pairs = list(small_spec().iter_parameter_specs())
        assert len(pairs) == 1
        method, parameter = pairs[0]
        assert method.ident == "m2" and parameter.name == "n"


class TestMethodSpec:
    def test_signature_rendering(self):
        method = small_spec().method_by_ident("m2")
        text = method.signature()
        assert text.startswith("Work(")
        assert "-> int" in text

    def test_arity_and_structured(self):
        method = small_spec().method_by_ident("m2")
        assert method.arity == 1
        assert not method.has_structured_parameters

    def test_category_keywords(self):
        assert MethodCategory.from_keyword("CONSTRUCTOR") is MethodCategory.CONSTRUCTOR
        with pytest.raises(SpecValidationError):
            MethodCategory.from_keyword("bogus")


class TestNodeSpec:
    def test_empty_node_rejected(self):
        with pytest.raises(SpecValidationError):
            NodeSpec("n1", ())


class TestNormalized:
    def test_fills_out_degrees(self):
        spec = small_spec()
        normalized = spec.normalized()
        degrees = {node.ident: node.declared_out_degree for node in normalized.nodes}
        assert degrees == {"n1": 2, "n2": 1, "n3": 0}

    def test_idempotent(self):
        spec = small_spec().normalized()
        assert spec.normalized() == spec
