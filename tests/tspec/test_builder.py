"""Tests for the fluent SpecBuilder."""

from __future__ import annotations

import pytest

from repro.core.domains import RangeDomain, StringDomain
from repro.core.errors import SpecError, SpecValidationError
from repro.tspec.builder import SpecBuilder
from repro.tspec.model import MethodCategory, ParameterSpec


def counter_builder() -> SpecBuilder:
    return (
        SpecBuilder("Counter")
        .constructor("Counter")
        .destructor("~Counter")
        .method("Increment", category="update")
        .method("Value", category="access", return_type="int")
        .node("birth", ["Counter"], start=True)
        .node("work", ["Increment", "Value"])
        .node("death", ["~Counter"])
        .chain("birth", "work", "death")
        .edge("work", "work")
        .edge("birth", "death")
    )


class TestBuilding:
    def test_builds_valid_spec(self):
        spec = counter_builder().build()
        assert spec.name == "Counter"
        assert len(spec.methods) == 4
        assert len(spec.nodes) == 3
        assert len(spec.edges) == 4

    def test_auto_idents(self):
        spec = counter_builder().build()
        assert spec.method_idents == ("m1", "m2", "m3", "m4")
        assert [node.ident for node in spec.nodes] == ["n1", "n2", "n3"]

    def test_explicit_ident(self):
        spec = (
            SpecBuilder("X")
            .constructor("X", ident="ctor")
            .destructor("~X")
            .node("birth", ["X"], start=True)
            .node("death", ["~X"])
            .edge("birth", "death")
            .build()
        )
        assert spec.methods[0].ident == "ctor"

    def test_duplicate_explicit_ident_rejected(self):
        builder = SpecBuilder("X").constructor("X", ident="m1")
        with pytest.raises(SpecError, match="already used"):
            builder.method("Y", ident="m1")

    def test_parameters_from_tuples_and_specs(self):
        builder = SpecBuilder("X").constructor("X")
        builder.method("Mixed", [
            ("a", RangeDomain(0, 5)),
            ParameterSpec("b", StringDomain(1, 3)),
        ])
        builder.destructor("~X")
        builder.node("birth", ["X"], start=True)
        builder.node("work", ["Mixed"])
        builder.node("death", ["~X"])
        builder.chain("birth", "work", "death")
        spec = builder.build()
        mixed = spec.methods_by_name("Mixed")[0]
        assert [parameter.name for parameter in mixed.parameters] == ["a", "b"]

    def test_category_resolution(self):
        spec = counter_builder().build()
        increment = spec.methods_by_name("Increment")[0]
        assert increment.category is MethodCategory.UPDATE

    def test_class_name_property(self):
        assert SpecBuilder("Thing").class_name == "Thing"


class TestNodeResolution:
    def test_node_groups_same_named_overloads(self):
        builder = (
            SpecBuilder("Multi")
            .constructor("Multi")
            .constructor("Multi", [("n", RangeDomain(0, 3))])
            .destructor("~Multi")
            .node("birth", ["Multi"], start=True)
            .node("death", ["~Multi"])
            .edge("birth", "death")
        )
        spec = builder.build()
        assert spec.nodes[0].methods == ("m1", "m2")

    def test_unknown_method_in_node(self):
        builder = SpecBuilder("X").constructor("X")
        with pytest.raises(SpecError, match="undeclared method"):
            builder.node("n", ["Ghost"])

    def test_duplicate_node_alias(self):
        builder = SpecBuilder("X").constructor("X").node("birth", ["X"])
        with pytest.raises(SpecError, match="already used"):
            builder.node("birth", ["X"])

    def test_edge_unknown_alias(self):
        builder = SpecBuilder("X").constructor("X").node("birth", ["X"])
        with pytest.raises(SpecError, match="unknown node alias"):
            builder.edge("birth", "nowhere")

    def test_node_ident_lookup(self):
        builder = counter_builder()
        assert builder.node_ident("work") == "n2"


class TestValidationHook:
    def test_build_validates_by_default(self):
        builder = (
            SpecBuilder("Broken")
            .constructor("Broken")
            .destructor("~Broken")
            .node("birth", ["Broken"], start=True)
            .node("death", ["~Broken"])
            # no edge: death unreachable
        )
        with pytest.raises(SpecValidationError):
            builder.build()

    def test_build_unchecked(self):
        builder = (
            SpecBuilder("Broken")
            .constructor("Broken")
            .destructor("~Broken")
            .node("birth", ["Broken"], start=True)
            .node("death", ["~Broken"])
        )
        spec = builder.build(check=False)
        assert spec.name == "Broken"
