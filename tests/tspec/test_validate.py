"""Tests for t-spec structural validation."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.errors import SpecValidationError
from repro.tspec.model import (
    ClassSpec,
    EdgeSpec,
    MethodCategory,
    MethodSpec,
    NodeSpec,
    ParameterSpec,
)
from repro.core.domains import RangeDomain
from repro.tspec.validate import find_problems, validate


def sound_spec() -> ClassSpec:
    return ClassSpec(
        name="Sound",
        methods=(
            MethodSpec("m1", "Sound", MethodCategory.CONSTRUCTOR),
            MethodSpec("m2", "Work", MethodCategory.PROCESS),
            MethodSpec("m3", "~Sound", MethodCategory.DESTRUCTOR),
        ),
        nodes=(
            NodeSpec("n1", ("m1",), is_start=True),
            NodeSpec("n2", ("m2",)),
            NodeSpec("n3", ("m3",)),
        ),
        edges=(EdgeSpec("n1", "n2"), EdgeSpec("n2", "n3")),
    )


class TestSoundSpec:
    def test_no_problems(self):
        assert find_problems(sound_spec()) == []

    def test_validate_returns_spec(self):
        spec = sound_spec()
        assert validate(spec) is spec


class TestReferenceProblems:
    def test_node_references_unknown_method(self):
        spec = sound_spec()
        broken = replace(spec, nodes=spec.nodes + (NodeSpec("n4", ("m99",)),))
        problems = find_problems(broken)
        assert any("unknown method" in problem for problem in problems)

    def test_edge_references_unknown_node(self):
        spec = sound_spec()
        broken = replace(spec, edges=spec.edges + (EdgeSpec("n1", "n99"),))
        assert any("unknown target node" in p for p in find_problems(broken))

    def test_duplicate_edge(self):
        spec = sound_spec()
        broken = replace(spec, edges=spec.edges + (EdgeSpec("n1", "n2"),))
        assert any("duplicate edge" in p for p in find_problems(broken))

    def test_duplicate_method_ident(self):
        spec = sound_spec()
        broken = replace(
            spec,
            methods=spec.methods + (
                MethodSpec("m1", "Clone", MethodCategory.PROCESS),
            ),
        )
        assert any("duplicate method ident" in p for p in find_problems(broken))

    def test_duplicate_method_ident_names_category(self):
        """The message identifies the offending method's reuse category."""
        spec = sound_spec()
        broken = replace(
            spec,
            methods=spec.methods + (
                MethodSpec("m1", "Clone", MethodCategory.PROCESS),
            ),
        )
        (problem,) = [p for p in find_problems(broken)
                      if "duplicate method ident" in p]
        assert "process" in problem and "'Clone'" in problem

    def test_duplicate_parameter_names(self):
        method = MethodSpec(
            "m2", "Work", MethodCategory.PROCESS,
            parameters=(
                ParameterSpec("x", RangeDomain(0, 1)),
                ParameterSpec("x", RangeDomain(0, 1)),
            ),
        )
        spec = sound_spec()
        broken = replace(spec, methods=(spec.methods[0], method, spec.methods[2]))
        assert any("repeats parameter" in p for p in find_problems(broken))

    def test_declared_out_degree_mismatch(self):
        spec = sound_spec()
        node = replace(spec.nodes[0], declared_out_degree=5)
        broken = replace(spec, nodes=(node,) + spec.nodes[1:])
        assert any("out-degree" in p for p in find_problems(broken))


class TestShapeProblems:
    def test_missing_constructor(self):
        spec = sound_spec()
        broken = replace(spec, methods=spec.methods[1:],
                         nodes=(replace(spec.nodes[0], methods=("m2",)),)
                         + spec.nodes[1:])
        assert any("no constructor" in p for p in find_problems(broken))

    def test_missing_destructor_method(self):
        spec = sound_spec()
        broken = replace(
            spec,
            methods=spec.methods[:2],
            nodes=(spec.nodes[0], spec.nodes[1],
                   replace(spec.nodes[2], methods=("m2",))),
        )
        assert any("no destructor" in p for p in find_problems(broken))

    def test_unreachable_node(self):
        spec = sound_spec()
        broken = replace(
            spec,
            nodes=spec.nodes + (NodeSpec("n4", ("m2",)),),
            edges=spec.edges + (EdgeSpec("n4", "n3"),),
        )
        assert any("unreachable" in p for p in find_problems(broken))

    def test_stuck_node(self):
        spec = sound_spec()
        broken = replace(
            spec,
            nodes=spec.nodes + (NodeSpec("n4", ("m2",)),),
            edges=spec.edges + (EdgeSpec("n1", "n4"),),
        )
        assert any("cannot reach any death node" in p for p in find_problems(broken))

    def test_mixed_birth_node(self):
        spec = sound_spec()
        broken = replace(
            spec,
            nodes=(replace(spec.nodes[0], methods=("m1", "m2")),) + spec.nodes[1:],
        )
        assert any("homogeneous" in p for p in find_problems(broken))

    def test_abstract_class_may_have_empty_model(self):
        spec = ClassSpec(name="Abstract", is_abstract=True)
        assert find_problems(spec) == []

    def test_empty_model_fast_path_skips_reachability(self):
        """A node-less concrete spec short-circuits before graph traversal.

        ``_check_model_shape`` returns right after the "no nodes" report, so
        the birth/death and reachability diagnostics must not pile on top.
        """
        spec = ClassSpec(
            name="Hollow",
            methods=(
                MethodSpec("m1", "Hollow", MethodCategory.CONSTRUCTOR),
                MethodSpec("m2", "~Hollow", MethodCategory.DESTRUCTOR),
            ),
        )
        problems = find_problems(spec)
        assert problems == ["test model has no nodes"]

    def test_concrete_class_needs_nodes(self):
        spec = ClassSpec(
            name="Empty",
            methods=(
                MethodSpec("m1", "Empty", MethodCategory.CONSTRUCTOR),
                MethodSpec("m2", "~Empty", MethodCategory.DESTRUCTOR),
            ),
        )
        assert any("no nodes" in p for p in find_problems(spec))

    def test_validate_raises_with_all_problems(self):
        spec = sound_spec()
        broken = replace(spec, edges=())
        with pytest.raises(SpecValidationError) as excinfo:
            validate(broken)
        assert len(excinfo.value.problems) >= 1
