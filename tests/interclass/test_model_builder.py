"""Tests for assembly specifications and their builder."""

from __future__ import annotations

import pytest

from repro.components import (
    BankAccount,
    BoundedStack,
    Product,
    Provider,
    WAREHOUSE_ASSEMBLY,
)
from repro.core.errors import SpecError, SpecValidationError
from repro.interclass.builder import AssemblyBuilder
from repro.interclass.model import QualifiedTask


class TestQualifiedTask:
    def test_parse_and_render(self):
        task = QualifiedTask.parse("provider:m1")
        assert task.role == "provider"
        assert task.method_ident == "m1"
        assert task.render() == "provider:m1"

    def test_parse_rejects_malformed(self):
        with pytest.raises(SpecValidationError):
            QualifiedTask.parse("no_separator")
        with pytest.raises(SpecValidationError):
            QualifiedTask.parse(":m1")
        with pytest.raises(SpecValidationError):
            QualifiedTask.parse("role:")


class TestBuilder:
    def test_roles_from_self_testable_classes(self):
        builder = AssemblyBuilder("Duo").role("a", BoundedStack).role("b", BankAccount)
        spec = (
            builder
            .node("birth_a", ["a.BoundedStack"], start=True)
            .node("birth_b", ["b.BankAccount"])
            .node("work", ["a.Push", "b.Deposit"])
            .node("done_a", ["a.~BoundedStack"])
            .node("done", ["b.~BankAccount"], end=True)
            .chain("birth_a", "birth_b", "work", "done_a", "done")
            .build()
        )
        assert spec.role_names == ("a", "b")
        assert spec.stats() == {"roles": 2, "nodes": 5, "links": 4}

    def test_role_requires_self_testable(self):
        class Plain:
            pass

        with pytest.raises(SpecError, match="not self-testable"):
            AssemblyBuilder("X").role("p", Plain)

    def test_role_accepts_explicit_spec(self):
        builder = AssemblyBuilder("X").role("p", BoundedStack.__tspec__)
        assert builder.build(check=False).role("p").class_spec.name == "BoundedStack"

    def test_duplicate_role_rejected(self):
        builder = AssemblyBuilder("X").role("p", BoundedStack)
        with pytest.raises(SpecError, match="already declared"):
            builder.role("p", BankAccount)

    def test_unknown_role_in_task(self):
        builder = AssemblyBuilder("X").role("p", BoundedStack)
        with pytest.raises(SpecError, match="unknown role"):
            builder.node("n", ["ghost.Push"])

    def test_unknown_method_in_task(self):
        builder = AssemblyBuilder("X").role("p", BoundedStack)
        with pytest.raises(SpecError, match="no method"):
            builder.node("n", ["p.Levitate"])

    def test_unqualified_task_rejected(self):
        builder = AssemblyBuilder("X").role("p", BoundedStack)
        with pytest.raises(SpecError, match="qualified"):
            builder.node("n", ["Push"])

    def test_overloads_expand_to_alternatives(self):
        builder = AssemblyBuilder("X").role("prod", Product)
        builder.node("birth", ["prod.Product"], start=True)
        spec = builder.build(check=False)
        assert len(spec.node("a1").tasks) == 3  # the 3 Product constructors


class TestAssemblyValidation:
    def make_builder(self):
        return (
            AssemblyBuilder("X")
            .role("p", Provider)
            .node("birth", ["p.Provider"], start=True)
            .node("done", ["p.~Provider"], end=True)
        )

    def test_valid(self):
        spec = self.make_builder().edge("birth", "done").build()
        assert spec.problems() == ()

    def test_no_start_node(self):
        builder = (
            AssemblyBuilder("X")
            .role("p", Provider)
            .node("birth", ["p.Provider"])
            .node("done", ["p.~Provider"], end=True)
            .edge("birth", "done")
        )
        with pytest.raises(SpecValidationError, match="no start node"):
            builder.build()

    def test_start_node_must_construct(self):
        builder = (
            AssemblyBuilder("X")
            .role("p", Product)
            .node("birth", ["p.ShowAttributes"], start=True)
            .node("done", ["p.~Product"], end=True)
            .edge("birth", "done")
        )
        with pytest.raises(SpecValidationError, match="not a constructor"):
            builder.build()

    def test_edge_unknown_alias(self):
        with pytest.raises(SpecError, match="unknown node alias"):
            self.make_builder().edge("birth", "nowhere")


class TestWarehouseAssembly:
    def test_shape(self):
        assert WAREHOUSE_ASSEMBLY.problems() == ()
        assert WAREHOUSE_ASSEMBLY.stats() == {"roles": 2, "nodes": 8, "links": 14}
        assert WAREHOUSE_ASSEMBLY.role_names == ("provider", "product")

    def test_lookups(self):
        role = WAREHOUSE_ASSEMBLY.role("product")
        assert role.class_spec.name == "Product"
        with pytest.raises(KeyError):
            WAREHOUSE_ASSEMBLY.role("warehouse")

    def test_describe(self):
        assert "Warehouse" in WAREHOUSE_ASSEMBLY.describe()
