"""Tests for interclass generation and execution."""

from __future__ import annotations

import pytest

from repro.components import (
    Product,
    Provider,
    WAREHOUSE_ASSEMBLY,
    WAREHOUSE_ROLES,
    reset_database,
)
from repro.core.errors import ExecutionError
from repro.harness.outcomes import Verdict
from repro.interclass import (
    AssemblyExecutor,
    AssemblyGraph,
    InterclassDriverGenerator,
    RoleRef,
)


@pytest.fixture(scope="module")
def warehouse_suite():
    return InterclassDriverGenerator(WAREHOUSE_ASSEMBLY, seed=7).generate()


class TestAssemblyGraph:
    def test_traversal_interface(self):
        graph = AssemblyGraph(WAREHOUSE_ASSEMBLY)
        assert graph.node_count == 8
        assert graph.edge_count == 14
        assert graph.is_birth(graph.birth_nodes[0])
        assert graph.is_death(graph.death_nodes[0])

    def test_validate_path(self):
        graph = AssemblyGraph(WAREHOUSE_ASSEMBLY)
        birth = graph.birth_nodes[0]
        assert not graph.validate_path([birth])  # not at an end node
        assert not graph.validate_path([])


class TestGeneration:
    def test_suite_shape(self, warehouse_suite):
        assert len(warehouse_suite) > 20
        assert warehouse_suite.transactions_total > 5
        assert not warehouse_suite.truncated

    def test_every_case_constructs_before_use(self, warehouse_suite):
        for case in warehouse_suite.cases:
            constructed = set()
            for step in case.steps:
                if step.is_construction:
                    assert step.role not in constructed
                    constructed.add(step.role)
                else:
                    assert step.role in constructed

    def test_role_refs_for_provider_parameters(self, warehouse_suite):
        refs = [
            argument
            for case in warehouse_suite.cases
            for step in case.steps
            for argument in step.arguments
            if isinstance(argument, RoleRef)
        ]
        assert refs
        assert {ref.role for ref in refs} == {"provider"}

    def test_overload_alternatives_all_chosen(self, warehouse_suite):
        # The three Product constructor overloads appear across the suite.
        arities = {
            len(step.arguments)
            for case in warehouse_suite.cases
            for step in case.steps
            if step.is_construction and step.role == "product"
        }
        assert arities == {0, 1, 4}

    def test_deterministic(self):
        first = InterclassDriverGenerator(WAREHOUSE_ASSEMBLY, seed=7).generate()
        second = InterclassDriverGenerator(WAREHOUSE_ASSEMBLY, seed=7).generate()
        assert first == second

    def test_ill_formed_variants_counted_not_silent(self):
        # An assembly where one node mixes tasks of a role that may not be
        # constructed yet on some variants.
        from repro.interclass.builder import AssemblyBuilder

        assembly = (
            AssemblyBuilder("Tricky")
            .role("a", Provider)
            .role("b", Provider.__tspec__)
            .node("birth", ["a.Provider"], start=True)
            .node("mixed", ["a.~Provider", "b.Provider"])
            .node("done", ["b.~Provider"], end=True)
            .chain("birth", "mixed", "done")
            .build()
        )
        suite = InterclassDriverGenerator(assembly, seed=1).generate()
        # Variant choosing a.~Provider leaves role b unconstructed at "done".
        assert suite.ill_formed_variants > 0

    def test_case_formatting(self, warehouse_suite):
        text = warehouse_suite.cases[0].format()
        assert "provider.Provider" in text

    def test_summary(self, warehouse_suite):
        assert "Warehouse" in warehouse_suite.summary()


class TestExecution:
    def test_warehouse_runs_green(self, warehouse_suite):
        reset_database()
        executor = AssemblyExecutor(WAREHOUSE_ASSEMBLY, WAREHOUSE_ROLES)
        result = executor.run_suite(warehouse_suite)
        assert result.all_passed, result.summary()

    def test_final_state_merges_roles(self, warehouse_suite):
        reset_database()
        executor = AssemblyExecutor(WAREHOUSE_ASSEMBLY, WAREHOUSE_ROLES)
        case = next(
            case for case in warehouse_suite.cases
            if {"provider", "product"} <= set(case.roles_used)
        )
        result = executor.run_case(case)
        names = [name for name, _ in result.observation.final_state.state]
        assert any(name.startswith("provider.") for name in names)
        assert any(name.startswith("product.") for name in names)

    def test_role_ref_resolves_to_live_object(self, warehouse_suite):
        reset_database()
        # Execute a case where UpdateProv receives the provider RoleRef and
        # verify via the observation that Product saw a real Provider.
        executor = AssemblyExecutor(WAREHOUSE_ASSEMBLY, WAREHOUSE_ROLES)
        case = next(
            case for case in warehouse_suite.cases
            if any(
                isinstance(argument, RoleRef)
                for step in case.steps for argument in step.arguments
            )
        )
        result = executor.run_case(case)
        assert result.verdict is Verdict.PASS

    def test_missing_role_class_rejected(self):
        with pytest.raises(ExecutionError, match="no class bound"):
            AssemblyExecutor(WAREHOUSE_ASSEMBLY, {"provider": Provider})

    def test_non_class_binding_rejected(self):
        with pytest.raises(ExecutionError, match="not a class"):
            AssemblyExecutor(
                WAREHOUSE_ASSEMBLY,
                {"provider": Provider, "product": Product()},
            )

    def test_interclass_fault_detected(self, warehouse_suite):
        reset_database()

        class ForgetfulProduct(Product):
            def UpdateProv(self, prv):  # fault: drops the provider link
                self.prov = None

        executor = AssemblyExecutor(
            WAREHOUSE_ASSEMBLY,
            {"provider": Provider, "product": ForgetfulProduct},
        )
        reference = AssemblyExecutor(WAREHOUSE_ASSEMBLY, WAREHOUSE_ROLES)
        reset_database()
        baseline = reference.run_suite(warehouse_suite)
        reset_database()
        observed = executor.run_suite(warehouse_suite)

        from repro.harness.report import compare_results
        differing = compare_results(baseline, observed)
        assert differing, "the dropped provider link must be observable"

    def test_crash_verdict(self, warehouse_suite):
        reset_database()

        class ExplosiveProduct(Product):
            def ShowAttributes(self):
                raise RuntimeError("kaput")

        executor = AssemblyExecutor(
            WAREHOUSE_ASSEMBLY,
            {"provider": Provider, "product": ExplosiveProduct},
        )
        result = executor.run_suite(warehouse_suite)
        crashed = result.by_verdict(Verdict.CRASH)
        assert crashed
        assert any("kaput" in failure.detail for failure in crashed)
