"""MutationService.handle_request: the verb surface without a socket.

These tests drive the daemon's brain with plain dicts — validation,
job execution through the real pipeline, result/event plumbing — and
pin the central differential contract: a scenario executed as a job
yields the byte-identical deterministic row of an in-process run.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.obs import validate_event
from repro.scenarios import SweepRunner, registry_from_mappings
from repro.service import JobLimits, MutationService
from repro.service.protocol import TERMINAL_STATES

FAST_SCENARIO = {
    "ident": "svc-account",
    "component": {"ref": "BankAccount"},
    "operators": ["IndVarRepGlob"],
    "suite": {"max_cases": 6},
    "budgets": {"max_mutants": 8},
}


@pytest.fixture
def service():
    instance = MutationService(workers=1, concurrency=2)
    yield instance
    instance.close()


def _wait_terminal(service, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        reply = service.handle_request({"op": "result", "job_id": job_id})
        assert reply["ok"], reply
        if reply["state"] in TERMINAL_STATES:
            return reply
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never became terminal")


def test_unknown_op_is_an_error_reply(service):
    reply = service.handle_request({"op": "frobnicate"})
    assert reply["ok"] is False
    assert "unknown op" in reply["error"]
    assert "submit" in reply["error"]  # the verb list is in the message


def test_missing_op_is_an_error_reply(service):
    assert service.handle_request({})["ok"] is False


def test_ping(service):
    reply = service.handle_request({"op": "ping"})
    assert reply["ok"] and reply["server"] == "repro-mutation-service"


def test_submit_rejects_invalid_scenario_with_all_problems(service):
    reply = service.handle_request({
        "op": "submit",
        "kind": "scenario",
        "scenario": {
            "ident": "BAD IDENT",
            "component": {"ref": "NoSuchComponent"},
            "oracle": "nope",
        },
    })
    assert reply["ok"] is False
    # collected validation, not fail-fast: every problem is listed
    assert "BAD IDENT" in reply["error"]
    assert "NoSuchComponent" in reply["error"]
    assert "nope" in reply["error"]


def test_submit_rejects_missing_scenario_and_bad_kind(service):
    assert service.handle_request(
        {"op": "submit", "kind": "scenario"}
    )["ok"] is False
    reply = service.handle_request({"op": "submit", "kind": "sorcery"})
    assert reply["ok"] is False and "sorcery" in reply["error"]


def test_submit_rejects_bad_limits(service):
    reply = service.handle_request({
        "op": "submit", "scenario": dict(FAST_SCENARIO),
        "limits": {"wall_seconds": -2},
    })
    assert reply["ok"] is False and "wall_seconds" in reply["error"]


def test_experiment_submit_rejects_recursion_and_unknown_table(service):
    reply = service.handle_request({
        "op": "submit", "kind": "experiment", "table": "table1",
        "argv": ["--server", "/tmp/x.sock"],
    })
    assert reply["ok"] is False and "--server" in reply["error"]
    reply = service.handle_request({
        "op": "submit", "kind": "experiment", "table": "table9", "argv": [],
    })
    assert reply["ok"] is False and "table9" in reply["error"]


def test_scenario_job_matches_in_process_row(service, tmp_path):
    registry = registry_from_mappings([FAST_SCENARIO])
    expected = SweepRunner(registry).run_scenario(registry.scenarios[0])

    reply = service.handle_request({
        "op": "submit", "scenario": dict(FAST_SCENARIO),
    })
    assert reply["ok"] and reply["state"] == "queued"
    final = _wait_terminal(service, reply["job_id"])
    assert final["state"] == "done"
    row = final["result"]["scenario"]
    # the deterministic projection is byte-identical to the in-process run
    def project(mapping):
        keep = expected.to_dict(timings=False)
        return json.dumps({key: mapping[key] for key in keep},
                          sort_keys=True)
    assert project(row) == project(expected.to_dict(timings=True))
    assert row["killed"] == expected.killed
    assert row["error"] == ""


def test_status_result_events_lifecycle(service):
    job_id = service.handle_request({
        "op": "submit", "scenario": dict(FAST_SCENARIO),
    })["job_id"]
    status = service.handle_request({"op": "status", "job_id": job_id})
    assert status["ok"] and status["job"]["job_id"] == job_id
    assert status["job"]["state"] in ("queued", "running", "done")
    _wait_terminal(service, job_id)

    events = service.handle_request(
        {"op": "events", "job_id": job_id, "from": 0}
    )
    assert events["ok"]
    assert events["next"] == len(events["events"]) > 0
    for event in events["events"]:
        validate_event(event)  # the job stream is schema-valid JSONL
    assert events["events"][-1]["kind"] == "counters"
    # offset polling: a fetch from the end returns the empty tail
    tail = service.handle_request(
        {"op": "events", "job_id": job_id, "from": events["next"]}
    )
    assert tail["events"] == [] and tail["next"] == events["next"]


def test_result_before_terminal_is_not_ready():
    # concurrency=1 and a queued second job: its result is not ready
    service = MutationService(workers=1, concurrency=1)
    try:
        first = service.handle_request({
            "op": "submit", "scenario": dict(FAST_SCENARIO),
        })["job_id"]
        second = service.handle_request({
            "op": "submit",
            "scenario": dict(FAST_SCENARIO, ident="svc-account-b"),
        })["job_id"]
        early = service.handle_request({"op": "result", "job_id": second})
        assert early["ok"] and early["ready"] is False
        assert "result" not in early
        for job_id in (first, second):
            assert _wait_terminal(service, job_id)["state"] == "done"
    finally:
        service.close()


def test_unknown_job_ids_are_error_replies(service):
    for op in ("status", "result", "cancel", "events"):
        reply = service.handle_request({"op": op, "job_id": "job-424242"})
        assert reply["ok"] is False and "unknown job" in reply["error"]
    assert service.handle_request({"op": "status"})["ok"] is False


def test_wall_limited_job_is_killed_and_neighbour_survives(service):
    # A 1 ms wall deadline fires during prep; the engine/prep layers
    # drain cooperatively and the job lands in ``killed`` while a
    # neighbouring job on the same service completes untouched.
    killed_id = service.handle_request({
        "op": "submit",
        "scenario": dict(FAST_SCENARIO, ident="svc-walled"),
        "limits": {"wall_seconds": 0.001},
    })["job_id"]
    fine_id = service.handle_request({
        "op": "submit", "scenario": dict(FAST_SCENARIO),
    })["job_id"]
    killed = _wait_terminal(service, killed_id)
    fine = _wait_terminal(service, fine_id)
    assert killed["state"] == "killed"
    assert "wall limit" in killed["kill_reason"]
    assert fine["state"] == "done"
    assert fine["result"]["scenario"]["error"] == ""


def test_stats_and_shutdown_callback(service):
    fired = []
    service.on_shutdown(lambda: fired.append(True))
    stats = service.handle_request({"op": "stats"})
    assert stats["ok"] and stats["executors"] == 2
    reply = service.handle_request({"op": "shutdown"})
    assert reply["ok"] and reply["stopping"] is True
    assert fired == [True]
    assert service.shutdown_requested.is_set()
    # a second shutdown is harmless and does not re-fire the callback
    assert service.handle_request({"op": "shutdown"})["ok"]
    assert fired == [True]
