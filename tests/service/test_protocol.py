"""Protocol framing: encode/decode round trips and rejection paths."""

from __future__ import annotations

import json

import pytest

from repro.service import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode,
    error_reply,
    ok,
)
from repro.service.protocol import JOB_STATES, TERMINAL_STATES


def test_encode_decode_round_trip():
    message = {"op": "submit", "kind": "scenario", "nested": {"a": [1, 2]}}
    blob = encode(message)
    assert blob.endswith(b"\n")
    assert blob.count(b"\n") == 1
    assert decode_line(blob) == message


def test_encode_is_canonical():
    one = encode({"b": 1, "a": 2})
    two = encode({"a": 2, "b": 1})
    assert one == two  # sorted keys: byte-identical across insert orders


def test_encode_rejects_unserializable():
    with pytest.raises(ProtocolError):
        encode({"op": object()})


def test_encode_rejects_oversize():
    with pytest.raises(ProtocolError):
        encode({"blob": "x" * (MAX_LINE_BYTES + 1)})


def test_decode_rejects_oversize_line():
    line = b'{"pad": "' + b"x" * MAX_LINE_BYTES + b'"}\n'
    with pytest.raises(ProtocolError):
        decode_line(line)


def test_decode_rejects_non_json():
    with pytest.raises(ProtocolError):
        decode_line(b"not json at all\n")


def test_decode_rejects_non_object():
    with pytest.raises(ProtocolError):
        decode_line(b"[1, 2, 3]\n")


def test_ok_and_error_shapes():
    good = ok(job_id="job-000001")
    assert good["ok"] is True
    assert good["v"] == PROTOCOL_VERSION
    assert good["job_id"] == "job-000001"
    bad = error_reply("bad\nrequest  here")
    assert bad["ok"] is False
    assert bad["error"] == "bad request here"  # single line, squeezed
    assert json.loads(encode(bad).decode("utf-8")) == bad


def test_terminal_states_are_job_states():
    assert TERMINAL_STATES <= set(JOB_STATES)
    assert "queued" not in TERMINAL_STATES
    assert "running" not in TERMINAL_STATES
    assert TERMINAL_STATES == {"done", "failed", "cancelled", "killed"}
