"""Job queue lifecycle: FIFO order, limits, cancellation, wall kills.

The executors here are stubs — the manager is transport- and
pipeline-agnostic, so its state machine is pinned without running a
single mutant.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.errors import ServiceError
from repro.service import JobLimits, JobManager


def _drain(manager, timeout=10.0):
    assert manager.wait_idle(timeout=timeout)


# -- limits -----------------------------------------------------------------


def test_limits_validate_positive():
    with pytest.raises(ServiceError):
        JobLimits(wall_seconds=0)
    with pytest.raises(ServiceError):
        JobLimits(cpu_seconds=-1)
    with pytest.raises(ServiceError):
        JobLimits(memory_bytes=-5)


def test_limits_from_mapping_rejects_unknown_keys():
    with pytest.raises(ServiceError, match="unknown limit key"):
        JobLimits.from_mapping({"walls": 5})
    with pytest.raises(ServiceError, match="integer"):
        JobLimits.from_mapping({"memory_bytes": 1.5})
    assert JobLimits.from_mapping(None).empty
    got = JobLimits.from_mapping({"wall_seconds": 2.5})
    assert got.wall_seconds == 2.5 and got.cpu_seconds is None


def test_limits_batch_slice():
    assert JobLimits(wall_seconds=1).batch_limits() is None
    batch = JobLimits(cpu_seconds=2, memory_bytes=1 << 20).batch_limits()
    assert batch is not None
    assert batch.cpu_seconds == 2 and batch.memory_bytes == 1 << 20


def test_default_limits_fill_gaps():
    manager = JobManager(lambda job: {}, concurrency=1,
                         default_limits=JobLimits(wall_seconds=9))
    try:
        job = manager.submit("stub", {}, JobLimits(cpu_seconds=1))
        assert job.limits.wall_seconds == 9
        assert job.limits.cpu_seconds == 1
        bare = manager.submit("stub", {})
        assert bare.limits.wall_seconds == 9
    finally:
        manager.shutdown()


# -- lifecycle --------------------------------------------------------------


def test_jobs_run_fifo_on_one_executor():
    order = []
    manager = JobManager(
        lambda job: order.append(job.payload["n"]) or {"n": job.payload["n"]},
        concurrency=1,
    )
    try:
        jobs = [manager.submit("stub", {"n": n}) for n in range(5)]
        _drain(manager)
        assert order == [0, 1, 2, 3, 4]
        assert [job.state for job in jobs] == ["done"] * 5
        assert [job.result["n"] for job in jobs] == [0, 1, 2, 3, 4]
    finally:
        manager.shutdown()


def test_executor_exception_is_one_failed_job():
    def execute(job):
        if job.payload.get("boom"):
            raise ValueError("kaput")
        return {"fine": True}

    manager = JobManager(execute, concurrency=1)
    try:
        bad = manager.submit("stub", {"boom": True})
        good = manager.submit("stub", {})
        _drain(manager)
        assert bad.state == "failed"
        assert "ValueError: kaput" in bad.error
        assert good.state == "done" and good.result == {"fine": True}
    finally:
        manager.shutdown()


def test_cancel_queued_job_never_runs():
    release = threading.Event()
    ran = []

    def execute(job):
        ran.append(job.job_id)
        release.wait(timeout=10)
        return {}

    manager = JobManager(execute, concurrency=1)
    try:
        blocker = manager.submit("stub", {})
        queued = manager.submit("stub", {})
        manager.cancel(queued.job_id)
        assert queued.state == "cancelled"
        release.set()
        _drain(manager)
        assert blocker.state == "done"
        assert ran == [blocker.job_id]  # the cancelled job never started
    finally:
        manager.shutdown()


def test_cancel_running_job_drains_cooperatively():
    def execute(job):
        job.cancel_event.wait(timeout=10)
        return {"drained": True}

    manager = JobManager(execute, concurrency=1)
    try:
        job = manager.submit("stub", {})
        deadline = time.monotonic() + 5
        while job.state != "running" and time.monotonic() < deadline:
            time.sleep(0.01)
        manager.cancel(job.job_id)
        _drain(manager)
        assert job.state == "cancelled"
        assert job.result == {"drained": True}  # executor still returned
    finally:
        manager.shutdown()


def test_wall_limit_kills_job():
    def execute(job):
        job.cancel_event.wait(timeout=10)
        return {}

    manager = JobManager(execute, concurrency=1)
    try:
        job = manager.submit("stub", {}, JobLimits(wall_seconds=0.05))
        _drain(manager)
        assert job.state == "killed"
        assert "wall limit" in job.kill_reason
    finally:
        manager.shutdown()


def test_kill_wins_over_cancel_wins_over_error():
    # A job whose wall limit fired AND was cancelled AND whose executor
    # raised resolves to killed: whatever stopped it names the state.
    def execute(job):
        job.cancel_event.wait(timeout=10)
        raise RuntimeError("unwound")

    manager = JobManager(execute, concurrency=1)
    try:
        job = manager.submit("stub", {}, JobLimits(wall_seconds=0.05))
        deadline = time.monotonic() + 5
        while not job.kill_reason and time.monotonic() < deadline:
            time.sleep(0.01)  # let the wall timer fire first
        manager.cancel(job.job_id)
        _drain(manager)
        assert job.state == "killed"
        assert "RuntimeError" in job.error
    finally:
        manager.shutdown()


def test_job_telemetry_offsets_and_close():
    def execute(job):
        job.telemetry.count("stub.work", 3)
        with job.telemetry.span("stub.phase"):
            pass
        return {}

    manager = JobManager(execute, concurrency=1)
    try:
        job = manager.submit("stub", {})
        _drain(manager)
        events, offset = job.events_slice(0)
        assert offset == len(events) > 0
        # telemetry.close() ran at terminal resolution: counters event last
        assert events[-1]["kind"] == "counters"
        assert events[-1]["counters"]["stub.work"] == 3
        tail, end = job.events_slice(offset)
        assert tail == [] and end == offset
        head, _ = job.events_slice(1)
        assert head == events[1:]
    finally:
        manager.shutdown()


def test_stats_and_unknown_job():
    manager = JobManager(lambda job: {}, concurrency=2)
    try:
        manager.submit("stub", {})
        _drain(manager)
        stats = manager.stats()
        assert stats["jobs"]["done"] == 1
        assert stats["executors"] == 2
        assert stats["executed"] == 1
        with pytest.raises(ServiceError, match="unknown job"):
            manager.get("job-999999")
    finally:
        manager.shutdown()


def test_shutdown_cancels_everything_and_is_idempotent():
    def execute(job):
        job.cancel_event.wait(timeout=10)
        return {}

    manager = JobManager(execute, concurrency=1)
    running = manager.submit("stub", {})
    queued = manager.submit("stub", {})
    deadline = time.monotonic() + 5
    while running.state != "running" and time.monotonic() < deadline:
        time.sleep(0.01)
    manager.shutdown()
    manager.shutdown()  # idempotent
    assert running.state == "cancelled"
    assert queued.state == "cancelled"
    with pytest.raises(ServiceError, match="shutting down"):
        manager.submit("stub", {})
