"""The daemon over real sockets: concurrency, isolation, teardown.

The acceptance criteria under test: ≥4 concurrent clients get
byte-identical reports vs the in-process runner, a cancelled or
limit-killed job never disturbs its neighbours (per-job telemetry
streams prove the fencing), a client disconnect leaves its jobs
running, and shutdown leaves zero orphaned workers and no socket file.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time

import pytest

from repro.mutation.parallel import WorkerPool
from repro.scenarios import SweepRunner, registry_from_mappings
from repro.service import (
    JobLimits,
    MutationService,
    ServiceClient,
    ServiceServer,
    parse_address,
    sweep_over_server,
)
from repro.service.protocol import MAX_LINE_BYTES

FAST = {
    "component": {"ref": "BankAccount"},
    "operators": ["IndVarRepGlob"],
    "suite": {"max_cases": 6},
    "budgets": {"max_mutants": 8},
}

SCENARIOS = [
    dict(FAST, ident="daemon-a"),
    dict(FAST, ident="daemon-b", operators=["IndVarBitNeg"]),
    dict(FAST, ident="daemon-c", operators=["IndVarRepLoc"]),
    dict(FAST, ident="daemon-d", component={"ref": "BoundedStack"}),
]


def _project(row):
    """The deterministic projection of a result row (timings stripped)."""
    drop = {"dispatched", "cases_executed", "cases_skipped",
            "elapsed_seconds"}
    return json.dumps(
        {key: value for key, value in row.items() if key not in drop},
        sort_keys=True,
    )


def _start(service, tmp_path, name="svc.sock"):
    server = ServiceServer(service, socket_path=str(tmp_path / name))
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"install_signal_handlers": False}, daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 5
    while not os.path.exists(server.address):
        assert time.monotonic() < deadline
        time.sleep(0.01)
    return server, thread


def _stop(server, thread):
    server.stop()
    thread.join(timeout=30)
    assert not thread.is_alive()


def test_parse_address_forms():
    assert parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")
    assert parse_address("relative.sock") == ("unix", "relative.sock")
    assert parse_address("127.0.0.1:9911") == ("tcp", ("127.0.0.1", 9911))
    assert parse_address(":9911") == ("tcp", ("127.0.0.1", 9911))


def test_four_concurrent_clients_get_byte_identical_reports(tmp_path):
    registry = registry_from_mappings(SCENARIOS)
    expected = {
        scenario.ident:
            SweepRunner(registry).run_scenario(scenario).to_dict(
                timings=True)
        for scenario in registry
    }
    service = MutationService(workers=1, concurrency=4)
    server, thread = _start(service, tmp_path)
    try:
        rows = {}
        errors = []

        def drive(mapping):
            try:
                with ServiceClient(server.address) as client:
                    job_id = client.submit_scenario(mapping)
                    reply = client.wait(job_id, timeout=120)
                rows[mapping["ident"]] = reply
            except Exception as error:  # surfaced below
                errors.append(error)

        clients = [threading.Thread(target=drive, args=(mapping,))
                   for mapping in SCENARIOS]
        for client_thread in clients:
            client_thread.start()
        for client_thread in clients:
            client_thread.join(timeout=180)
        assert not errors, errors
        assert len(rows) == 4
        for ident, reply in rows.items():
            assert reply["state"] == "done"
            row = reply["result"]["scenario"]
            assert _project(row) == _project(expected[ident])
    finally:
        _stop(server, thread)


def test_cancel_mid_job_leaves_neighbours_untouched(tmp_path):
    """Per-job fencing: a cancelled job drains alone; the per-job
    telemetry streams prove no cross-talk."""

    class BlockableService(MutationService):
        def _execute_scenario(self, job):
            if job.payload["scenario"]["ident"].startswith("blocker"):
                job.telemetry.count("blocker.waiting")
                job.cancel_event.wait(timeout=30)
                return {"kind": "scenario", "scenario": None}
            return super()._execute_scenario(job)

    registry = registry_from_mappings(SCENARIOS)
    expected = SweepRunner(registry).run_scenario(
        registry.get("daemon-a")).to_dict(timings=True)

    service = BlockableService(workers=1, concurrency=2)
    server, thread = _start(service, tmp_path)
    try:
        with ServiceClient(server.address) as client:
            blocker = client.submit_scenario(
                dict(FAST, ident="blocker-job"))
            neighbour = client.submit_scenario(SCENARIOS[0])
            deadline = time.monotonic() + 10
            while client.status(blocker)["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert client.cancel(blocker) in ("running", "cancelled")
            done = client.wait(neighbour, timeout=120)
            gone = client.wait(blocker, timeout=30)
            blocker_events = client.events(blocker)["events"]
            neighbour_events = client.events(neighbour)["events"]
        assert gone["state"] == "cancelled"
        assert done["state"] == "done"
        assert _project(done["result"]["scenario"]) == _project(expected)
        # fencing: each job's stream holds only its own events; counters
        # land in the close-time "counters" event per job
        def counters(events):
            merged = {}
            for event in events:
                if event["kind"] == "counters":
                    merged.update(event.get("counters", {}))
            return merged

        assert counters(blocker_events).get("blocker.waiting") == 1
        assert "blocker.waiting" not in counters(neighbour_events)
        assert neighbour_events, "neighbour job recorded no telemetry"
    finally:
        _stop(server, thread)


def test_limit_killed_job_does_not_recycle_the_pool(tmp_path):
    """A wall-killed parallel job costs only itself: the daemon's worker
    pool object survives and the next parallel job on it is
    byte-identical to a serial in-process run."""
    registry = registry_from_mappings(SCENARIOS)
    expected = SweepRunner(registry).run_scenario(
        registry.get("daemon-b")).to_dict(timings=True)

    pool = WorkerPool()
    service = MutationService(workers=2, concurrency=2, pool=pool)
    server, thread = _start(service, tmp_path)
    try:
        with ServiceClient(server.address) as client:
            killed = client.submit_scenario(
                dict(FAST, ident="daemon-walled"),
                limits=JobLimits(wall_seconds=0.001),
            )
            reply = client.wait(killed, timeout=60)
            assert reply["state"] == "killed"
            assert "wall limit" in reply["kill_reason"]
            assert pool.closed is False  # never recycled
            after = client.wait(
                client.submit_scenario(SCENARIOS[1]), timeout=120
            )
        assert after["state"] == "done"
        assert _project(after["result"]["scenario"]) == _project(expected)
        assert pool.closed is False
    finally:
        _stop(server, thread)
        pool.close()


def test_client_disconnect_leaves_jobs_running(tmp_path):
    service = MutationService(workers=1, concurrency=1)
    server, thread = _start(service, tmp_path)
    try:
        client = ServiceClient(server.address)
        job_id = client.submit_scenario(SCENARIOS[0])
        client.close()  # vanish mid-job
        with ServiceClient(server.address) as second:
            reply = second.wait(job_id, timeout=120)
        assert reply["state"] == "done"
        assert reply["result"]["scenario"]["error"] == ""
    finally:
        _stop(server, thread)


def test_oversize_line_gets_error_reply_then_close(tmp_path):
    service = MutationService(workers=1, concurrency=1)
    server, thread = _start(service, tmp_path)
    try:
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.settimeout(10)
        raw.connect(server.address)
        stream = raw.makefile("rwb")
        stream.write(b'{"op": "ping", "pad": "'
                     + b"x" * MAX_LINE_BYTES + b'"}\n')
        stream.flush()
        reply = json.loads(stream.readline())
        assert reply["ok"] is False and "exceeds" in reply["error"]
        assert stream.readline() == b""  # connection closed after
        raw.close()
        # the daemon is still healthy for the next client
        with ServiceClient(server.address) as client:
            assert client.ping()["ok"]
    finally:
        _stop(server, thread)


def test_garbage_line_gets_error_reply_but_keeps_connection(tmp_path):
    service = MutationService(workers=1, concurrency=1)
    server, thread = _start(service, tmp_path)
    try:
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.settimeout(10)
        raw.connect(server.address)
        stream = raw.makefile("rwb")
        stream.write(b"this is not json\n")
        stream.flush()
        assert json.loads(stream.readline())["ok"] is False
        stream.write(b'{"op": "ping"}\n')
        stream.flush()
        assert json.loads(stream.readline())["ok"] is True
        raw.close()
    finally:
        _stop(server, thread)


def test_sweep_over_server_matches_in_process_report(tmp_path):
    registry = registry_from_mappings(SCENARIOS)
    batch = SweepRunner(registry).run()
    service = MutationService(workers=1, concurrency=4)
    server, thread = _start(service, tmp_path)
    try:
        with ServiceClient(server.address) as client:
            served = sweep_over_server(client, registry)
        assert served.to_json(timings=False) == batch.to_json(timings=False)
        assert served.passed == batch.passed
    finally:
        _stop(server, thread)


def test_shutdown_verb_stops_daemon_and_cleans_up(tmp_path):
    service = MutationService(workers=2, concurrency=2, pool=WorkerPool())
    server, thread = _start(service, tmp_path)
    path = server.address
    with ServiceClient(path) as client:
        client.submit_scenario(SCENARIOS[0])
        assert client.shutdown()["stopping"] is True
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert not os.path.exists(path)  # socket file removed
    # zero orphaned workers: the manager drained and the service closed;
    # a fresh connect must fail (nothing listening)
    import pytest as _pytest
    from repro.core.errors import ServiceError
    with _pytest.raises(ServiceError):
        ServiceClient(path)


def test_stale_socket_file_is_replaced_live_one_refused(tmp_path):
    stale = tmp_path / "stale.sock"
    holder = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    holder.bind(str(stale))
    holder.close()  # bound then closed: a dead daemon's leftover
    service = MutationService(workers=1, concurrency=1)
    server, thread = _start(service, tmp_path, name="stale.sock")
    try:
        with ServiceClient(server.address) as client:
            assert client.ping()["ok"]
        # a second daemon must refuse the live socket
        from repro.core.errors import ServiceError
        other = MutationService(workers=1, concurrency=1)
        try:
            with pytest.raises(ServiceError, match="live daemon"):
                ServiceServer(other, socket_path=str(stale))
        finally:
            other.close()
    finally:
        _stop(server, thread)


def test_tcp_transport_ping(tmp_path):
    service = MutationService(workers=1, concurrency=1)
    server = ServiceServer(service, port=0)  # ephemeral localhost port
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"install_signal_handlers": False}, daemon=True,
    )
    thread.start()
    try:
        with ServiceClient(server.address) as client:
            assert client.ping()["ok"]
    finally:
        _stop(server, thread)
