"""Tests for the Table-2/3-shaped score tables."""

from __future__ import annotations

import pytest

from repro.harness.oracles import KillReason
from repro.harness.outcomes import SuiteResult
from repro.mutation.analysis import MutantOutcome, MutationRun
from repro.mutation.equivalence import EquivalenceReport
from repro.mutation.mutant import Mutant
from repro.mutation.score import build_score_table


def mutant(ident, method, operator):
    return Mutant(
        ident=ident,
        operator=operator,
        class_name="X",
        method_name=method,
        variable="v",
        occurrence=0,
        line=1,
        replacement="w",
        description="replace v with w",
        mutated_source="def m(): pass",
    )


def outcome(ident, method, operator, killed, reason=KillReason.CRASH):
    return MutantOutcome(
        mutant=mutant(ident, method, operator),
        killed=killed,
        reason=reason if killed else KillReason.NONE,
        killing_case="TC0" if killed else "",
    )


def run_of(outcomes):
    return MutationRun(
        class_name="X",
        suite_size=10,
        outcomes=tuple(outcomes),
        reference=SuiteResult(class_name="X", results=()),
        elapsed_seconds=0.1,
    )


class TestBuildScoreTable:
    def test_counts_and_scores(self):
        run = run_of([
            outcome("M1", "Sort", "IndVarBitNeg", True),
            outcome("M2", "Sort", "IndVarBitNeg", False),
            outcome("M3", "Sort", "IndVarRepLoc", True, KillReason.ASSERTION),
            outcome("M4", "Find", "IndVarRepLoc", True),
        ])
        table = build_score_table(run)
        assert table.total_generated == 4
        assert table.total_killed == 3
        assert table.total_equivalent == 0
        assert table.total_score == pytest.approx(0.75)
        assert table.assertion_kills == 1

    def test_per_method_grid(self):
        run = run_of([
            outcome("M1", "Sort", "IndVarBitNeg", True),
            outcome("M2", "Sort", "IndVarRepLoc", True),
            outcome("M3", "Find", "IndVarRepLoc", False),
        ])
        table = build_score_table(run)
        assert table.per_method[("Sort", "IndVarBitNeg")] == 1
        assert table.per_method[("Sort", "IndVarRepLoc")] == 1
        assert table.per_method[("Find", "IndVarRepLoc")] == 1
        assert table.method_total("Sort") == 2

    def test_equivalents_excluded_from_denominator(self):
        run = run_of([
            outcome("M1", "Sort", "IndVarRepReq", True),
            outcome("M2", "Sort", "IndVarRepReq", False),  # equivalent
            outcome("M3", "Sort", "IndVarRepReq", False),  # real escape
        ])
        equivalence = EquivalenceReport(
            likely_equivalent=("M2",),
            escaped=("M3",),
            probe_kill_reasons={"M3": KillReason.OUTPUT_DIFFERENCE},
            probe_suite_sizes=(100,),
        )
        table = build_score_table(run, equivalence)
        column = table.column("IndVarRepReq")
        assert column.generated == 3
        assert column.equivalent == 1
        assert column.score == pytest.approx(0.5)  # 1 killed / (3-1)

    def test_method_order_preserved(self):
        run = run_of([
            outcome("M1", "Zeta", "IndVarBitNeg", True),
            outcome("M2", "Alpha", "IndVarBitNeg", True),
        ])
        table = build_score_table(run)
        assert table.methods == ("Zeta", "Alpha")  # first-appearance order

    def test_explicit_method_order(self):
        run = run_of([outcome("M1", "B", "IndVarBitNeg", True)])
        table = build_score_table(run, methods=("A", "B"))
        assert table.methods == ("A", "B")
        assert table.method_total("A") == 0

    def test_empty_column_scores_one(self):
        run = run_of([outcome("M1", "Sort", "IndVarBitNeg", True)])
        table = build_score_table(run)
        assert table.column("IndVarRepGlob").score == 1.0


class TestFormatting:
    def test_paper_layout(self):
        run = run_of([
            outcome("M1", "Sort1", "IndVarBitNeg", True),
            outcome("M2", "Sort1", "IndVarRepGlob", False),
        ])
        text = build_score_table(run).format()
        assert "Mutation results for class X" in text
        for header in ("Method", "IndVarBitNeg", "IndVarRepGlob", "Total"):
            assert header in text
        for aggregate in ("#mutants", "#killed", "#equivalent", "Score"):
            assert aggregate in text
        assert "kills by assertion violation" in text

    def test_percentages_rendered(self):
        run = run_of([
            outcome("M1", "Sort1", "IndVarBitNeg", True),
            outcome("M2", "Sort1", "IndVarBitNeg", False),
        ])
        assert "50.0%" in build_score_table(run).format()

    def test_unknown_column_lookup(self):
        run = run_of([outcome("M1", "Sort1", "IndVarBitNeg", True)])
        with pytest.raises(KeyError):
            build_score_table(run).column("Bogus")
