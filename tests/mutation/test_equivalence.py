"""Tests for the equivalence deep probe."""

from __future__ import annotations

import pytest

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.core.errors import MutationError
from repro.generator.driver import DriverGenerator
from repro.harness.oracles import experiment_oracle
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.equivalence import probe_equivalence
from repro.mutation.generate import generate_mutants
from repro.mutation.triage import MutantTriage, StaticTriage, TriageStatus


#: Keep probes cheap in unit tests: a capped probe model and few survivors.
PROBE_OPTIONS = dict(max_transactions=30, extra_variants=0)


@pytest.fixture(scope="module")
def survivors():
    """Survivors of a deliberately small suite over Sort1 mutants (capped)."""
    mutants, _ = generate_mutants(
        CSortableObList, ["Sort1"], type_model=OBLIST_TYPE_MODEL
    )
    suite = DriverGenerator(CSortableObList.__tspec__).generate()
    from dataclasses import replace
    tiny = replace(suite, cases=suite.cases[:40])
    run = MutationAnalysis(
        CSortableObList, tiny, oracle=experiment_oracle(CSortableObList.__tspec__)
    ).analyze(mutants)
    alive_idents = {o.mutant.ident for o in run.outcomes if not o.killed}
    return [m for m in mutants if m.ident in alive_idents][:12]


class TestProbe:
    def test_partitions_survivors(self, survivors):
        assert survivors, "the tiny suite must leave survivors"
        report = probe_equivalence(
            CSortableObList, CSortableObList.__tspec__, survivors,
            seeds=(1,), **PROBE_OPTIONS,
        )
        classified = set(report.likely_equivalent) | set(report.escaped)
        assert classified == {m.ident for m in survivors}
        assert not (set(report.likely_equivalent) & set(report.escaped))

    def test_probe_finds_escapes(self, survivors):
        # A weak main suite leaves revealable mutants; the stronger probe
        # must kill at least one of them.
        report = probe_equivalence(
            CSortableObList, CSortableObList.__tspec__, survivors,
            seeds=(1, 2), **PROBE_OPTIONS,
        )
        assert report.escaped
        for ident in report.escaped:
            assert ident in report.probe_kill_reasons

    def test_manual_overrides(self, survivors):
        target = survivors[0].ident
        forced_equivalent = probe_equivalence(
            CSortableObList, CSortableObList.__tspec__, survivors,
            seeds=(1,), manual_equivalent=[target], **PROBE_OPTIONS,
        )
        assert target in forced_equivalent.likely_equivalent

        forced_not = probe_equivalence(
            CSortableObList, CSortableObList.__tspec__, survivors,
            seeds=(1,), manual_not_equivalent=[target], **PROBE_OPTIONS,
        )
        assert target in forced_not.escaped
        assert target not in forced_not.likely_equivalent

    def test_unknown_manual_ident_rejected(self, survivors):
        with pytest.raises(MutationError, match="M9999"):
            probe_equivalence(
                CSortableObList, CSortableObList.__tspec__, survivors,
                seeds=(1,), manual_equivalent=["M9999"], **PROBE_OPTIONS,
            )
        with pytest.raises(MutationError, match="not in the survivor set"):
            probe_equivalence(
                CSortableObList, CSortableObList.__tspec__, survivors,
                seeds=(1,), manual_not_equivalent=["TYPO1"], **PROBE_OPTIONS,
            )

    def test_triage_proofs_skip_the_probe(self, survivors):
        """A survivor the static pass proved equivalent is classified
        without probing; a redundant survivor inherits its executed
        representative's classification."""
        proven = survivors[0]
        member = survivors[1]
        representative = survivors[2]
        triage = StaticTriage(
            class_name="CSortableObList",
            entries=(
                MutantTriage(
                    ident=proven.ident, method_name="Sort1",
                    status=TriageStatus.BYTECODE_EQUIVALENT, digest="d0",
                ),
                MutantTriage(
                    ident=member.ident, method_name="Sort1",
                    status=TriageStatus.REDUNDANT, digest="d1",
                    representative=representative.ident,
                ),
            ),
        )
        report = probe_equivalence(
            CSortableObList, CSortableObList.__tspec__, survivors,
            seeds=(1, 2), triage=triage, **PROBE_OPTIONS,
        )
        assert proven.ident in report.likely_equivalent
        assert proven.ident not in report.probe_kill_reasons
        # The member was never probed: it is classified exactly as its
        # representative was.
        if representative.ident in report.escaped:
            assert member.ident in report.escaped
            assert (report.probe_kill_reasons[member.ident]
                    is report.probe_kill_reasons[representative.ident])
        else:
            assert member.ident in report.likely_equivalent

    def test_manual_not_equivalent_beats_triage(self, survivors):
        target = survivors[0]
        triage = StaticTriage(
            class_name="CSortableObList",
            entries=(
                MutantTriage(
                    ident=target.ident, method_name="Sort1",
                    status=TriageStatus.AST_EQUIVALENT, digest="d0",
                ),
            ),
        )
        report = probe_equivalence(
            CSortableObList, CSortableObList.__tspec__, survivors,
            seeds=(1,), triage=triage,
            manual_not_equivalent=[target.ident], **PROBE_OPTIONS,
        )
        assert target.ident in report.escaped
        assert target.ident not in report.likely_equivalent

    def test_no_survivors_short_circuits(self):
        report = probe_equivalence(
            CSortableObList, CSortableObList.__tspec__, [],
        )
        assert report.likely_equivalent == ()
        assert report.escaped == ()
        assert report.probe_suite_sizes == ()

    def test_summary(self, survivors):
        report = probe_equivalence(
            CSortableObList, CSortableObList.__tspec__, survivors, seeds=(1,),
            **PROBE_OPTIONS,
        )
        text = report.summary()
        assert "likely-equivalent" in text
        assert "escaped" in text
