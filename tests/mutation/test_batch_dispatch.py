"""Differential tests for batched dispatch: batched ≡ per-mutant ≡ serial.

Batching changes only *how many pipe round-trips* carry the work — never
which mutant runs, in what order results merge, or what any verdict is.
The matrix here drives the parallel engine across seeds × worker counts ×
batch sizes (explicit 1, a ragged 7, the whole pool, and the adaptive
default) × cache states (off, cold, warm) × triage (on, off), asserting
``same_results``/``same_verdicts`` against the serial engine every time.

The poisoned-batch tests check the batch refinement of the crash/hang
rules: a mutant that kills or hangs its worker mid-batch is the ONLY
mutant classified at the process boundary — every batchmate is re-run and
keeps its serial-identical verdict.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.generator.driver import DriverGenerator
from repro.harness.oracles import KillReason, experiment_oracle
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.cache import MutationOutcomeCache
from repro.mutation.generate import generate_mutants
from repro.mutation.parallel import (
    ParallelMutationAnalysis,
    default_batch_size,
)
from repro.obs import MemorySink, Telemetry

from .test_parallel import CRASH_SOURCE, HANG_SOURCE, hostile_mutant

SEEDS = (20010701, 7, 99)
MUTANT_COUNT = 12
POOL_BATCH = MUTANT_COUNT  # "pool-size": the whole battery in one chunk
BATCH_SIZES = (1, 7, POOL_BATCH, None)  # None = adaptive default


def small_suite(seed: int):
    suite = DriverGenerator(CSortableObList.__tspec__, seed=seed).generate()
    relevant = tuple(
        case for case in suite.cases
        if any(step.method_name in ("FindMax", "FindMin")
               for step in case.steps)
    )[:40]
    return replace(suite, cases=relevant)


def oracle():
    return experiment_oracle(CSortableObList.__tspec__)


@pytest.fixture(scope="module")
def mutants():
    pool, _ = generate_mutants(
        CSortableObList, ["FindMax"], type_model=OBLIST_TYPE_MODEL
    )
    return pool[:MUTANT_COUNT]


@pytest.fixture(scope="module")
def serial_runs(mutants):
    return {
        seed: MutationAnalysis(
            CSortableObList, small_suite(seed), oracle=oracle(),
            static_triage=True, triage_type_model=OBLIST_TYPE_MODEL,
        ).analyze(mutants)
        for seed in SEEDS
    }


def batched(mutants, seed, *, workers=2, batch_size=None, cache=None,
            static_triage=True, telemetry=None, backstop=None):
    options = {}
    if backstop is not None:
        options["wall_clock_backstop"] = backstop
    return ParallelMutationAnalysis(
        CSortableObList, small_suite(seed), oracle=oracle(),
        workers=workers, batch_size=batch_size, cache=cache,
        static_triage=static_triage,
        triage_type_model=OBLIST_TYPE_MODEL if static_triage else None,
        telemetry=telemetry, **options,
    ).analyze(mutants)


class TestAdaptiveDefault:
    """The documented chunk formula, pinned."""

    def test_formula(self):
        assert default_batch_size(709, 2) == 44  # 709 // (8·2)
        assert default_batch_size(30, 2) == 1
        assert default_batch_size(100, 4) == 3
        assert default_batch_size(0, 2) == 1     # floor at one
        assert default_batch_size(5, 0) == 1     # degenerate worker count

    def test_explicit_batch_size_validated(self):
        with pytest.raises(ValueError):
            ParallelMutationAnalysis(
                CSortableObList, small_suite(SEEDS[0]), batch_size=0
            )


class TestBatchedEqualsSerial:
    """seeds × workers × batch sizes: verdicts never move."""

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_two_workers(self, seed, batch_size, mutants, serial_runs):
        run = batched(mutants, seed, workers=2, batch_size=batch_size)
        assert run.same_results(serial_runs[seed])

    @pytest.mark.parametrize("workers,batch_size", [
        (1, 7), (1, POOL_BATCH), (4, 1), (4, 7), (4, POOL_BATCH),
    ])
    def test_other_worker_counts(self, workers, batch_size, mutants,
                                 serial_runs):
        seed = SEEDS[0]
        run = batched(mutants, seed, workers=workers, batch_size=batch_size)
        assert run.same_results(serial_runs[seed])

    def test_batching_actually_batches(self, mutants):
        # Not just equivalence: with an explicit chunk of 5, multi-mutant
        # batches really go over the wire (visible as dispatch events
        # whose batch attr exceeds 1).
        telemetry = Telemetry(sink=(sink := MemorySink()))
        run = batched(mutants, SEEDS[0], workers=2, batch_size=5,
                      static_triage=False, telemetry=telemetry)
        telemetry.close()
        assert run.total == len(mutants)
        dispatches = [event for event in sink.events
                      if event.get("name") == "parallel.dispatch"]
        assert len(dispatches) == len(mutants)
        assert max(event["attrs"]["batch"] for event in dispatches) == 5
        tasks = [event for event in sink.events
                 if event.get("name") == "parallel.task"]
        assert len(tasks) == len(mutants)


class TestTriageOffDifferential:
    """Batching composes with triage exactly as the unbatched engine did."""

    @pytest.mark.parametrize("batch_size", (1, 7))
    def test_triage_off_matches_serial_off(self, batch_size, mutants):
        seed = SEEDS[1]
        serial_off = MutationAnalysis(
            CSortableObList, small_suite(seed), oracle=oracle(),
            static_triage=False,
        ).analyze(mutants)
        run = batched(mutants, seed, batch_size=batch_size,
                      static_triage=False)
        assert run.same_results(serial_off)

    def test_triage_on_off_same_verdicts(self, mutants, serial_runs):
        seed = SEEDS[1]
        on = batched(mutants, seed, batch_size=7, static_triage=True)
        off = batched(mutants, seed, batch_size=7, static_triage=False)
        assert on.same_verdicts(off)
        assert on.same_verdicts(serial_runs[seed])


class TestCacheMatrix:
    """cache {cold, warm} × batch sizes: cached ≡ fresh at every chunk."""

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_cold_then_warm(self, batch_size, mutants, serial_runs,
                            tmp_path):
        seed = SEEDS[2]
        cache = MutationOutcomeCache(tmp_path)
        cold = batched(mutants, seed, batch_size=batch_size, cache=cache)
        assert cold.same_results(serial_runs[seed])
        assert cold.cache_stats.hits == 0

        # Warm replays under a DIFFERENT batch size than the one that
        # populated the store (chunking is not a fingerprint input).
        warm = batched(mutants, seed, batch_size=1 if batch_size != 1 else 7,
                       cache=cache)
        assert warm.same_results(serial_runs[seed])
        assert warm.cache_stats.misses == 0

    def test_warm_run_ships_no_batches(self, mutants, tmp_path):
        seed = SEEDS[2]
        cache = MutationOutcomeCache(tmp_path)
        batched(mutants, seed, batch_size=7, cache=cache)
        telemetry = Telemetry(sink=(sink := MemorySink()))
        warm = batched(mutants, seed, batch_size=7, cache=cache,
                       telemetry=telemetry)
        telemetry.close()
        assert warm.cache_stats.misses == 0
        assert not any(event.get("name") == "parallel.dispatch"
                       for event in sink.events)


class TestPoisonedBatch:
    """One hostile mutant inside a batch kills only itself."""

    def test_crashing_batchmate_classified_alone(self, mutants):
        suite = small_suite(SEEDS[0])
        hostile = hostile_mutant("X0101", CRASH_SOURCE)
        battery = list(mutants[:2]) + [hostile] + list(mutants[2:8])
        run = ParallelMutationAnalysis(
            CSortableObList, suite, oracle=oracle(), workers=2,
            batch_size=5, static_triage=False,
        ).analyze(battery)

        assert run.total == len(battery)
        poisoned = run.outcomes[2]
        assert poisoned.killed
        assert poisoned.reason is KillReason.WORKER_CRASH
        assert "exitcode" in poisoned.detail
        # Every batchmate survived the crash with its serial verdict.
        serial = MutationAnalysis(
            CSortableObList, suite, oracle=oracle(), static_triage=False,
        ).analyze(battery[:2] + battery[3:])
        assert run.outcomes[:2] == serial.outcomes[:2]
        assert run.outcomes[3:] == serial.outcomes[2:]
        crash_kills = [outcome for outcome in run.outcomes
                       if outcome.reason is KillReason.WORKER_CRASH]
        assert len(crash_kills) == 1

    def test_hanging_batchmate_classified_alone(self, mutants):
        suite = small_suite(SEEDS[0])
        hostile = hostile_mutant("X0102", HANG_SOURCE)
        battery = list(mutants[:2]) + [hostile] + list(mutants[2:6])
        run = ParallelMutationAnalysis(
            CSortableObList, suite, oracle=oracle(), workers=2,
            batch_size=4, static_triage=False, wall_clock_backstop=1.5,
        ).analyze(battery)

        assert run.total == len(battery)
        poisoned = run.outcomes[2]
        assert poisoned.killed
        assert poisoned.reason is KillReason.WALL_TIMEOUT
        assert "backstop" in poisoned.detail
        serial = MutationAnalysis(
            CSortableObList, suite, oracle=oracle(), static_triage=False,
        ).analyze(battery[:2] + battery[3:])
        assert run.outcomes[:2] == serial.outcomes[:2]
        assert run.outcomes[3:] == serial.outcomes[2:]
        timeout_kills = [outcome for outcome in run.outcomes
                         if outcome.reason is KillReason.WALL_TIMEOUT]
        assert len(timeout_kills) == 1

    def test_whole_pool_batch_with_crasher_completes(self, mutants):
        # The most concentrated case: ONE batch holds the entire battery,
        # so the crash invalidates every in-flight assignment at once.
        suite = small_suite(SEEDS[0])
        hostile = hostile_mutant("X0103", CRASH_SOURCE)
        battery = [hostile] + list(mutants[:5])
        run = ParallelMutationAnalysis(
            CSortableObList, suite, oracle=oracle(), workers=1,
            batch_size=len(battery), static_triage=False,
        ).analyze(battery)
        assert run.total == len(battery)
        assert run.outcomes[0].reason is KillReason.WORKER_CRASH
        serial = MutationAnalysis(
            CSortableObList, suite, oracle=oracle(), static_triage=False,
        ).analyze(battery[1:])
        assert run.outcomes[1:] == serial.outcomes
