"""Differential tests for the incremental mutation-outcome cache.

The cached≡fresh guarantee, checked the same way the parallel engine's
serial-equivalence is: for every seed and worker count, a warm-cache run
must produce a ``MutationRun`` that passes ``same_results`` against both
the cold run that populated the cache and a fresh run that never saw a
cache — and a fully warm run must execute **zero** mutant test cases
(every lookup hits; the class builder is never invoked).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.generator.driver import DriverGenerator
from repro.harness.oracles import experiment_oracle
from repro.mutation.analysis import MutationAnalysis, analyze_mutants
from repro.mutation.cache import MutationOutcomeCache
from repro.mutation.generate import generate_mutants
from repro.mutation.parallel import ParallelMutationAnalysis

SEEDS = (20010701, 7, 99)
WORKER_COUNTS = (1, 2)
MUTANT_COUNT = 20


def small_suite(seed: int):
    """A compact suite whose cases all visit the mutated methods."""
    suite = DriverGenerator(CSortableObList.__tspec__, seed=seed).generate()
    relevant = tuple(
        case for case in suite.cases
        if any(step.method_name in ("FindMax", "FindMin")
               for step in case.steps)
    )[:50]
    return replace(suite, cases=relevant)


def oracle():
    return experiment_oracle(CSortableObList.__tspec__)


#: Call counter for the builder below — module-level so the builder
#: function itself has a stable (picklable, fingerprintable) identity.
BUILD_CALLS = {"count": 0}


def counting_builder(mutant):
    BUILD_CALLS["count"] += 1
    return mutant.build_class()


@pytest.fixture(scope="module")
def findmax_mutants():
    mutants, _ = generate_mutants(
        CSortableObList, ["FindMax"], type_model=OBLIST_TYPE_MODEL
    )
    return mutants[:MUTANT_COUNT]


@pytest.fixture(scope="module")
def populated(findmax_mutants, tmp_path_factory):
    """Per seed: a fresh (cache-less) run and a cache populated cold."""
    by_seed = {}
    for seed in SEEDS:
        cache = MutationOutcomeCache(
            tmp_path_factory.mktemp(f"outcomes-{seed}")
        )
        fresh = MutationAnalysis(
            CSortableObList, small_suite(seed), oracle=oracle()
        ).analyze(findmax_mutants)
        cold = MutationAnalysis(
            CSortableObList, small_suite(seed), oracle=oracle(), cache=cache
        ).analyze(findmax_mutants)
        by_seed[seed] = (fresh, cold, cache)
    return by_seed


class TestWarmEqualsFresh:
    """3 seeds x workers {1, 2}: warm ≡ cold ≡ fresh, full hit."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_warm_run_is_fresh_identical(self, seed, workers,
                                         findmax_mutants, populated):
        fresh, cold, cache = populated[seed]
        assert cold.same_results(fresh)
        assert cold.cache_stats.hits == 0
        assert cold.cache_stats.misses == len(findmax_mutants)

        engine = (ParallelMutationAnalysis if workers > 1 else MutationAnalysis)
        warm = engine(
            CSortableObList, small_suite(seed), oracle=oracle(), cache=cache,
            **({"workers": workers} if workers > 1 else {}),
        ).analyze(findmax_mutants)

        assert warm.same_results(fresh)
        assert warm.same_results(cold)
        # Full hit: zero mutants executed, every verdict replayed.
        assert warm.cache_stats.hits == len(findmax_mutants)
        assert warm.cache_stats.misses == 0
        assert warm.cache_stats.invalidations == 0
        assert warm.cache_stats.corrupt == 0
        # The replayed outcomes still carry the original cases_run counts
        # (that is what same_results requires) …
        for mine, theirs in zip(warm.outcomes, fresh.outcomes):
            assert mine.cases_run == theirs.cases_run
            assert mine.mutant == theirs.mutant
            assert mine.reason is theirs.reason

    def test_run_without_cache_has_no_stats(self, populated):
        fresh, _, _ = populated[SEEDS[0]]
        assert fresh.cache_stats is None


class TestZeroExecutionOnFullHit:
    """A fully warm run never builds (hence never executes) a mutant."""

    def test_builder_never_invoked_on_warm_run(self, findmax_mutants, tmp_path):
        suite = small_suite(SEEDS[0])
        cache = MutationOutcomeCache(tmp_path)
        BUILD_CALLS["count"] = 0
        cold = MutationAnalysis(
            CSortableObList, suite, oracle=oracle(),
            class_builder=counting_builder, cache=cache,
        ).analyze(findmax_mutants)
        assert BUILD_CALLS["count"] == len(findmax_mutants)

        BUILD_CALLS["count"] = 0
        warm = MutationAnalysis(
            CSortableObList, suite, oracle=oracle(),
            class_builder=counting_builder, cache=cache,
        ).analyze(findmax_mutants)
        assert BUILD_CALLS["count"] == 0  # zero mutant test cases executed
        assert warm.same_results(cold)

    def test_partial_hit_executes_only_new_mutants(self, findmax_mutants,
                                                   tmp_path):
        suite = small_suite(SEEDS[0])
        cache = MutationOutcomeCache(tmp_path)
        head = findmax_mutants[:-1]
        MutationAnalysis(
            CSortableObList, suite, oracle=oracle(), cache=cache
        ).analyze(head)
        warm = MutationAnalysis(
            CSortableObList, suite, oracle=oracle(), cache=cache
        ).analyze(findmax_mutants)
        assert warm.cache_stats.hits == len(head)
        assert warm.cache_stats.misses == 1


class TestCrossEngineSharing:
    """Serial and parallel runs share one cache, both directions."""

    def test_parallel_warm_after_serial_cold(self, findmax_mutants, populated):
        seed = SEEDS[0]
        fresh, _, cache = populated[seed]
        warm = ParallelMutationAnalysis(
            CSortableObList, small_suite(seed), oracle=oracle(),
            workers=2, cache=cache,
        ).analyze(findmax_mutants)
        assert warm.same_results(fresh)
        assert warm.cache_stats.hits == len(findmax_mutants)

    def test_serial_warm_after_parallel_cold(self, findmax_mutants, tmp_path):
        seed = SEEDS[1]
        suite = small_suite(seed)
        cache = MutationOutcomeCache(tmp_path)
        cold = ParallelMutationAnalysis(
            CSortableObList, suite, oracle=oracle(), workers=2, cache=cache,
        ).analyze(findmax_mutants)
        assert cold.cache_stats.misses == len(findmax_mutants)
        warm = MutationAnalysis(
            CSortableObList, suite, oracle=oracle(), cache=cache
        ).analyze(findmax_mutants)
        assert warm.same_results(cold)
        assert warm.cache_stats.hits == len(findmax_mutants)

    def test_analyze_mutants_dispatch_passes_cache(self, findmax_mutants,
                                                   tmp_path):
        suite = small_suite(SEEDS[2])
        cache = MutationOutcomeCache(tmp_path)
        cold = analyze_mutants(
            CSortableObList, suite, findmax_mutants[:5],
            oracle=oracle(), cache=cache,
        )
        warm = analyze_mutants(
            CSortableObList, suite, findmax_mutants[:5],
            oracle=oracle(), cache=cache, workers=2,
        )
        assert warm.same_results(cold)
        assert warm.cache_stats.hits == 5
