"""Tests for the C++-typing compatibility gate."""

from __future__ import annotations

import ast
import textwrap

from repro.mutation.typemodel import (
    TypeModel,
    compatible,
    constant_tag,
    expression_tag,
    infer_local_types,
    merge_tags,
    negatable,
)

MODEL = TypeModel(
    attribute_types={"_head": "node", "_count": "int", "_tail": "node"},
    method_return_types={"_take_node": "node", "GetCount": "int"},
    parameter_types={"value": "value", "position": "int"},
)


def function_of(source: str) -> ast.FunctionDef:
    return ast.parse(textwrap.dedent(source)).body[0]


class TestConstantTags:
    def test_tags(self):
        assert constant_tag(None) == "none"
        assert constant_tag(True) == "bool"
        assert constant_tag(5) == "int"
        assert constant_tag(2.5) == "float"
        assert constant_tag("s") == "str"
        assert constant_tag(object()) is None


class TestMergeTags:
    def test_unknown_absorbs(self):
        assert merge_tags(None, "int") == "int"
        assert merge_tags("int", None) == "int"

    def test_same(self):
        assert merge_tags("node", "node") == "node"

    def test_none_is_bottom(self):
        assert merge_tags("none", "node") == "node"
        assert merge_tags("node", "none") == "node"

    def test_conflict_degrades_to_unknown(self):
        assert merge_tags("int", "node") is None


class TestCompatibility:
    def test_same_tags_compatible(self):
        assert compatible("int", "int")
        assert compatible("node", "node")

    def test_cross_type_incompatible(self):
        assert not compatible("int", "node")
        assert not compatible("node", "int")
        assert not compatible("value", "int")

    def test_null_assignable_to_pointers(self):
        assert compatible("node", "none")
        assert compatible("value", "none")
        assert not compatible("int", "none")

    def test_unknown_is_permissive(self):
        assert compatible(None, "node")
        assert compatible("int", None)

    def test_negatable(self):
        assert negatable("int")
        assert negatable("bool")
        assert negatable(None)
        assert not negatable("node")
        assert not negatable("value")


class TestInference:
    def test_attribute_assignment(self):
        function = function_of("""
        def m(self):
            node = self._head
            count = self._count
            return node, count
        """)
        types = infer_local_types(function, MODEL)
        assert types["node"] == "node"
        assert types["count"] == "int"

    def test_node_navigation(self):
        function = function_of("""
        def m(self):
            current = self._head
            following = current.next
            preceding = current.prev
            payload = current.value
            return following, preceding, payload
        """)
        types = infer_local_types(function, MODEL)
        assert types["following"] == "node"
        assert types["preceding"] == "node"
        assert types["payload"] == "value"

    def test_arithmetic_is_int(self):
        function = function_of("""
        def m(self):
            a = 1
            b = a + 2
            c = b - a
            return c
        """)
        types = infer_local_types(function, MODEL)
        assert types["b"] == "int"
        assert types["c"] == "int"

    def test_helper_call_types(self):
        function = function_of("""
        def m(self, value):
            node = self._take_node(value)
            count = self.GetCount()
            return node, count
        """)
        types = infer_local_types(function, MODEL)
        assert types["node"] == "node"
        assert types["count"] == "int"

    def test_parameter_propagation(self):
        function = function_of("""
        def m(self, value):
            held = value
            return held
        """)
        types = infer_local_types(function, MODEL)
        assert types["held"] == "value"

    def test_none_then_concrete_merges(self):
        function = function_of("""
        def m(self):
            best = None
            best = self._head
            return best
        """)
        types = infer_local_types(function, MODEL)
        assert types["best"] == "node"

    def test_node_list_and_subscript(self):
        function = function_of("""
        def m(self):
            nodes = []
            walker = self._head
            while walker is not None:
                nodes.append(walker)
                walker = walker.next
            first = nodes[0]
            return first
        """)
        types = infer_local_types(function, MODEL)
        # Empty-list literal cannot prove node elements; subscript of an
        # unknown container stays unknown (permissive).
        assert types["walker"] == "node"

    def test_comparisons_are_bool(self):
        function = function_of("""
        def m(self):
            flag = self._count > 0
            return flag
        """)
        types = infer_local_types(function, MODEL)
        assert types["flag"] == "bool"

    def test_augassign_keeps_int(self):
        function = function_of("""
        def m(self):
            total = 0
            total += 1
            return total
        """)
        types = infer_local_types(function, MODEL)
        assert types["total"] == "int"

    def test_for_range_target_is_int(self):
        function = function_of("""
        def m(self):
            total = 0
            for index in range(3):
                total = total + index
            return total
        """)
        types = infer_local_types(function, MODEL)
        assert types["index"] == "int"


class TestExpressionTag:
    def test_attribute(self):
        expression = ast.parse("self._head", mode="eval").body
        assert expression_tag(expression, MODEL, {}) == "node"

    def test_constant(self):
        expression = ast.parse("None", mode="eval").body
        assert expression_tag(expression, MODEL, {}) == "none"

    def test_local(self):
        expression = ast.parse("x", mode="eval").body
        assert expression_tag(expression, MODEL, {"x": "int"}) == "int"


class TestGateOnExperimentClasses:
    def test_gate_removes_cross_type_mutants(self):
        from repro.components import CSortableObList, OBLIST_TYPE_MODEL
        from repro.mutation.generate import generate_mutants

        untyped, untyped_report = generate_mutants(CSortableObList, ["Sort1"])
        typed, typed_report = generate_mutants(
            CSortableObList, ["Sort1"], type_model=OBLIST_TYPE_MODEL
        )
        assert len(typed) < len(untyped)
        assert typed_report.type_incompatible > 0
        assert untyped_report.type_incompatible == 0

    def test_gate_keeps_same_type_replacements(self):
        from repro.components import CSortableObList, OBLIST_TYPE_MODEL
        from repro.mutation.generate import generate_mutants

        typed, _ = generate_mutants(
            CSortableObList, ["Sort1"], type_model=OBLIST_TYPE_MODEL
        )
        # marker/scan are node locals: node attributes must remain available
        # as replacements for them.
        node_replacements = [
            mutant for mutant in typed
            if mutant.record.variable in ("marker", "scan")
            and mutant.record.replacement == "self._head"
        ]
        assert node_replacements
