"""Differential and robustness tests for the parallel mutation engine.

The serial-equivalence tests are the determinism property the step-budget
sandbox was designed to guarantee: for any worker count, the parallel
``MutationRun`` must equal the serial run outcome-for-outcome (killed flag,
``KillReason``, ``killing_case``, ``cases_run``, mutation score, aggregated
sandbox timeouts).  The robustness tests feed the engine hostile mutants —
one that kills its worker process outright and one that hangs past the
wall-clock backstop — and assert the paper's "program crashed" clause is
applied at the process boundary while every remaining mutant still runs.
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.generator.driver import DriverGenerator
from repro.harness.oracles import KillReason, experiment_oracle
from repro.mutation.analysis import MutationAnalysis, analyze_mutants
from repro.mutation.generate import generate_mutants
from repro.mutation.mutant import Mutant, rebuild_compiled_mutant
from repro.mutation.parallel import (
    ParallelMutationAnalysis,
    analyze_mutants_parallel,
)
from repro.mutation.score import build_score_table

SEEDS = (20010701, 7, 99)
WORKER_COUNTS = (1, 2, 4)


def small_suite(seed: int):
    """A compact suite whose cases all visit the mutated methods."""
    suite = DriverGenerator(CSortableObList.__tspec__, seed=seed).generate()
    relevant = tuple(
        case for case in suite.cases
        if any(step.method_name in ("FindMax", "FindMin")
               for step in case.steps)
    )[:60]
    return replace(suite, cases=relevant)


def oracle():
    return experiment_oracle(CSortableObList.__tspec__)


@pytest.fixture(scope="module")
def findmax_mutants():
    mutants, _ = generate_mutants(
        CSortableObList, ["FindMax"], type_model=OBLIST_TYPE_MODEL
    )
    return mutants[:30]


@pytest.fixture(scope="module")
def serial_runs(findmax_mutants):
    """One serial reference run per RNG seed (the differential baseline)."""
    return {
        seed: MutationAnalysis(
            CSortableObList, small_suite(seed), oracle=oracle()
        ).analyze(findmax_mutants)
        for seed in SEEDS
    }


class TestSerialEquivalence:
    """Parallel == serial, field for field, across schedules and seeds."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_run_equals_serial(self, workers, seed, findmax_mutants,
                               serial_runs):
        serial = serial_runs[seed]
        parallel = ParallelMutationAnalysis(
            CSortableObList, small_suite(seed), oracle=oracle(),
            workers=workers,
        ).analyze(findmax_mutants)

        assert parallel.same_results(serial)
        # The explicit outcome-for-outcome contract, spelled out:
        assert len(parallel.outcomes) == len(serial.outcomes)
        for mine, theirs in zip(parallel.outcomes, serial.outcomes):
            assert mine.mutant == theirs.mutant          # submission order
            assert mine.killed == theirs.killed
            assert mine.reason is theirs.reason
            assert mine.killing_case == theirs.killing_case
            assert mine.cases_run == theirs.cases_run
        assert parallel.kill_reason_counts() == serial.kill_reason_counts()
        assert parallel.step_timeouts == serial.step_timeouts

    @pytest.mark.parametrize("workers", (2, 4))
    def test_mutation_score_identical(self, workers, findmax_mutants,
                                      serial_runs):
        seed = SEEDS[0]
        parallel = ParallelMutationAnalysis(
            CSortableObList, small_suite(seed), oracle=oracle(),
            workers=workers,
        ).analyze(findmax_mutants)
        serial_table = build_score_table(serial_runs[seed])
        parallel_table = build_score_table(parallel)
        assert parallel_table == serial_table
        assert parallel_table.total_score == serial_table.total_score

    def test_analyze_mutants_workers_dispatch(self, findmax_mutants):
        suite = small_suite(SEEDS[1])
        serial = analyze_mutants(
            CSortableObList, suite, findmax_mutants[:5], oracle=oracle()
        )
        parallel = analyze_mutants(
            CSortableObList, suite, findmax_mutants[:5], oracle=oracle(),
            workers=2,
        )
        assert parallel.same_results(serial)

    def test_convenience_wrapper(self, findmax_mutants, serial_runs):
        seed = SEEDS[0]
        run = analyze_mutants_parallel(
            CSortableObList, small_suite(seed), findmax_mutants,
            workers=2, oracle=oracle(),
        )
        assert run.same_results(serial_runs[seed])

    def test_empty_battery(self):
        run = ParallelMutationAnalysis(
            CSortableObList, small_suite(SEEDS[0]), oracle=oracle(), workers=2
        ).analyze([])
        assert run.total == 0
        assert run.outcomes == ()


class TestMutantReconstruction:
    """Mutants must round-trip the process boundary by source recompilation."""

    def test_pickle_roundtrip_preserves_record_and_owner(self, findmax_mutants):
        original = findmax_mutants[0]
        clone = pickle.loads(pickle.dumps(original))
        assert clone.record == original.record
        assert clone.owner is original.owner
        assert clone.function is not original.function  # recompiled

    def test_reconstructed_mutant_behaves_identically(self, findmax_mutants):
        original = findmax_mutants[0]
        clone = pickle.loads(pickle.dumps(original))
        suite = small_suite(SEEDS[0])
        run_a = MutationAnalysis(
            CSortableObList, suite, oracle=oracle()
        ).analyze([original])
        run_b = MutationAnalysis(
            CSortableObList, suite, oracle=oracle()
        ).analyze([clone])
        assert run_a.same_results(run_b)


# ---------------------------------------------------------------------------
# Hostile-mutant fixtures (the paper's "program crashed" clause)
# ---------------------------------------------------------------------------

#: A mutant whose method takes the entire worker process down.
CRASH_SOURCE = (
    "def FindMax(self):\n"
    "    import os\n"
    "    os._exit(23)\n"
)

#: A mutant that blocks in C-level sleeps: line events accumulate far too
#: slowly for the step budget to matter, so only wall-clock observes it.
HANG_SOURCE = (
    "def FindMax(self):\n"
    "    import time\n"
    "    while True:\n"
    "        time.sleep(0.005)\n"
)


def hostile_mutant(ident: str, source: str):
    record = Mutant(
        ident=ident,
        operator="IndVarRepReq",
        class_name="CSortableObList",
        method_name="FindMax",
        variable="pos",
        occurrence=0,
        line=1,
        replacement="0",
        description="hostile fixture mutant",
        mutated_source=source,
    )
    return rebuild_compiled_mutant(record, CSortableObList)


class TestWorkerCrashRobustness:
    def test_crashing_mutant_killed_with_distinct_reason(self, findmax_mutants):
        suite = small_suite(SEEDS[0])
        hostile = hostile_mutant("X0001", CRASH_SOURCE)
        tail = list(findmax_mutants[:6])
        run = ParallelMutationAnalysis(
            CSortableObList, suite, oracle=oracle(), workers=2,
        ).analyze([hostile] + tail)

        assert run.total == 7
        first = run.outcomes[0]
        assert first.killed
        assert first.reason is KillReason.WORKER_CRASH
        assert "exitcode" in first.detail
        assert first.killing_case == ""
        assert first.cases_run == 0
        # The engine completed every remaining mutant, serial-identically.
        serial_tail = MutationAnalysis(
            CSortableObList, suite, oracle=oracle()
        ).analyze(tail)
        assert run.outcomes[1:] == serial_tail.outcomes

    def test_crash_counts_as_kill_in_reason_tally(self, findmax_mutants):
        suite = small_suite(SEEDS[0])
        hostile = hostile_mutant("X0003", CRASH_SOURCE)
        run = ParallelMutationAnalysis(
            CSortableObList, suite, oracle=oracle(), workers=2,
        ).analyze([hostile, findmax_mutants[0]])
        counts = run.kill_reason_counts()
        assert counts[KillReason.WORKER_CRASH.value] == 1


class TestWallClockBackstopRobustness:
    def test_hanging_mutant_killed_and_engine_completes(self, findmax_mutants):
        suite = small_suite(SEEDS[0])
        hostile = hostile_mutant("X0002", HANG_SOURCE)
        tail = list(findmax_mutants[:4])
        run = ParallelMutationAnalysis(
            CSortableObList, suite, oracle=oracle(), workers=2,
            wall_clock_backstop=1.5,
        ).analyze([hostile] + tail)

        assert run.total == 5
        first = run.outcomes[0]
        assert first.killed
        assert first.reason is KillReason.WALL_TIMEOUT
        assert "backstop" in first.detail
        assert first.cases_run == 0
        serial_tail = MutationAnalysis(
            CSortableObList, suite, oracle=oracle()
        ).analyze(tail)
        assert run.outcomes[1:] == serial_tail.outcomes

    def test_invalid_backstop_rejected(self):
        with pytest.raises(ValueError):
            ParallelMutationAnalysis(
                CSortableObList, small_suite(SEEDS[0]),
                wall_clock_backstop=0.0,
            )
