"""Invalidation semantics of the mutation-outcome cache.

Content addressing means "invalidation" is not a deletion pass: changing
any fingerprinted input simply re-addresses the affected entries, so they
miss (and the slot index reports them as *invalidations*, not cold
misses), while every untouched entry keeps hitting — and reverting the
change hits the original entries again.  Corrupt segment records (scribbled
payload, flipped CRC, wrong payload type) are misses, never crashes.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.generator.driver import DriverGenerator
from repro.harness.oracles import assertions_only_oracle, experiment_oracle
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.cache import (
    _HEADER,
    _KEY_LENGTHS,
    _KIND_OUTCOME,
    MutationOutcomeCache,
)
from repro.mutation.generate import generate_mutants
from repro.mutation.mutant import CompiledMutant, compile_mutant_function

SEED = 20010701
MUTANT_COUNT = 8


def small_suite(seed: int = SEED):
    suite = DriverGenerator(CSortableObList.__tspec__, seed=seed).generate()
    relevant = tuple(
        case for case in suite.cases
        if any(step.method_name in ("FindMax", "FindMin")
               for step in case.steps)
    )[:30]
    return replace(suite, cases=relevant)


@pytest.fixture(scope="module")
def mutants():
    pool, _ = generate_mutants(
        CSortableObList, ["FindMax"], type_model=OBLIST_TYPE_MODEL
    )
    return pool[:MUTANT_COUNT]


@pytest.fixture()
def warm_cache(mutants, tmp_path):
    """A cache populated by one cold run of the canonical configuration."""
    cache = MutationOutcomeCache(tmp_path)
    MutationAnalysis(
        CSortableObList, small_suite(), oracle=experiment_oracle(
            CSortableObList.__tspec__
        ), cache=cache,
    ).analyze(mutants)
    return cache


def run(mutants, cache, *, suite=None, oracle=None, **options):
    analysis = MutationAnalysis(
        CSortableObList,
        suite if suite is not None else small_suite(),
        oracle=oracle or experiment_oracle(CSortableObList.__tspec__),
        cache=cache,
        **options,
    )
    return analysis.analyze(mutants)


def perturbed_mutant(mutant: CompiledMutant) -> CompiledMutant:
    """The same mutant with semantically-neutral but different source."""
    record = replace(
        mutant.record,
        mutated_source=mutant.record.mutated_source + "\n# touched",
    )
    return CompiledMutant(
        record, mutant.owner, compile_mutant_function(record, mutant.owner)
    )


class TestComponentInvalidation:
    """Each fingerprint component invalidates exactly the affected entries."""

    def test_one_mutant_source_change_misses_only_that_entry(
            self, mutants, warm_cache):
        edited = list(mutants)
        edited[0] = perturbed_mutant(mutants[0])
        result = run(edited, warm_cache)
        assert result.cache_stats.hits == len(mutants) - 1
        assert result.cache_stats.misses == 1
        # The slot index knows this mutant existed under another fingerprint.
        assert result.cache_stats.invalidations == 1

    def test_one_test_case_value_invalidates_the_suite_entries(
            self, mutants, warm_cache):
        suite = small_suite()
        case = suite.cases[0]
        step_index, step = next(
            (index, step) for index, step in enumerate(case.steps)
            if step.arguments and isinstance(step.arguments[0], int)
        )
        perturbed_step = replace(
            step, arguments=(step.arguments[0] + 1,) + step.arguments[1:]
        )
        perturbed_case = replace(
            case,
            steps=case.steps[:step_index]
            + (perturbed_step,)
            + case.steps[step_index + 1:],
        )
        perturbed = replace(suite, cases=(perturbed_case,) + suite.cases[1:])
        assert perturbed.fingerprint() != suite.fingerprint()

        # Every entry of this experiment ran under the old suite, so every
        # lookup misses — and each is an invalidation, not a cold miss.
        result = run(mutants, warm_cache, suite=perturbed)
        assert result.cache_stats.hits == 0
        assert result.cache_stats.misses == len(mutants)
        assert result.cache_stats.invalidations == len(mutants)

    def test_oracle_configuration_invalidates(self, mutants, warm_cache):
        result = run(mutants, warm_cache, oracle=assertions_only_oracle())
        assert result.cache_stats.hits == 0
        assert result.cache_stats.invalidations == len(mutants)

    def test_step_budget_invalidates(self, mutants, warm_cache):
        result = run(mutants, warm_cache, step_budget=123_456)
        assert result.cache_stats.hits == 0
        assert result.cache_stats.invalidations == len(mutants)

    def test_analysis_flags_invalidate(self, mutants, warm_cache):
        result = run(mutants, warm_cache, stop_on_first_kill=False)
        assert result.cache_stats.hits == 0
        assert result.cache_stats.invalidations == len(mutants)

    def test_revert_hits_the_original_entries_again(self, mutants, warm_cache):
        run(mutants, warm_cache, step_budget=123_456)  # supersedes the slots
        reverted = run(mutants, warm_cache)
        assert reverted.cache_stats.hits == len(mutants)
        assert reverted.cache_stats.misses == 0


def _payload_offset(cache, key):
    """File offset of the victim record's pickled payload."""
    location = cache._entries[key.entry]
    return location.offset + _HEADER.size + _KEY_LENGTHS[_KIND_OUTCOME]


def _scribble_payload(cache, key):
    """Overwrite the start of the payload: the CRC check rejects it."""
    with open(cache.segment_path, "r+b") as handle:
        handle.seek(_payload_offset(cache, key))
        handle.write(b"\x80garbage")


def _zero_payload(cache, key):
    with open(cache.segment_path, "r+b") as handle:
        handle.seek(_payload_offset(cache, key))
        handle.write(b"\x00" * 16)


def _flip_crc(cache, key):
    """Invert the stored CRC: the intact payload no longer verifies."""
    location = cache._entries[key.entry]
    with open(cache.segment_path, "r+b") as handle:
        handle.seek(location.offset + 8)   # <BBHII — crc is the last field
        crc = handle.read(4)
        handle.seek(location.offset + 8)
        handle.write(bytes(byte ^ 0xFF for byte in crc))


class TestCorruptEntries:
    """A present-but-unreadable segment record is a miss, never a crash."""

    def keys(self, mutants, cache):
        analysis = MutationAnalysis(
            CSortableObList, small_suite(),
            oracle=experiment_oracle(CSortableObList.__tspec__), cache=cache,
        )
        experiment = analysis.experiment_fingerprint()
        return [cache.key_for(experiment, mutant) for mutant in mutants]

    @pytest.mark.parametrize("damage", [
        _scribble_payload,
        _zero_payload,
        _flip_crc,
    ])
    def test_damaged_entry_is_a_miss_then_healed(self, damage, mutants,
                                                 warm_cache):
        victim = self.keys(mutants, warm_cache)[0]
        damage(warm_cache, victim)
        result = run(mutants, warm_cache)
        assert result.cache_stats.hits == len(mutants) - 1
        assert result.cache_stats.misses == 1
        assert result.cache_stats.corrupt == 1
        # The rerun re-appended the entry; the next run is fully warm again.
        healed = run(mutants, warm_cache)
        assert healed.cache_stats.hits == len(mutants)
        assert healed.cache_stats.corrupt == 0

    def test_damage_survives_reopen_as_one_corrupt_miss(self, mutants,
                                                        warm_cache):
        # A fresh cache object on the same directory rebuilds its index by
        # scan — structure is intact, so the damaged record is indexed,
        # and only the lookup-time CRC rejects it.
        victim = self.keys(mutants, warm_cache)[0]
        _scribble_payload(warm_cache, victim)
        warm_cache.close()
        reopened = MutationOutcomeCache(warm_cache.directory)
        result = run(mutants, reopened)
        assert result.cache_stats.hits == len(mutants) - 1
        assert result.cache_stats.corrupt == 1

    def test_wrong_payload_type_is_corrupt(self, mutants, warm_cache):
        import pickle

        # A well-framed record (valid CRC) whose payload is not a
        # CacheEntry: the typed read rejects it as corrupt.
        victim = self.keys(mutants, warm_cache)[0]
        location = warm_cache._append(
            _KIND_OUTCOME,
            (victim.entry + victim.slot).encode("ascii"),
            pickle.dumps({"not": "a CacheEntry"}),
        )
        warm_cache._entries[victim.entry] = location
        result = run(mutants, warm_cache)
        assert result.cache_stats.corrupt == 1
        assert result.cache_stats.hits == len(mutants) - 1
