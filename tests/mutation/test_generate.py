"""Tests for the mutant generation pipeline."""

from __future__ import annotations

import pytest

from repro.components import CObList, CSortableObList, OBLIST_TYPE_MODEL
from repro.mutation.generate import GenerationReport, MutantGenerator, generate_mutants
from repro.mutation.operators import ALL_OPERATORS, IndVarBitNeg, OPERATOR_NAMES


class TestGeneration:
    def test_all_mutants_compile(self):
        mutants, report = generate_mutants(CSortableObList, ["FindMax"])
        assert mutants
        assert report.compile_failures == 0
        for mutant in mutants:
            assert callable(mutant.function)

    def test_idents_sequential_and_prefixed(self):
        mutants, _ = generate_mutants(CObList, ["RemoveHead"], ident_prefix="B")
        assert mutants[0].ident == "B0001"
        idents = [mutant.ident for mutant in mutants]
        assert idents == sorted(idents)
        assert len(set(idents)) == len(idents)

    def test_records_carry_location_and_description(self):
        mutants, _ = generate_mutants(CSortableObList, ["FindMin"])
        for mutant in mutants:
            record = mutant.record
            assert record.method_name == "FindMin"
            assert record.class_name == "CSortableObList"
            assert record.operator in OPERATOR_NAMES
            assert record.line > 0
            assert record.variable in record.description
            assert record.mutated_source

    def test_mutated_source_differs_from_original(self):
        import inspect
        import textwrap

        original = textwrap.dedent(inspect.getsource(CSortableObList.FindMax))
        mutants, _ = generate_mutants(CSortableObList, ["FindMax"])
        for mutant in mutants[:20]:
            assert mutant.record.mutated_source != original

    def test_no_duplicate_sources_per_method(self):
        mutants, report = generate_mutants(CSortableObList, ["Sort2"])
        sources = [mutant.record.mutated_source for mutant in mutants]
        assert len(sources) == len(set(sources))

    def test_operator_subset(self):
        mutants, _ = generate_mutants(
            CSortableObList, ["FindMax"], operators=(IndVarBitNeg(),)
        )
        assert {mutant.operator for mutant in mutants} == {"IndVarBitNeg"}

    def test_report_accounting(self):
        mutants, report = generate_mutants(CSortableObList, ["FindMax", "FindMin"])
        assert report.generated == len(mutants)
        assert sum(report.per_method_operator.values()) == len(mutants)
        assert set(report.methods) == {"FindMax", "FindMin"}
        assert "2 methods" in report.summary()

    def test_type_gate_accounting(self):
        _, report = generate_mutants(
            CSortableObList, ["FindMax"], type_model=OBLIST_TYPE_MODEL
        )
        assert report.type_incompatible > 0
        assert "type-incompatible" in report.summary()

    def test_generator_reuse(self):
        generator = MutantGenerator(CSortableObList)
        first, _ = generator.generate(["FindMax"])
        second, _ = generator.generate(["FindMin"])
        assert first and second


class TestPaperScale:
    def test_table2_pool_close_to_700(self):
        mutants, _ = generate_mutants(
            CSortableObList,
            ["Sort1", "Sort2", "ShellSort", "FindMax", "FindMin"],
            type_model=OBLIST_TYPE_MODEL,
        )
        # Paper: 700 mutants for the five methods.
        assert 500 <= len(mutants) <= 900

    def test_table3_pool_close_to_159(self):
        mutants, _ = generate_mutants(
            CObList,
            ["AddHead", "RemoveAt", "RemoveHead"],
            type_model=OBLIST_TYPE_MODEL,
        )
        # Paper: 159 mutants for the three base methods.
        assert 100 <= len(mutants) <= 260

    def test_every_operator_contributes_to_table2(self):
        mutants, _ = generate_mutants(
            CSortableObList,
            ["Sort1", "Sort2", "ShellSort", "FindMax", "FindMin"],
            type_model=OBLIST_TYPE_MODEL,
        )
        operators = {mutant.operator for mutant in mutants}
        assert operators == set(OPERATOR_NAMES)


class TestMutantBehaviour:
    def test_mutant_class_is_separate(self):
        mutants, _ = generate_mutants(CSortableObList, ["FindMax"])
        mutant_class = mutants[0].build_class()
        assert mutant_class is not CSortableObList
        assert mutant_class.__name__ == "CSortableObList"
        # Original class unaffected.
        pristine = CSortableObList()
        pristine.AddTail(3)
        pristine.AddTail(1)
        assert pristine.FindMax() == 0

    def test_mutant_class_cached(self):
        mutants, _ = generate_mutants(CSortableObList, ["FindMax"])
        mutant = mutants[0]
        assert mutant.build_class() is mutant.build_class()

    def test_some_mutant_changes_behaviour(self):
        from repro.mutation.sandbox import StepBudgetGuard

        # Some mutants loop forever (e.g. a cursor replaced by self._head):
        # every direct execution must run under the step-budget guard.
        guard = StepBudgetGuard(budget=5_000)
        mutants, _ = generate_mutants(CSortableObList, ["FindMax"])
        changed = 0
        for mutant in mutants:
            mutant_class = mutant.build_class()
            instance = mutant_class()
            instance.AddTail(3)
            instance.AddTail(7)
            instance.AddTail(1)
            try:
                if guard(instance.FindMax) != 1:
                    changed += 1
            except Exception:
                changed += 1
        assert changed > 0
