"""Write-failure hardening of the segment store (ENOSPC and friends).

The contract under test: a failed or partially flushed append never
poisons the store — the on-disk tail is rolled back (or covered by the
torn-tail scan), the writer degrades to cache-off with every lost store
counted as ``cache.write_error``, and lookups keep serving everything
written before the fault.
"""

from __future__ import annotations

import errno

import pytest

from repro.core.fingerprint import sha256_hex
from repro.mutation.cache import MutationOutcomeCache
from repro.obs import MemorySink, Telemetry


def _key(tag: str) -> str:
    return sha256_hex("cache-fault-test", tag)


class _FailingHandle:
    """Wraps the real segment handle; fails writes on command.

    ``partial`` writes half the record before raising — the ENOSPC
    mid-record case; ``fail_truncate`` makes the rollback fail too, so
    the dead tail stays on disk for the torn-tail scan to cover.
    """

    def __init__(self, real, partial=False, fail_truncate=False):
        self._real = real
        self.partial = partial
        self.fail_truncate = fail_truncate
        self.failing = True

    def write(self, data):
        if not self.failing:
            return self._real.write(data)
        if self.partial:
            self._real.write(data[:max(1, len(data) // 2)])
            self._real.flush()
        raise OSError(errno.ENOSPC, "No space left on device")

    def truncate(self, *args):
        if self.failing and self.fail_truncate:
            raise OSError(errno.ENOSPC, "No space left on device")
        return self._real.truncate(*args)

    def __getattr__(self, name):
        return getattr(self._real, name)


def _inject(cache, **kwargs) -> _FailingHandle:
    """Swap the cache's (already open, writable) handle for a failing one."""
    handle = cache._open(writable=True)
    failing = _FailingHandle(handle, **kwargs)
    cache._handle = failing
    return failing


def test_enospc_degrades_to_cache_off_and_counts_losses(tmp_path):
    telemetry = Telemetry(sink=MemorySink())
    cache = MutationOutcomeCache(tmp_path, telemetry=telemetry)
    cache.store_scenario(_key("kept"), {"ident": "kept"})
    assert cache.lookup_scenario(_key("kept")) == {"ident": "kept"}

    _inject(cache)
    cache.store_scenario(_key("lost-1"), {"ident": "lost-1"})
    assert cache.writes_disabled
    assert cache.write_errors == 1
    # further stores are skipped but still counted as losses
    cache.store_scenario(_key("lost-2"), {"ident": "lost-2"})
    cache.store_triage(_key("lost-3"), "equivalent", _key("digest"))
    assert cache.write_errors == 3
    assert telemetry.counters()["cache.write_error"] == 3

    # the read side never degrades: pre-fault records still hit
    assert cache.lookup_scenario(_key("kept")) == {"ident": "kept"}
    assert cache.lookup_scenario(_key("lost-1")) is None
    cache.close()


def test_failed_append_rolls_back_the_tail(tmp_path):
    cache = MutationOutcomeCache(tmp_path)
    cache.store_scenario(_key("kept"), {"ident": "kept"})
    size_before = cache.segment_path.stat().st_size

    _inject(cache, partial=True)  # half the record reaches the disk
    cache.store_scenario(_key("lost"), {"ident": "lost"})
    assert cache.writes_disabled
    # rollback truncated the partial record: the file is exactly as it was
    assert cache.segment_path.stat().st_size == size_before

    fresh = MutationOutcomeCache(tmp_path)
    assert fresh.lookup_scenario(_key("kept")) == {"ident": "kept"}
    assert not fresh.writes_disabled
    fresh.close()
    cache.close()


def test_partial_flush_with_failed_rollback_is_covered_by_torn_scan(tmp_path):
    cache = MutationOutcomeCache(tmp_path)
    cache.store_scenario(_key("kept-1"), {"ident": "kept-1"})
    cache.store_scenario(_key("kept-2"), {"ident": "kept-2"})
    size_before = cache.segment_path.stat().st_size

    failing = _inject(cache, partial=True, fail_truncate=True)
    cache.store_scenario(_key("lost"), {"ident": "lost"})
    assert cache.write_errors == 1
    # the dead tail is on disk: rollback failed, scan must cover it
    assert cache.segment_path.stat().st_size > size_before

    # a fresh cache over the damaged file serves every pre-fault record
    # and can append again right past the recovered end
    failing.failing = False
    fresh = MutationOutcomeCache(tmp_path)
    assert fresh.lookup_scenario(_key("kept-1")) == {"ident": "kept-1"}
    assert fresh.lookup_scenario(_key("kept-2")) == {"ident": "kept-2"}
    assert fresh.lookup_scenario(_key("lost")) is None
    fresh.store_scenario(_key("after"), {"ident": "after"})
    assert fresh.lookup_scenario(_key("after")) == {"ident": "after"}
    fresh.close()

    final = MutationOutcomeCache(tmp_path)
    assert final.lookup_scenario(_key("kept-1")) == {"ident": "kept-1"}
    assert final.lookup_scenario(_key("after")) == {"ident": "after"}
    final.close()
    cache.close()


def test_write_failure_never_reaches_the_caller(tmp_path):
    cache = MutationOutcomeCache(tmp_path)
    _inject(cache)
    # best-effort contract: no OSError escapes any store method
    cache.store_scenario(_key("a"), {"ident": "a"})
    cache.store_triage(_key("b"), "equivalent", _key("c"))
    assert cache.write_errors == 2
    cache.close()
