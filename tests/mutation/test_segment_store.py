"""Property/stress tests for the v4 append-only segment store.

The store's robustness contract: one ``store.seg`` file, an in-memory
offset index rebuilt by scan on open, torn/garbage tails tolerated as
counted misses (never crashes), ``compact()`` preserves every live
verdict, v3 file-per-entry directories migrate transparently on the read
side, and sequential sharers of one directory never clobber each other.
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.generator.driver import DriverGenerator
from repro.harness.oracles import experiment_oracle
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.cache import (
    CACHE_FORMAT_VERSION,
    LEGACY_FORMAT_VERSION,
    SEGMENT_FILE,
    CacheEntry,
    MutationOutcomeCache,
)
from repro.mutation.generate import generate_mutants

SEED = 20010701
MUTANT_COUNT = 10


def small_suite(seed: int = SEED):
    suite = DriverGenerator(CSortableObList.__tspec__, seed=seed).generate()
    relevant = tuple(
        case for case in suite.cases
        if any(step.method_name in ("FindMax", "FindMin")
               for step in case.steps)
    )[:30]
    return replace(suite, cases=relevant)


def oracle():
    return experiment_oracle(CSortableObList.__tspec__)


BUILD_CALLS = {"count": 0}


def counting_builder(mutant):
    BUILD_CALLS["count"] += 1
    return mutant.build_class()


@pytest.fixture(scope="module")
def mutants():
    pool, _ = generate_mutants(
        CSortableObList, ["FindMax"], type_model=OBLIST_TYPE_MODEL
    )
    return pool[:MUTANT_COUNT]


def run(mutants, cache, **options):
    return MutationAnalysis(
        CSortableObList, small_suite(), oracle=oracle(), cache=cache,
        **options,
    ).analyze(mutants)


class TestRoundTrip:
    """Write, reopen (index rebuilt by scan), read everything back."""

    def test_cold_then_reopen_is_fully_warm(self, mutants, tmp_path):
        cold = run(mutants, MutationOutcomeCache(tmp_path))
        assert cold.cache_stats.misses == len(mutants)
        assert (tmp_path / SEGMENT_FILE).is_file()
        # No v3 file-per-entry tree is ever written by a v4 store.
        assert not (tmp_path / "objects").exists()

        reopened = MutationOutcomeCache(tmp_path)
        warm = run(mutants, reopened)
        assert warm.same_results(cold)
        assert warm.cache_stats.hits == len(mutants)
        assert warm.cache_stats.misses == 0

    def test_live_records_and_bytes_reflect_the_segment(self, mutants,
                                                        tmp_path):
        cache = MutationOutcomeCache(tmp_path)
        run(mutants, cache, static_triage=False)
        assert cache.live_records() == len(mutants)
        assert cache.segment_bytes() == (
            (tmp_path / SEGMENT_FILE).stat().st_size
        )


class TestTailDamage:
    """Structural damage at the end of the segment is survived by scan."""

    def test_truncated_tail_loses_only_the_torn_record(self, mutants,
                                                       tmp_path):
        cold = run(mutants, MutationOutcomeCache(tmp_path),
                   static_triage=False)
        segment = tmp_path / SEGMENT_FILE
        segment.write_bytes(segment.read_bytes()[:-10])  # tear the last record

        reopened = MutationOutcomeCache(tmp_path)
        assert reopened.live_records() == len(mutants) - 1
        healed = run(mutants, reopened, static_triage=False)
        assert healed.same_results(cold)
        assert healed.cache_stats.hits == len(mutants) - 1
        assert healed.cache_stats.misses == 1  # the torn record, re-executed

        # The heal re-appended it (truncating the dead tail first): warm.
        warm = run(mutants, MutationOutcomeCache(tmp_path),
                   static_triage=False)
        assert warm.cache_stats.hits == len(mutants)

    def test_garbage_tail_keeps_every_record_live(self, mutants, tmp_path):
        cold = run(mutants, MutationOutcomeCache(tmp_path))
        segment = tmp_path / SEGMENT_FILE
        with open(segment, "ab") as handle:
            handle.write(b"\xff" * 37)  # structurally invalid appendage

        warm = run(mutants, MutationOutcomeCache(tmp_path))
        assert warm.same_results(cold)
        assert warm.cache_stats.hits == len(mutants)
        assert warm.cache_stats.misses == 0

    def test_alien_file_degrades_to_no_caching(self, mutants, tmp_path):
        segment = tmp_path / SEGMENT_FILE
        segment.write_bytes(b"definitely not a segment store")
        before = segment.read_bytes()
        result = run(mutants, MutationOutcomeCache(tmp_path))
        # Every lookup misses, the run completes, and the store NEVER
        # appends into (or truncates) a file it does not recognize.
        assert result.cache_stats.misses == len(mutants)
        assert segment.read_bytes() == before

    def test_empty_file_is_adopted(self, mutants, tmp_path):
        (tmp_path / SEGMENT_FILE).write_bytes(b"")
        cold = run(mutants, MutationOutcomeCache(tmp_path))
        assert cold.cache_stats.misses == len(mutants)
        warm = run(mutants, MutationOutcomeCache(tmp_path))
        assert warm.cache_stats.hits == len(mutants)


class TestLegacyMigration:
    """A v3 file-per-entry directory is read — and migrated — on miss."""

    def legacy_layout(self, mutants, directory):
        """Build a v3 tree by hand from per-mutant serial verdicts."""
        scratch = MutationOutcomeCache(directory)  # for paths/keys only
        analysis = MutationAnalysis(
            CSortableObList, small_suite(), oracle=oracle(),
            cache=scratch,
        )
        experiment = analysis.experiment_fingerprint()
        for mutant in mutants:
            outcome, timeouts = analysis.analyze_single(mutant)
            key = scratch.key_for(experiment, mutant)
            entry = CacheEntry(
                version=LEGACY_FORMAT_VERSION,
                fingerprint=key.entry,
                outcome=outcome,
                step_timeouts=timeouts,
            )
            path = scratch._entry_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(pickle.dumps(entry))
            slot = scratch._slot_path(key)
            slot.parent.mkdir(parents=True, exist_ok=True)
            slot.write_text(key.entry)
        return scratch._entry_path(scratch.key_for(experiment, mutants[0]))

    def test_v3_entries_hit_and_migrate_into_the_segment(self, mutants,
                                                         tmp_path):
        self.legacy_layout(mutants, tmp_path)
        assert not (tmp_path / SEGMENT_FILE).exists()

        cache = MutationOutcomeCache(tmp_path)
        fresh = MutationAnalysis(
            CSortableObList, small_suite(), oracle=oracle(),
        ).analyze(mutants)
        migrated = run(mutants, cache, static_triage=False)
        assert migrated.same_results(fresh)
        assert migrated.cache_stats.hits == len(mutants)
        assert migrated.cache_stats.misses == 0
        # Every legacy hit was appended to the segment …
        assert cache.live_records() == len(mutants)

        # … so the legacy tree is now dead weight: delete it and the next
        # run is segment-only warm.
        import shutil

        shutil.rmtree(tmp_path / "objects")
        shutil.rmtree(tmp_path / "index")
        warm = run(mutants, MutationOutcomeCache(tmp_path),
                   static_triage=False)
        assert warm.same_results(fresh)
        assert warm.cache_stats.hits == len(mutants)

    def test_migrated_entries_carry_the_current_version(self, mutants,
                                                        tmp_path):
        self.legacy_layout(mutants, tmp_path)
        cache = MutationOutcomeCache(tmp_path)
        analysis = MutationAnalysis(
            CSortableObList, small_suite(), oracle=oracle(), cache=cache,
        )
        experiment = analysis.experiment_fingerprint()
        key = cache.key_for(experiment, mutants[0])
        entry = cache.lookup(key)
        assert entry is not None
        assert entry.version == CACHE_FORMAT_VERSION
        # The segment copy satisfies the next lookup without the file.
        relookup = MutationOutcomeCache(tmp_path).lookup(key)
        assert relookup is not None
        assert relookup.outcome == entry.outcome

    def test_corrupt_legacy_file_is_a_counted_miss(self, mutants, tmp_path):
        victim = self.legacy_layout(mutants, tmp_path)
        victim.write_bytes(b"\x80 not a pickle")
        result = run(mutants, MutationOutcomeCache(tmp_path),
                     static_triage=False)
        assert result.cache_stats.hits == len(mutants) - 1
        assert result.cache_stats.misses == 1
        assert result.cache_stats.corrupt == 1
        assert not victim.exists()  # damaged legacy files are removed


class TestCompaction:
    """compact() drops dead weight but never a live verdict."""

    def test_compaction_preserves_all_live_verdicts(self, mutants, tmp_path):
        cache = MutationOutcomeCache(tmp_path)
        BUILD_CALLS["count"] = 0
        cold = MutationAnalysis(
            CSortableObList, small_suite(), oracle=oracle(),
            class_builder=counting_builder, cache=cache,
        ).analyze(mutants)
        assert BUILD_CALLS["count"] == len(mutants)
        report = cache.compact()
        assert report.records_dropped == 0  # nothing was superseded

        BUILD_CALLS["count"] = 0
        warm = MutationAnalysis(
            CSortableObList, small_suite(), oracle=oracle(),
            class_builder=counting_builder,
            cache=MutationOutcomeCache(tmp_path),
        ).analyze(mutants)
        assert warm.cache_stats.hits == len(mutants)
        assert BUILD_CALLS["count"] == 0  # still executes zero mutants
        assert warm.same_results(cold)

    def test_compaction_drops_superseded_duplicates(self, mutants, tmp_path):
        cache = MutationOutcomeCache(tmp_path)
        run(mutants, cache, static_triage=False)
        analysis = MutationAnalysis(
            CSortableObList, small_suite(), oracle=oracle(), cache=cache,
        )
        experiment = analysis.experiment_fingerprint()
        key = cache.key_for(experiment, mutants[0])
        entry = cache.lookup(key)
        cache.store(key, entry.outcome, entry.step_timeouts)  # duplicate
        before = (tmp_path / SEGMENT_FILE).stat().st_size

        report = cache.compact()
        assert report.records_kept == len(mutants)
        assert report.records_dropped == 1
        assert (tmp_path / SEGMENT_FILE).stat().st_size < before
        assert MutationOutcomeCache(tmp_path).lookup(key) is not None

    def test_compaction_keeps_other_experiments_entries(self, mutants,
                                                        tmp_path):
        # Two configurations share the store; compacting under one must
        # not drop the other's verdicts (reverting a change still hits).
        cache = MutationOutcomeCache(tmp_path)
        default = run(mutants, cache, static_triage=False)
        budgeted = run(mutants, cache, static_triage=False,
                       step_budget=123_456)
        assert budgeted.cache_stats.invalidations == len(mutants)
        cache.compact()

        reverted = run(mutants, MutationOutcomeCache(tmp_path),
                       static_triage=False)
        assert reverted.cache_stats.hits == len(mutants)
        assert reverted.same_results(default)
        rebudgeted = run(mutants, MutationOutcomeCache(tmp_path),
                         static_triage=False, step_budget=123_456)
        assert rebudgeted.cache_stats.hits == len(mutants)

    def test_compaction_drops_damaged_records(self, mutants, tmp_path):
        cache = MutationOutcomeCache(tmp_path)
        run(mutants, cache, static_triage=False)
        analysis = MutationAnalysis(
            CSortableObList, small_suite(), oracle=oracle(), cache=cache,
        )
        experiment = analysis.experiment_fingerprint()
        key = cache.key_for(experiment, mutants[0])
        location = cache._entries[key.entry]
        with open(cache.segment_path, "r+b") as handle:
            handle.seek(location.offset + location.length - 8)
            handle.write(b"\x00" * 8)

        report = cache.compact()
        assert report.records_kept == len(mutants) - 1
        assert report.records_dropped == 1
        result = run(mutants, MutationOutcomeCache(tmp_path),
                     static_triage=False)
        assert result.cache_stats.hits == len(mutants) - 1
        assert result.cache_stats.misses == 1


class TestSequentialSharers:
    """Two cache objects on one directory never clobber each other."""

    def test_second_engine_reads_the_firsts_records(self, mutants, tmp_path):
        cold = run(mutants, MutationOutcomeCache(tmp_path))
        warm = run(mutants, MutationOutcomeCache(tmp_path))
        assert warm.same_results(cold)
        assert warm.cache_stats.hits == len(mutants)

    def test_stale_sharer_appends_without_clobbering(self, mutants, tmp_path):
        # The second object scanned the directory while it was still
        # empty; when it later appends, it must catch up on the first
        # object's records instead of overwriting them.
        first = MutationOutcomeCache(tmp_path)
        stale = MutationOutcomeCache(tmp_path)
        assert stale.live_records() == 0  # scanned before anything existed

        cold = run(mutants, first, static_triage=False)
        # The stale index misses until its first append, whose catch-up
        # absorbs the first object's records (so later lookups may hit).
        rerun = run(mutants, stale, static_triage=False)
        assert rerun.same_results(cold)
        assert rerun.cache_stats.misses >= 1
        assert (rerun.cache_stats.hits + rerun.cache_stats.misses
                == len(mutants))

        # Nothing was lost: a fresh reader sees one live copy of each.
        fresh = MutationOutcomeCache(tmp_path)
        warm = run(mutants, fresh, static_triage=False)
        assert warm.cache_stats.hits == len(mutants)

    def test_triage_and_outcomes_share_the_segment(self, mutants, tmp_path):
        cache = MutationOutcomeCache(tmp_path)
        run(mutants, cache)  # static triage on: triage verdicts stored too
        assert cache.live_records() > len(mutants)
        warm = run(mutants, MutationOutcomeCache(tmp_path))
        assert warm.cache_stats.hits == len(mutants)
