"""Interpreter-exit shutdown hardening of the worker pool.

``shutdown_shared_pool`` runs from ``atexit`` — after daemon threads
may have been stopped and worker processes reaped.  The contract: it
(and ``WorkerPool.close``) must be idempotent and exception-silent even
when the workers are already dead or the dispatcher is gone.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.generator.driver import DriverGenerator
from repro.harness.oracles import experiment_oracle
from repro.mutation.generate import generate_mutants
from repro.mutation.parallel import (
    ParallelMutationAnalysis,
    WorkerPool,
    shared_worker_pool,
    shutdown_shared_pool,
)


def small_suite():
    suite = DriverGenerator(CSortableObList.__tspec__,
                            seed=20010701).generate()
    relevant = tuple(
        case for case in suite.cases
        if any(step.method_name == "FindMax" for step in case.steps)
    )[:20]
    return replace(suite, cases=relevant)


@pytest.fixture(scope="module")
def mutants():
    generated, _ = generate_mutants(
        CSortableObList, ["FindMax"], type_model=OBLIST_TYPE_MODEL
    )
    return generated[:6]


def _warm(pool, mutants):
    run = ParallelMutationAnalysis(
        CSortableObList, small_suite(),
        oracle=experiment_oracle(CSortableObList.__tspec__),
        workers=2, pool=pool, static_triage=False,
    ).analyze(list(mutants))
    assert run.total == len(mutants)
    return run


def test_close_is_idempotent_after_workers_killed(mutants):
    pool = WorkerPool()
    _warm(pool, mutants)
    assert pool.size >= 2
    # the exit-time race: worker processes are already gone when close runs
    for worker in list(pool.workers):
        worker.process.kill()
        worker.process.join()
    pool.close()
    assert pool.closed
    assert pool.size == 0
    pool.close()  # second close: no-op, no exception


def test_shared_pool_shutdown_twice_with_dead_workers(mutants):
    shutdown_shared_pool()
    try:
        pool = shared_worker_pool()
        _warm(pool, mutants)
        assert pool.size >= 2
        for worker in list(pool.workers):
            worker.process.kill()
            worker.process.join()
        shutdown_shared_pool()
        assert pool.closed
        shutdown_shared_pool()  # idempotent with no pool left
    finally:
        shutdown_shared_pool()


def test_close_survives_broken_pipes(mutants):
    # Kill the workers AND close their pipes first: close must swallow
    # the resulting OSErrors (the atexit environment in miniature).
    pool = WorkerPool()
    _warm(pool, mutants)
    for worker in list(pool.workers):
        worker.process.kill()
        worker.process.join()
        try:
            worker.connection.close()
        except OSError:
            pass
    pool.close()
    pool.close()
    assert pool.closed


def test_pool_usable_again_after_shared_shutdown(mutants):
    shutdown_shared_pool()
    try:
        first = _warm(shared_worker_pool(), mutants)
        shutdown_shared_pool()
        second = _warm(shared_worker_pool(), mutants)
        assert second.same_results(first)
    finally:
        shutdown_shared_pool()
