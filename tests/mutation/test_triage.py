"""Tests for static equivalent-mutant triage.

The centrepiece is the soundness property: across seeds, operators and
every shipped component, a mutant the static pass proves equivalent is
never killed by any generated suite, and members of one redundancy class
always receive the verdict of their executed representative.  Real
operator batteries contain almost no statically-provable mutants (the
generation gate already drops textual duplicates), so each battery is
spiked with synthetic variants that the checks must catch — a docstring
change, dead ``pass`` padding, a CPython-foldable constant spelling, and
a bytecode-identical redundant pair.
"""

from __future__ import annotations

import ast
import pickle
import textwrap
from dataclasses import replace

import pytest

from repro.components import (
    BankAccount,
    BoundedStack,
    CObList,
    CSortableObList,
    OBLIST_TYPE_MODEL,
    Product,
    Provider,
    reset_database,
)
from repro.core.errors import MutationError
from repro.generator.driver import DriverGenerator
from repro.generator.values import TypeBinding
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.cache import CACHE_FORMAT_VERSION, MutationOutcomeCache
from repro.mutation.generate import generate_mutants
from repro.mutation.mutant import Mutant, rebuild_compiled_mutant
from repro.mutation.parallel import ParallelMutationAnalysis
from repro.mutation.score import build_score_table
from repro.mutation.triage import (
    StaticTriage,
    TriageStatus,
    build_triage_findings,
    normalized_bytecode_digest,
    normalized_source_text,
    triage_fingerprint,
    triage_mutants,
    triage_registry,
)

SEEDS = (20010701, 7, 99)


# ---------------------------------------------------------------------------
# Synthetic equivalent variants
# ---------------------------------------------------------------------------


def _method_source(cls: type, method_name: str) -> str:
    import inspect

    return textwrap.dedent(inspect.getsource(getattr(cls, method_name)))


def _first_int_literal(module: ast.Module):
    for node in ast.walk(module):
        if (isinstance(node, ast.Constant) and isinstance(node.value, int)
                and not isinstance(node.value, bool)):
            return node
    return None


class _ConstRewriter(ast.NodeTransformer):
    """Replaces the first plain-int literal with ``builder(k)``."""

    def __init__(self, builder):
        self._builder = builder
        self._done = False

    def visit_Constant(self, node: ast.Constant):  # noqa: N802
        if (not self._done and isinstance(node.value, int)
                and not isinstance(node.value, bool)):
            self._done = True
            return ast.copy_location(self._builder(node.value), node)
        return node


def _rewrite_constant(source: str, builder) -> str:
    module = ast.parse(source)
    rewritten = _ConstRewriter(builder).visit(module)
    ast.fix_missing_locations(rewritten)
    return ast.unparse(rewritten)


def _docstring_variant(source: str) -> str:
    module = ast.parse(source)
    function = module.body[0]
    marker = ast.Expr(value=ast.Constant(value="synthetic docstring"))
    if (function.body and isinstance(function.body[0], ast.Expr)
            and isinstance(function.body[0].value, ast.Constant)
            and isinstance(function.body[0].value.value, str)):
        function.body[0] = marker
    else:
        function.body.insert(0, marker)
    ast.fix_missing_locations(module)
    return ast.unparse(module)


def _pass_variant(source: str) -> str:
    module = ast.parse(source)
    module.body[0].body.append(ast.Pass())
    ast.fix_missing_locations(module)
    return ast.unparse(module)


def _synthetic(cls: type, method_name: str, ident: str, source: str,
               description: str):
    record = Mutant(
        ident=ident,
        operator="IndVarRepReq",
        class_name=cls.__name__,
        method_name=method_name,
        variable="<synthetic>",
        occurrence=0,
        line=1,
        replacement="<synthetic>",
        description=description,
        mutated_source=source,
    )
    return rebuild_compiled_mutant(record, cls)


def synthetic_equivalents(cls: type, method_name: str):
    """Variants the three checks must catch, plus the expected statuses.

    Returns ``(mutants, expected)`` where ``expected`` maps ident →
    :class:`TriageStatus`.  The docstring and ``pass`` variants fall to
    check 1; a constant respelled ``(k + 1) - 1`` survives AST
    normalization but meets the original under CPython's compile-time
    folding (check 2); ``k + 1`` vs ``1 + k`` fold to the same changed
    constant — behaviour-changing, but identical to *each other*, so the
    second is grouped as redundant (check 3).
    """
    source = _method_source(cls, method_name)
    mutants = [
        _synthetic(cls, method_name, "S0001",
                   _docstring_variant(source), "docstring changed"),
        _synthetic(cls, method_name, "S0002",
                   _pass_variant(source), "dead pass appended"),
    ]
    expected = {
        "S0001": TriageStatus.AST_EQUIVALENT,
        "S0002": TriageStatus.AST_EQUIVALENT,
    }
    if _first_int_literal(ast.parse(source)) is not None:
        mutants.append(_synthetic(
            cls, method_name, "S0003",
            _rewrite_constant(source, lambda k: ast.BinOp(
                left=ast.BinOp(left=ast.Constant(k), op=ast.Add(),
                               right=ast.Constant(1)),
                op=ast.Sub(), right=ast.Constant(1),
            )),
            "constant respelled (k + 1) - 1",
        ))
        mutants.append(_synthetic(
            cls, method_name, "S0004",
            _rewrite_constant(source, lambda k: ast.BinOp(
                left=ast.Constant(k), op=ast.Add(), right=ast.Constant(1),
            )),
            "constant bumped: k + 1",
        ))
        mutants.append(_synthetic(
            cls, method_name, "S0005",
            _rewrite_constant(source, lambda k: ast.BinOp(
                left=ast.Constant(1), op=ast.Add(), right=ast.Constant(k),
            )),
            "constant bumped: 1 + k",
        ))
        expected["S0003"] = TriageStatus.BYTECODE_EQUIVALENT
        expected["S0004"] = TriageStatus.UNDECIDED  # the representative
        expected["S0005"] = TriageStatus.REDUNDANT
    return mutants, expected


# ---------------------------------------------------------------------------
# Normalizer units
# ---------------------------------------------------------------------------


class TestNormalizer:
    def test_docstring_stripped(self):
        a = 'def f(self):\n    """doc"""\n    return 1\n'
        b = 'def f(self):\n    """other"""\n    return 1\n'
        c = "def f(self):\n    return 1\n"
        assert normalized_source_text(a) == normalized_source_text(b)
        assert normalized_source_text(a) == normalized_source_text(c)

    def test_pass_stripped_but_lone_pass_kept(self):
        padded = "def f(self):\n    x = 1\n    pass\n    return x\n"
        clean = "def f(self):\n    x = 1\n    return x\n"
        assert normalized_source_text(padded) == normalized_source_text(clean)
        lone = "def f(self):\n    pass\n"
        assert "pass" in normalized_source_text(lone)

    def test_not_not_folded_in_test_position_only(self):
        folded = "def f(self, b):\n    if not not b:\n        return 1\n"
        plain = "def f(self, b):\n    if b:\n        return 1\n"
        assert normalized_source_text(folded) == normalized_source_text(plain)
        # As a *value*, `not not b` is bool(b), not b — never folded.
        value = "def f(self, b):\n    return not not b\n"
        bare = "def f(self, b):\n    return b\n"
        assert normalized_source_text(value) != normalized_source_text(bare)

    def test_integral_folds_gated_on_type_model(self):
        with_zero = "def f(self, x):\n    return x + 0\n"
        without = "def f(self, x):\n    return x\n"
        untyped = normalized_source_text(with_zero)
        assert untyped != normalized_source_text(without)
        typed = normalized_source_text(
            with_zero, integral_locals=frozenset({"x"})
        )
        assert typed == normalized_source_text(
            without, integral_locals=frozenset({"x"})
        )

    def test_double_negations_folded_for_integrals(self):
        for spelling in ("~~x", "--x", "+x"):
            src = f"def f(self, x):\n    return {spelling}\n"
            assert normalized_source_text(
                src, integral_locals=frozenset({"x"})
            ) == normalized_source_text(
                "def f(self, x):\n    return x\n",
                integral_locals=frozenset({"x"}),
            )

    def test_constant_types_stay_distinct_in_digest(self):
        digests = {
            normalized_bytecode_digest(f"def f(self):\n    return {lit}\n")
            for lit in ("1", "1.0", "True")
        }
        assert len(digests) == 3

    def test_compile_folding_meets_at_bytecode(self):
        a = normalized_bytecode_digest("def f(self):\n    return 2\n")
        b = normalized_bytecode_digest("def f(self):\n    return 1 + 1\n")
        assert a == b

    def test_unparseable_source_raises(self):
        with pytest.raises(MutationError):
            normalized_source_text("def f(:\n")


# ---------------------------------------------------------------------------
# StaticTriage value object
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def findmax_battery():
    synths, expected = synthetic_equivalents(CSortableObList, "FindMax")
    real, _ = generate_mutants(
        CSortableObList, ["FindMax"], type_model=OBLIST_TYPE_MODEL
    )
    return synths + real[:15], expected


@pytest.fixture(scope="module")
def findmax_triage(findmax_battery):
    battery, _ = findmax_battery
    return triage_mutants(
        CSortableObList, battery, type_model=OBLIST_TYPE_MODEL
    )


def findmax_suite(seed: int, limit: int = 50):
    suite = DriverGenerator(CSortableObList.__tspec__, seed=seed).generate()
    relevant = tuple(
        case for case in suite.cases
        if any(step.method_name in ("FindMax", "FindMin")
               for step in case.steps)
    )[:limit]
    return replace(suite, cases=relevant)


class TestStaticTriage:
    def test_expected_statuses(self, findmax_battery, findmax_triage):
        _, expected = findmax_battery
        for ident, status in expected.items():
            assert findmax_triage.status_of(ident) is status, ident

    def test_redundant_names_its_representative(self, findmax_triage):
        assert findmax_triage.representative_of("S0005") == "S0004"
        assert findmax_triage.groups()["S0004"] == ("S0005",)

    def test_aggregates_and_summary(self, findmax_triage):
        assert set(findmax_triage.ast_equivalent) == {"S0001", "S0002"}
        assert set(findmax_triage.bytecode_equivalent) == {"S0003"}
        assert set(findmax_triage.redundant) == {"S0005"}
        assert findmax_triage.skipped == 4
        assert "3 AST-equivalent" not in findmax_triage.summary()
        assert "2 AST-equivalent" in findmax_triage.summary()

    def test_is_skipped_vs_is_equivalent(self, findmax_triage):
        assert findmax_triage.is_equivalent("S0003")
        assert not findmax_triage.is_equivalent("S0005")  # redundant ≠ equiv
        assert findmax_triage.is_skipped("S0005")
        assert not findmax_triage.is_skipped("S0004")  # the representative runs

    def test_unknown_ident_is_undecided(self, findmax_triage):
        assert findmax_triage.status_of("ZZZZ") is TriageStatus.UNDECIDED
        assert findmax_triage.representative_of("ZZZZ") == ""

    def test_pickle_roundtrip(self, findmax_triage):
        clone = pickle.loads(pickle.dumps(findmax_triage))
        assert clone == findmax_triage
        assert clone.status_of("S0003") is TriageStatus.BYTECODE_EQUIVALENT


# ---------------------------------------------------------------------------
# The soundness property
# ---------------------------------------------------------------------------


def provider_binding():
    return TypeBinding(
        {"Provider": lambda rng: Provider("p", rng.randint(0, 99))}
    )


#: (label, class, mutated method, type model, needs product fixtures)
COMPONENTS = (
    ("oblist", CObList, "AddHead", OBLIST_TYPE_MODEL, False),
    ("sortable_oblist", CSortableObList, "FindMax", OBLIST_TYPE_MODEL, False),
    ("stack", BoundedStack, "Push", None, False),
    ("account", BankAccount, "Deposit", None, False),
    ("product", Product, "UpdateQty", None, True),
    ("warehouse", Product, "InsertProduct", None, True),
)


def component_suite(cls: type, method_name: str, seed: int, with_provider:
                    bool, limit: int = 40):
    bindings = provider_binding() if with_provider else None
    suite = DriverGenerator(
        cls.__tspec__, seed=seed, bindings=bindings
    ).generate()
    relevant = tuple(
        case for case in suite.cases
        if any(step.method_name == method_name for step in case.steps)
    )[:limit]
    if not relevant:
        relevant = suite.cases[:limit]
    return replace(suite, cases=relevant)


class TestSoundnessProperty:
    """No statically-equivalent mutant is ever killed by any suite."""

    @pytest.mark.parametrize(
        "label, cls, method, type_model, needs_db", COMPONENTS,
        ids=[row[0] for row in COMPONENTS],
    )
    def test_equivalents_survive_every_suite(self, label, cls, method,
                                             type_model, needs_db):
        synths, expected = synthetic_equivalents(cls, method)
        # The real battery spans all five IND operators (the generator's
        # default registry); statically-triaged members join the check.
        real, _ = generate_mutants(cls, [method], type_model=type_model)
        battery = synths + real
        triage = triage_mutants(cls, battery, type_model=type_model)
        for ident, status in expected.items():
            assert triage.status_of(ident) is status, (label, ident)
        groups = triage.groups()
        executed_idents = {
            entry.ident for entry in triage.entries
            if entry.status is not TriageStatus.UNDECIDED
        } | set(groups)
        subjects = [m for m in battery if m.ident in executed_idents]
        assert subjects, "property test must not run vacuously"

        setup = reset_database if needs_db else None
        for seed in SEEDS:
            suite = component_suite(cls, method, seed, needs_db)
            # Triage off: the proven-equivalent mutants really execute.
            run = MutationAnalysis(
                cls, suite, static_triage=False, setup=setup,
            ).analyze(subjects)
            by_ident = {o.mutant.ident: o for o in run.outcomes}
            for ident in executed_idents:
                if triage.is_equivalent(ident):
                    outcome = by_ident[ident]
                    assert not outcome.killed, (
                        f"{label}: statically-proven equivalent {ident} "
                        f"killed under seed {seed} ({outcome.reason})"
                    )
            # Redundancy classes: every member behaves exactly like its
            # executed representative, under every suite.
            for representative, members in groups.items():
                rep = by_ident[representative]
                for member in members:
                    got = by_ident[member]
                    assert got.killed == rep.killed, (label, member, seed)
                    assert got.reason is rep.reason, (label, member, seed)

    def test_real_table2_redundancy_class_is_sound(self):
        """The two genuine redundant pairs in the table2 battery (both
        ``k // 2`` spellings that fold to ``0``) verdict-match their
        representatives under a real suite."""
        mutants, _ = generate_mutants(
            CSortableObList,
            ("Sort1", "Sort2", "ShellSort", "FindMax", "FindMin"),
            type_model=OBLIST_TYPE_MODEL,
        )
        triage = triage_mutants(
            CSortableObList, mutants, type_model=OBLIST_TYPE_MODEL
        )
        groups = triage.groups()
        assert groups, "table2 battery lost its known redundancy classes"
        involved = set(groups) | {m for ms in groups.values() for m in ms}
        subjects = [m for m in mutants if m.ident in involved]
        suite = findmax_suite(SEEDS[0])
        run = MutationAnalysis(
            CSortableObList, suite, static_triage=False
        ).analyze(subjects)
        by_ident = {o.mutant.ident: o for o in run.outcomes}
        for representative, members in groups.items():
            for member in members:
                assert (by_ident[member].killed
                        == by_ident[representative].killed)
                assert by_ident[member].reason is by_ident[representative].reason


# ---------------------------------------------------------------------------
# Engine integration: verdict parity, zero dispatch, cache
# ---------------------------------------------------------------------------


class TestEngineParity:
    """Triage-on ≡ triage-off on every executed mutant, both engines."""

    @pytest.mark.parametrize("workers", (1, 2))
    def test_same_verdicts_modulo_triage(self, workers, findmax_battery):
        battery, _ = findmax_battery
        suite = findmax_suite(SEEDS[0])

        def run(static_triage: bool):
            if workers > 1:
                return ParallelMutationAnalysis(
                    CSortableObList, suite, workers=workers,
                    static_triage=static_triage,
                    triage_type_model=OBLIST_TYPE_MODEL,
                ).analyze(battery)
            return MutationAnalysis(
                CSortableObList, suite, static_triage=static_triage,
                triage_type_model=OBLIST_TYPE_MODEL,
            ).analyze(battery)

        with_triage = run(True)
        without = run(False)
        assert with_triage.triage is not None
        assert without.triage is None
        assert with_triage.same_verdicts(without)
        assert without.same_verdicts(with_triage)
        # Spell the contract out for the *dispatched* mutants: their
        # outcomes are bit-identical, not merely verdict-identical.
        for mine, theirs in zip(with_triage.outcomes, without.outcomes):
            if mine.dispatched:
                assert mine.comparable() == theirs.comparable()

    def test_parallel_equals_serial_with_triage(self, findmax_battery):
        battery, _ = findmax_battery
        suite = findmax_suite(SEEDS[1])
        serial = MutationAnalysis(
            CSortableObList, suite, static_triage=True,
            triage_type_model=OBLIST_TYPE_MODEL,
        ).analyze(battery)
        parallel = ParallelMutationAnalysis(
            CSortableObList, suite, workers=2, static_triage=True,
            triage_type_model=OBLIST_TYPE_MODEL,
        ).analyze(battery)
        assert parallel.same_results(serial)
        assert parallel.triage == serial.triage

    def test_synthesized_outcomes_annotated(self, findmax_battery):
        battery, _ = findmax_battery
        run = MutationAnalysis(
            CSortableObList, findmax_suite(SEEDS[0]), static_triage=True,
            triage_type_model=OBLIST_TYPE_MODEL,
        ).analyze(battery)
        by_ident = {o.mutant.ident: o for o in run.outcomes}
        for ident in ("S0001", "S0002"):
            assert by_ident[ident].static_status == "ast_equivalent"
            assert not by_ident[ident].killed
        assert by_ident["S0003"].static_status == "bytecode_equivalent"
        assert by_ident["S0005"].static_status == "redundant:S0004"
        assert by_ident["S0005"].killed == by_ident["S0004"].killed
        assert len(run.statically_equivalent) == 3
        assert run.dispatched_count == len(battery) - 4


class TestZeroDispatch:
    """Statically-triaged mutants are never dispatched, in either engine."""

    def test_serial_engine_never_executes_triaged(self, monkeypatch,
                                                  findmax_battery):
        battery, _ = findmax_battery
        executed = []
        original = MutationAnalysis.analyze_single

        def spy(self, mutant):
            executed.append(mutant.ident)
            return original(self, mutant)

        monkeypatch.setattr(MutationAnalysis, "analyze_single", spy)
        run = MutationAnalysis(
            CSortableObList, findmax_suite(SEEDS[0]), static_triage=True,
            triage_type_model=OBLIST_TYPE_MODEL,
        ).analyze(battery)
        skipped = {
            entry.ident for entry in run.triage.entries
            if entry.status is not TriageStatus.UNDECIDED
        }
        assert skipped == {"S0001", "S0002", "S0003", "S0005"}
        assert not set(executed) & skipped
        assert len(executed) == len(battery) - len(skipped)

    def test_parallel_engine_never_dispatches_triaged(self, findmax_battery):
        from repro.obs import MemorySink, Telemetry

        battery, _ = findmax_battery
        sink = MemorySink()
        telemetry = Telemetry(sink=sink)
        run = ParallelMutationAnalysis(
            CSortableObList, findmax_suite(SEEDS[0]), workers=2,
            static_triage=True, triage_type_model=OBLIST_TYPE_MODEL,
            telemetry=telemetry,
        ).analyze(battery)
        telemetry.close()
        dispatched = {
            event["attrs"]["mutant"] for event in sink.events
            if event["name"] == "parallel.dispatch"
        }
        skipped = {
            entry.ident for entry in run.triage.entries
            if entry.status is not TriageStatus.UNDECIDED
        }
        assert skipped == {"S0001", "S0002", "S0003", "S0005"}
        assert not dispatched & skipped
        assert dispatched == {m.ident for m in battery} - skipped


class TestTriageCache:
    def test_verdicts_cached_and_replayed(self, tmp_path, findmax_battery):
        battery, _ = findmax_battery
        cache = MutationOutcomeCache(tmp_path / "cache")
        cold = triage_mutants(
            CSortableObList, battery, type_model=OBLIST_TYPE_MODEL,
            cache=cache,
        )
        warm = triage_mutants(
            CSortableObList, battery, type_model=OBLIST_TYPE_MODEL,
            cache=cache,
        )
        assert warm == cold

    def test_store_lookup_roundtrip_and_corruption(self, tmp_path):
        cache = MutationOutcomeCache(tmp_path / "cache")
        key = triage_fingerprint(
            CSortableObList, "def f():\n    pass\n",
            "def f():\n    return 0\n", frozenset(),
        )
        assert cache.lookup_triage(key) is None
        cache.store_triage(key, "bytecode_equivalent", "digest123")
        assert cache.lookup_triage(key) == ("bytecode_equivalent", "digest123")
        # A corrupt payload (scribbled segment record) is a miss, never an
        # exception — the lookup-time CRC rejects it.
        location = cache._triage_index[key]
        with open(cache.segment_path, "r+b") as handle:
            handle.seek(location.offset + location.length - 8)
            handle.write(b"\x80damaged")
        assert cache.lookup_triage(key) is None

    def test_fingerprint_covers_fold_configuration(self):
        base = triage_fingerprint(CSortableObList, "a", "b", frozenset())
        typed = triage_fingerprint(
            CSortableObList, "a", "b", frozenset({"x"})
        )
        assert base != typed

    def test_cache_format_version_bumped_for_triage(self):
        assert CACHE_FORMAT_VERSION >= 3

    def test_outcome_cache_cold_warm_and_triage_off(self, tmp_path,
                                                    findmax_battery):
        """Warm replays every dispatched verdict; synthesized outcomes
        never enter the store, and entries are shared across the
        ``--no-static-triage`` boundary."""
        battery, _ = findmax_battery
        suite = findmax_suite(SEEDS[0], limit=25)
        cache = MutationOutcomeCache(tmp_path / "cache")

        def run(static_triage: bool):
            return MutationAnalysis(
                CSortableObList, suite, cache=cache,
                static_triage=static_triage,
                triage_type_model=OBLIST_TYPE_MODEL,
            ).analyze(battery)

        cold = run(True)
        assert cold.cache_stats.hits == 0
        warm = run(True)
        assert warm.same_results(cold)
        assert warm.cache_stats.misses == 0
        assert warm.cache_stats.hits == cold.dispatched_count
        # Triage off against the same store: the dispatched mutants all
        # hit (the experiment fingerprint excludes the triage flag); only
        # the formerly-synthesized ones execute.
        off = run(False)
        assert off.same_verdicts(cold)
        assert off.cache_stats.hits == cold.dispatched_count
        assert off.cache_stats.misses == len(battery) - cold.dispatched_count


# ---------------------------------------------------------------------------
# Score integration
# ---------------------------------------------------------------------------


class TestScoreIntegration:
    def test_static_equivalents_excluded_from_denominator(self,
                                                          findmax_battery):
        battery, _ = findmax_battery
        run = MutationAnalysis(
            CSortableObList, findmax_suite(SEEDS[0]), static_triage=True,
            triage_type_model=OBLIST_TYPE_MODEL,
        ).analyze(battery)
        table = build_score_table(run)
        assert table.total_static_equivalent == 3
        assert table.total_equivalent >= 3
        killed = table.total_killed
        assert table.total_raw_score == killed / table.total_generated
        assert table.total_score == killed / (
            table.total_generated - table.total_equivalent
        )
        assert table.total_score > table.total_raw_score
        rendered = table.format()
        assert "Score(raw)" in rendered
        assert "equivalents proven by static triage: 3" in rendered


# ---------------------------------------------------------------------------
# Findings report and CLI
# ---------------------------------------------------------------------------


class TestFindingsReport:
    def test_findings_cover_all_triaged_mutants(self, findmax_battery,
                                                findmax_triage):
        battery, _ = findmax_battery
        result = build_triage_findings(
            CSortableObList, battery, findmax_triage
        )
        by_rule = {}
        for finding in result.findings:
            by_rule.setdefault(finding.rule_id, []).append(finding)
        assert len(by_rule["MT001"]) == 2
        assert len(by_rule["MT002"]) == 1
        assert len(by_rule["MT003"]) == 1
        assert "S0004" in by_rule["MT003"][0].message  # names the rep

    def test_generation_drops_become_mt004(self, findmax_battery,
                                           findmax_triage):
        from repro.mutation.operators import ALL_OPERATORS

        operator = ALL_OPERATORS[-1]
        mutants, report = generate_mutants(
            CObList, ["AddHead"], operators=(operator, operator),
        )
        assert report.duplicates > 0
        assert len(report.dropped) == report.duplicates
        assert all(d.kind == "duplicate-source" for d in report.dropped)
        triage = triage_mutants(CObList, mutants)
        result = build_triage_findings(
            CObList, mutants, triage, generation=report
        )
        mt004 = [f for f in result.findings if f.rule_id == "MT004"]
        assert len(mt004) == report.duplicates

    def test_registry_has_all_four_rules(self):
        registry = triage_registry()
        assert {row["id"] for row in registry.table()} == {
            "MT001", "MT002", "MT003", "MT004"
        }

    def test_sarif_renders_with_triage_registry(self, findmax_battery,
                                                findmax_triage):
        import json

        from repro.analysis.report import render_sarif

        battery, _ = findmax_battery
        result = build_triage_findings(
            CSortableObList, battery, findmax_triage
        )
        sarif = json.loads(render_sarif(result, registry=triage_registry()))
        assert sarif["version"] == "2.1.0"
        rules = {
            rule["id"]
            for rule in sarif["runs"][0]["tool"]["driver"]["rules"]
        }
        assert rules == {"MT001", "MT002", "MT003", "MT004"}
        assert len(sarif["runs"][0]["results"]) == 4


class TestGenerationDropRecords:
    def test_textual_noop_recorded(self):
        import repro.mutation.operators.base as base

        class SelfReplace(base.MutationOperator):
            name = "IndVarRepLoc"

            def points(self, context):
                from repro.mutation.operators import IndVarRepReq

                for point in IndVarRepReq().points(context):
                    yield base.MutationPoint(
                        site=point.site,
                        replacement=ast.Name(id=point.site.variable,
                                             ctx=ast.Load()),
                        description="self replacement (no-op)",
                    )
                    return

        _, report = generate_mutants(
            CObList, ["AddHead"], operators=(SelfReplace(),)
        )
        assert report.duplicates == 1
        assert report.dropped[0].kind == "textual-noop"
        assert report.dropped[0].method == "AddHead"
        assert report.dropped[0].title()
