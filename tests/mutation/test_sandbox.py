"""Tests for bounded mutant execution."""

from __future__ import annotations

import pytest

from repro.core.errors import SandboxTimeout
from repro.mutation.sandbox import CallCountGuard, StepBudgetGuard


def finite_work(rounds):
    total = 0
    for _ in range(rounds):
        total += 1
    return total


def infinite_loop():
    while True:
        pass


class TestStepBudgetGuard:
    def test_normal_calls_pass_through(self):
        guard = StepBudgetGuard(budget=10_000)
        assert guard(finite_work, 100) == 100
        assert guard.timeouts == 0

    def test_infinite_loop_cut(self):
        guard = StepBudgetGuard(budget=5_000)
        with pytest.raises(SandboxTimeout, match="budget"):
            guard(infinite_loop)
        assert guard.timeouts == 1

    def test_budget_is_per_call(self):
        guard = StepBudgetGuard(budget=2_000)
        for _ in range(5):
            guard(finite_work, 100)  # each call gets a fresh budget
        assert guard.timeouts == 0

    def test_deterministic_cutoff(self):
        # Two identical runs must hit the budget identically (scores are
        # exactly reproducible, unlike wall-clock timeouts).
        def run_once():
            guard = StepBudgetGuard(budget=1_000)
            try:
                guard(finite_work, 10_000)
                return "finished"
            except SandboxTimeout:
                return "cut"

        assert run_once() == run_once() == "cut"

    def test_exceptions_propagate(self):
        guard = StepBudgetGuard(budget=10_000)

        def fail():
            raise ValueError("inner")

        with pytest.raises(ValueError, match="inner"):
            guard(fail)

    def test_trace_restored_after_call(self):
        import sys

        previous = sys.gettrace()
        guard = StepBudgetGuard(budget=1_000)
        guard(finite_work, 10)
        assert sys.gettrace() is previous

    def test_trace_restored_after_timeout(self):
        import sys

        previous = sys.gettrace()
        guard = StepBudgetGuard(budget=500)
        with pytest.raises(SandboxTimeout):
            guard(infinite_loop)
        assert sys.gettrace() is previous

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            StepBudgetGuard(budget=0)


class TestCallCountGuard:
    def test_counts_calls(self):
        guard = CallCountGuard()
        guard(finite_work, 1)
        guard(finite_work, 2)
        assert guard.calls == 2


class TestStepTimeoutsSurfacedInRun:
    """The per-mutant guard's ``timeouts`` counter must reach ``MutationRun``."""

    @staticmethod
    def _fixture(body: str):
        from repro.components import CSortableObList
        from repro.mutation.mutant import Mutant, rebuild_compiled_mutant

        record = Mutant(
            ident="L0001",
            operator="IndVarRepReq",
            class_name="CSortableObList",
            method_name="FindMax",
            variable="pos",
            occurrence=0,
            line=1,
            replacement="0",
            description="sandbox fixture mutant",
            mutated_source=body,
        )
        return rebuild_compiled_mutant(record, CSortableObList)

    @staticmethod
    def _findmax_suite():
        from dataclasses import replace

        from repro.components import CSortableObList
        from repro.generator.driver import DriverGenerator

        suite = DriverGenerator(CSortableObList.__tspec__, seed=7).generate()
        cases = tuple(
            case for case in suite.cases
            if any(step.method_name == "FindMax" for step in case.steps)
        )[:5]
        return replace(suite, cases=cases)

    def test_looping_mutant_timeouts_aggregate_into_run(self):
        from repro.components import CSortableObList
        from repro.mutation.analysis import MutationAnalysis

        mutant = self._fixture(
            "def FindMax(self):\n    while True:\n        pass\n"
        )
        run = MutationAnalysis(
            CSortableObList, self._findmax_suite(), step_budget=2_000
        ).analyze([mutant])
        assert run.outcomes[0].killed
        assert run.step_timeouts >= 1

    def test_clean_mutant_reports_zero_timeouts(self):
        from repro.components import CSortableObList
        from repro.mutation.analysis import MutationAnalysis

        mutant = self._fixture("def FindMax(self):\n    return None\n")
        run = MutationAnalysis(
            CSortableObList, self._findmax_suite()
        ).analyze([mutant])
        assert run.outcomes[0].killed
        assert run.step_timeouts == 0


class TestGuardWithExecutor:
    def test_looping_mutant_becomes_timeout_verdict(self):
        from repro.components import CSortableObList
        from repro.generator.testcase import TestCase, TestStep
        from repro.harness.executor import TestExecutor
        from repro.harness.outcomes import Verdict
        from repro.tfm.transactions import Transaction

        class Loopy(CSortableObList):
            def Sort1(self):
                while True:
                    pass

        case = TestCase(
            ident="TC0",
            transaction=Transaction(("n1", "n2")),
            steps=(
                TestStep("m1", "Loopy", (), is_construction=True),
                TestStep("m2", "Sort1", ()),
            ),
            class_name="Loopy",
        )
        executor = TestExecutor(Loopy, step_guard=StepBudgetGuard(budget=2_000))
        result = executor.run_case(case)
        assert result.verdict is Verdict.TIMEOUT
