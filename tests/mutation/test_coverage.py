"""Differential tests for coverage-guided mutant×case pruning.

The pruned≡unpruned guarantee, checked the same way the parallel engine's
serial-equivalence and the cache's warm≡cold are: for every seed and worker
count, a pruned run must pass ``same_results`` against the exhaustive run —
identical verdicts, kill reasons, killing cases, details and sandbox-timeout
counts — while executing strictly fewer test cases.

Soundness hinges on coverage being *dynamic*: ``Sort1``/``Sort2``/
``ShellSort`` reach ``IsSorted`` only through their postcondition check,
never through a test step, so a statically derived matrix would prune the
exact cases able to kill an ``IsSorted`` mutant.  The indirect-kill tests
below pin that down.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.components import CObList, CSortableObList, OBLIST_TYPE_MODEL
from repro.generator.driver import DriverGenerator
from repro.harness.oracles import experiment_oracle
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.cache import MutationOutcomeCache
from repro.mutation.coverage import CoverageMatrix, record_coverage
from repro.mutation.generate import generate_mutants
from repro.mutation.parallel import ParallelMutationAnalysis

SEEDS = (20010701, 7, 99)
WORKER_COUNTS = (1, 2)
MUTANT_COUNT = 15

SORT_METHODS = ("Sort1", "Sort2", "ShellSort")


def mixed_suite(seed: int, limit: int = 60):
    """A suite slice that mixes covering and non-covering cases."""
    suite = DriverGenerator(CSortableObList.__tspec__, seed=seed).generate()
    return replace(suite, cases=suite.cases[:limit])


def indirect_suite(seed: int, limit: int = 40):
    """Cases that run a sort but never name ``IsSorted`` in a step.

    These reach ``IsSorted`` *only* through the sorts' postcondition —
    the edge static step inspection cannot see.
    """
    suite = DriverGenerator(CSortableObList.__tspec__, seed=seed).generate()
    relevant = tuple(
        case for case in suite.cases
        if any(step.method_name in SORT_METHODS for step in case.steps)
        and not any(step.method_name == "IsSorted" for step in case.steps)
    )[:limit]
    assert relevant, "seed produced no sort-without-IsSorted cases"
    return replace(suite, cases=relevant)


def oracle():
    return experiment_oracle(CSortableObList.__tspec__)


#: Call counter for the builder below — module-level so the builder
#: function itself has a stable (picklable, fingerprintable) identity.
BUILD_CALLS = {"count": 0}


def counting_builder(mutant):
    BUILD_CALLS["count"] += 1
    return mutant.build_class()


@pytest.fixture(scope="module")
def findmax_mutants():
    mutants, _ = generate_mutants(
        CSortableObList, ["FindMax"], type_model=OBLIST_TYPE_MODEL
    )
    return mutants[:MUTANT_COUNT]


@pytest.fixture(scope="module")
def issorted_mutants():
    mutants, _ = generate_mutants(
        CSortableObList, ["IsSorted"], type_model=OBLIST_TYPE_MODEL
    )
    return mutants


class TestMatrixRecording:
    def test_dynamic_coverage_includes_stepped_methods(self):
        suite = mixed_suite(SEEDS[0], limit=30)
        reference, matrix = record_coverage(CSortableObList, suite)
        assert reference.all_passed
        assert len(matrix) == len(suite)
        # Plain processing/access methods only: constructor and destructor
        # steps use t-spec names ("CSortableObList"/"~…"), not the Python
        # method names frames carry.
        cut_methods = {
            method.name for method in CSortableObList.__tspec__.methods
            if hasattr(CSortableObList, method.name)
        }
        for case in suite.cases:
            stepped = {
                step.method_name for step in case.steps
                if step.method_name in cut_methods
            }
            # Dynamic coverage is a superset of the statically visible calls.
            assert stepped <= matrix.methods_of(case.ident)

    def test_indirect_postcondition_calls_are_covered(self):
        suite = indirect_suite(SEEDS[0], limit=20)
        _, matrix = record_coverage(CSortableObList, suite)
        for case in suite.cases:
            # No step names IsSorted, yet every case runs a sort whose
            # postcondition calls it — dynamic coverage must see that.
            assert "IsSorted" in matrix.methods_of(case.ident)
            assert matrix.covers(case.ident, "IsSorted")

    def test_inherited_base_methods_are_covered(self):
        # Experiment 2's shape: the executed class is the subclass, the
        # mutated methods live in the base.  Frames carry CObList code
        # objects; the MRO-wide code map must still resolve them.
        suite = mixed_suite(SEEDS[0], limit=30)
        _, matrix = record_coverage(CSortableObList, suite)
        base_methods = {
            name for name, attribute in vars(CObList).items()
            if callable(attribute) and not name.startswith("_")
        }
        covered_anywhere = set().union(
            *(matrix.methods_of(case.ident) for case in suite.cases)
        )
        assert covered_anywhere & base_methods

    def test_unknown_case_is_conservatively_covered(self):
        matrix = CoverageMatrix(
            class_name="X", methods_by_case={"c1": frozenset({"FindMax"})}
        )
        assert matrix.covers("never-recorded", "anything")
        assert not matrix.covers("c1", "FindMin")
        assert matrix.covers("c1", "FindMax")

    def test_traced_reference_identical_to_untraced(self):
        from repro.harness.executor import TestExecutor

        suite = mixed_suite(SEEDS[1], limit=25)
        traced, _ = record_coverage(CSortableObList, suite)
        untraced = TestExecutor(CSortableObList).run_suite(suite)
        assert traced == untraced

    def test_fingerprint_deterministic_and_content_sensitive(self):
        suite = mixed_suite(SEEDS[0], limit=20)
        _, first = record_coverage(CSortableObList, suite)
        _, second = record_coverage(CSortableObList, suite)
        assert first.fingerprint() == second.fingerprint()
        _, other = record_coverage(CSortableObList, mixed_suite(SEEDS[1], 20))
        assert first.fingerprint() != other.fingerprint()

    def test_density_observability(self):
        suite = mixed_suite(SEEDS[0], limit=30)
        _, matrix = record_coverage(CSortableObList, suite)
        density = matrix.density("FindMax")
        assert 0.0 <= density <= 1.0
        assert len(matrix.cases_covering("FindMax")) == round(
            density * len(matrix)
        )


class TestPrunedEqualsUnpruned:
    """3 seeds × workers {1, 2}: pruned ≡ exhaustive, modulo case counters."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_differential(self, seed, workers, findmax_mutants):
        suite = mixed_suite(seed)

        def run(prune):
            engine = (ParallelMutationAnalysis if workers > 1
                      else MutationAnalysis)
            return engine(
                CSortableObList, suite, oracle=oracle(), prune=prune,
                **({"workers": workers} if workers > 1 else {}),
            ).analyze(findmax_mutants)

        pruned = run(prune=True)
        exhaustive = run(prune=False)

        assert pruned.same_results(exhaustive)
        assert pruned.step_timeouts == exhaustive.step_timeouts
        for mine, theirs in zip(pruned.outcomes, exhaustive.outcomes):
            assert mine.killed == theirs.killed
            assert mine.reason is theirs.reason
            assert mine.killing_case == theirs.killing_case
            assert mine.killing_cases == theirs.killing_cases
            assert mine.detail == theirs.detail
        # The whole point: strictly fewer cases executed, the difference
        # fully accounted for by the skip counters.
        assert pruned.cases_skipped > 0
        assert pruned.cases_executed < exhaustive.cases_executed
        assert exhaustive.cases_skipped == 0

    def test_exhaustive_run_records_no_matrix(self, findmax_mutants):
        analysis = MutationAnalysis(
            CSortableObList, mixed_suite(SEEDS[0]), oracle=oracle(),
            prune=False,
        )
        assert analysis.coverage_matrix() is None
        run = analysis.analyze(findmax_mutants[:3])
        assert run.cases_skipped == 0


class TestIndirectKillSoundness:
    """Mutants in ``IsSorted``, reached only through postconditions.

    If pruning consulted static step names it would skip every case of
    ``indirect_suite`` for these mutants and the kills would vanish; the
    dynamic matrix keeps them.
    """

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_indirect_kills_survive_pruning(self, seed, workers,
                                            issorted_mutants):
        suite = indirect_suite(seed)

        def run(prune):
            engine = (ParallelMutationAnalysis if workers > 1
                      else MutationAnalysis)
            return engine(
                CSortableObList, suite, oracle=oracle(), prune=prune,
                **({"workers": workers} if workers > 1 else {}),
            ).analyze(issorted_mutants)

        pruned = run(prune=True)
        exhaustive = run(prune=False)
        assert pruned.same_results(exhaustive)
        # The suite must actually be able to kill through the indirect
        # edge, otherwise this test proves nothing.
        assert pruned.killed
        for mine, theirs in zip(pruned.outcomes, exhaustive.outcomes):
            assert mine.killed == theirs.killed
            assert mine.killing_case == theirs.killing_case


class TestCacheIsolation:
    """Pruned and unpruned entries never cross-contaminate one store."""

    def test_unpruned_entries_invisible_to_pruned_run(self, findmax_mutants,
                                                      tmp_path):
        suite = mixed_suite(SEEDS[0])
        cache = MutationOutcomeCache(tmp_path)
        cold_unpruned = MutationAnalysis(
            CSortableObList, suite, oracle=oracle(), cache=cache, prune=False,
        ).analyze(findmax_mutants)
        assert cold_unpruned.cache_stats.misses == len(findmax_mutants)

        cold_pruned = MutationAnalysis(
            CSortableObList, suite, oracle=oracle(), cache=cache, prune=True,
        ).analyze(findmax_mutants)
        # Different experiment fingerprint → no hits from the unpruned pass.
        assert cold_pruned.cache_stats.hits == 0
        assert cold_pruned.cache_stats.misses == len(findmax_mutants)
        assert cold_pruned.same_results(cold_unpruned)

    def test_warm_pruned_run_executes_nothing(self, findmax_mutants, tmp_path):
        suite = mixed_suite(SEEDS[0])
        cache = MutationOutcomeCache(tmp_path)
        BUILD_CALLS["count"] = 0
        cold = MutationAnalysis(
            CSortableObList, suite, oracle=oracle(),
            class_builder=counting_builder, cache=cache, prune=True,
        ).analyze(findmax_mutants)
        assert BUILD_CALLS["count"] == len(findmax_mutants)

        BUILD_CALLS["count"] = 0
        warm = MutationAnalysis(
            CSortableObList, suite, oracle=oracle(),
            class_builder=counting_builder, cache=cache, prune=True,
        ).analyze(findmax_mutants)
        assert BUILD_CALLS["count"] == 0  # verdicts replayed, nothing built
        assert warm.cache_stats.hits == len(findmax_mutants)
        assert warm.same_results(cold)
        # Replayed outcomes preserve the skip accounting of the cold run.
        for mine, theirs in zip(warm.outcomes, cold.outcomes):
            assert mine.cases_skipped == theirs.cases_skipped

    def test_parallel_warm_after_serial_pruned_cold(self, findmax_mutants,
                                                    tmp_path):
        suite = mixed_suite(SEEDS[1])
        cache = MutationOutcomeCache(tmp_path)
        cold = MutationAnalysis(
            CSortableObList, suite, oracle=oracle(), cache=cache, prune=True,
        ).analyze(findmax_mutants)
        warm = ParallelMutationAnalysis(
            CSortableObList, suite, oracle=oracle(), workers=2, cache=cache,
            prune=True,
        ).analyze(findmax_mutants)
        assert warm.cache_stats.hits == len(findmax_mutants)
        assert warm.same_results(cold)


class TestBaseClassMutantsThroughSubclass:
    """Experiment 2's shape: mutants in the base, coverage on the subclass."""

    def test_pruned_equals_unpruned_with_class_builder(self):
        from repro.mutation.mutant import rebuild_subclass

        mutants, _ = generate_mutants(
            CObList, ["RemoveHead"], ident_prefix="B",
            type_model=OBLIST_TYPE_MODEL,
        )
        suite = mixed_suite(SEEDS[0], limit=50)
        builder = (lambda m:
                   rebuild_subclass(CSortableObList, CObList, m.build_class()))

        def run(prune):
            return MutationAnalysis(
                CSortableObList, suite, class_builder=builder,
                oracle=oracle(), prune=prune,
            ).analyze(mutants[:12])

        pruned = run(prune=True)
        exhaustive = run(prune=False)
        assert pruned.same_results(exhaustive)
        assert pruned.killed  # base faults still visible through the subclass
