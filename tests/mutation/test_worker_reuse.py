"""Persistent-pool tests: warm workers survive mutants AND batteries.

The throughput claim is that back-to-back batteries (a table2/table3-style
slice) pay fork + battery-spec shipping once, not once per battery.  The
observable contract: worker-spawn counts are flat after the first battery,
an identical battery rerun ships no spec at all (the worker-side epoch
cache), a worker killed mid-battery is respawned and the replacement's
verdicts are serial-identical, and pools never leak state across battery
boundaries (run ids fence stale messages).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.generator.driver import DriverGenerator
from repro.harness.oracles import KillReason, experiment_oracle
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.generate import generate_mutants
from repro.mutation.parallel import (
    ParallelMutationAnalysis,
    WorkerPool,
    shared_worker_pool,
    shutdown_shared_pool,
)
from repro.obs import MemorySink, Telemetry

from .test_parallel import CRASH_SOURCE, hostile_mutant

SEEDS = (20010701, 7, 99)  # three batteries = a table2-style slice
MUTANT_COUNT = 10


def small_suite(seed: int):
    suite = DriverGenerator(CSortableObList.__tspec__, seed=seed).generate()
    relevant = tuple(
        case for case in suite.cases
        if any(step.method_name in ("FindMax", "FindMin")
               for step in case.steps)
    )[:30]
    return replace(suite, cases=relevant)


def oracle():
    return experiment_oracle(CSortableObList.__tspec__)


@pytest.fixture(scope="module")
def mutants():
    pool, _ = generate_mutants(
        CSortableObList, ["FindMax"], type_model=OBLIST_TYPE_MODEL
    )
    return pool[:MUTANT_COUNT]


def battery(mutants, seed, pool, *, telemetry=None, workers=2,
            batch_size=None):
    return ParallelMutationAnalysis(
        CSortableObList, small_suite(seed), oracle=oracle(),
        workers=workers, batch_size=batch_size, pool=pool,
        static_triage=False, telemetry=telemetry,
    ).analyze(mutants)


class TestPoolPersistence:
    """Spawn counts are flat after battery one."""

    def test_three_battery_slice_spawns_once(self, mutants):
        with WorkerPool() as pool:
            spawn_counts = []
            runs = []
            for seed in SEEDS:
                telemetry = Telemetry(sink=MemorySink())
                runs.append(battery(mutants, seed, pool,
                                    telemetry=telemetry))
                counters = telemetry.counters()
                spawn_counts.append(
                    counters.get("parallel.workers_spawned", 0)
                    + counters.get("parallel.respawns", 0)
                )
                telemetry.close()
            assert spawn_counts[0] == 2          # the pool is built once …
            assert spawn_counts[1:] == [0, 0]    # … and only once
            assert pool.size == 2                # workers alive at the end

            for seed, run in zip(SEEDS, runs):
                serial = MutationAnalysis(
                    CSortableObList, small_suite(seed), oracle=oracle(),
                    static_triage=False,
                ).analyze(mutants)
                assert run.same_results(serial)

    def test_identical_battery_rerun_ships_no_spec(self, mutants):
        with WorkerPool() as pool:
            first_telemetry = Telemetry(sink=MemorySink())
            first = battery(mutants, SEEDS[0], pool,
                            telemetry=first_telemetry)
            shipped = first_telemetry.counters().get(
                "parallel.battery_shipped", 0
            )
            first_telemetry.close()
            assert shipped == 2  # one battery spec per worker

            rerun_telemetry = Telemetry(sink=MemorySink())
            rerun = battery(mutants, SEEDS[0], pool,
                            telemetry=rerun_telemetry)
            reshipped = rerun_telemetry.counters().get(
                "parallel.battery_shipped", 0
            )
            rerun_telemetry.close()
            # The worker-side epoch cache recognized the identical spec.
            assert reshipped == 0
            assert rerun.same_results(first)

    def test_changed_battery_reconfigures_workers(self, mutants):
        with WorkerPool() as pool:
            battery(mutants, SEEDS[0], pool)
            telemetry = Telemetry(sink=MemorySink())
            battery(mutants, SEEDS[1], pool, telemetry=telemetry)  # new suite
            shipped = telemetry.counters().get("parallel.battery_shipped", 0)
            telemetry.close()
            assert shipped == 2  # different epoch: every worker reconfigured


class TestCrashRespawn:
    """A mid-battery crash respawns a worker whose verdicts stay serial."""

    def test_respawned_worker_finishes_battery_serial_identically(
            self, mutants):
        suite = small_suite(SEEDS[0])
        hostile = hostile_mutant("X0201", CRASH_SOURCE)
        battery_one = [hostile] + list(mutants[:6])
        with WorkerPool() as pool:
            telemetry = Telemetry(sink=MemorySink())
            run = ParallelMutationAnalysis(
                CSortableObList, suite, oracle=oracle(), workers=2,
                pool=pool, static_triage=False, telemetry=telemetry,
            ).analyze(battery_one)
            counters = telemetry.counters()
            telemetry.close()

            assert run.outcomes[0].reason is KillReason.WORKER_CRASH
            assert counters.get("parallel.respawns", 0) >= 1
            serial = MutationAnalysis(
                CSortableObList, suite, oracle=oracle(), static_triage=False,
            ).analyze(battery_one[1:])
            assert run.outcomes[1:] == serial.outcomes

    def test_crash_during_interleave_never_corrupts_the_other_run(
            self, mutants):
        # Run A carries a worker-killing mutant while run B executes
        # concurrently on the same pool: A's crash classification and
        # solo re-dispatches are fenced to A's run id, so B's verdicts
        # stay serial-identical and free of boundary kills.
        import threading

        suite = small_suite(SEEDS[0])
        hostile = hostile_mutant("X0203", CRASH_SOURCE)
        battery_a = [hostile] + list(mutants[:6])
        with WorkerPool() as pool:
            results = {}

            def drive_a():
                results["a"] = ParallelMutationAnalysis(
                    CSortableObList, suite, oracle=oracle(), workers=2,
                    pool=pool, static_triage=False,
                ).analyze(battery_a)

            def drive_b():
                results["b"] = battery(mutants, SEEDS[1], pool)

            threads = [threading.Thread(target=drive_a),
                       threading.Thread(target=drive_b)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert results["a"].outcomes[0].reason is KillReason.WORKER_CRASH
        serial_a = MutationAnalysis(
            CSortableObList, suite, oracle=oracle(), static_triage=False,
        ).analyze(battery_a[1:])
        assert results["a"].outcomes[1:] == serial_a.outcomes
        serial_b = MutationAnalysis(
            CSortableObList, small_suite(SEEDS[1]), oracle=oracle(),
            static_triage=False,
        ).analyze(mutants)
        assert results["b"].same_results(serial_b)
        assert not any(
            outcome.reason in (KillReason.WORKER_CRASH,
                               KillReason.WALL_TIMEOUT)
            for outcome in results["b"].outcomes
        )

    def test_next_battery_reuses_the_respawned_pool(self, mutants):
        suite = small_suite(SEEDS[0])
        hostile = hostile_mutant("X0202", CRASH_SOURCE)
        with WorkerPool() as pool:
            ParallelMutationAnalysis(
                CSortableObList, suite, oracle=oracle(), workers=2,
                pool=pool, static_triage=False,
            ).analyze([hostile] + list(mutants[:6]))

            # Battery two on the same pool: no new spawns, clean verdicts.
            telemetry = Telemetry(sink=MemorySink())
            rerun = battery(mutants, SEEDS[1], pool, telemetry=telemetry)
            counters = telemetry.counters()
            telemetry.close()
            assert counters.get("parallel.workers_spawned", 0) == 0
            assert counters.get("parallel.respawns", 0) == 0
            serial = MutationAnalysis(
                CSortableObList, small_suite(SEEDS[1]), oracle=oracle(),
                static_triage=False,
            ).analyze(mutants)
            assert rerun.same_results(serial)


class TestSharedPool:
    """Engines without an explicit pool share one process-wide pool."""

    def test_default_engines_share_the_module_pool(self, mutants):
        shutdown_shared_pool()
        try:
            first = battery(mutants, SEEDS[0], None)
            pool = shared_worker_pool()
            assert pool.size >= 2  # left warm by the first engine
            workers_before = list(pool.workers)
            second = battery(mutants, SEEDS[0], None)
            assert shared_worker_pool() is pool
            assert pool.workers[:2] == workers_before[:2]  # same processes
            assert second.same_results(first)
        finally:
            shutdown_shared_pool()

    def test_shutdown_closes_and_recreates(self, mutants):
        battery(mutants, SEEDS[0], None)
        pool = shared_worker_pool()
        shutdown_shared_pool()
        assert pool.closed
        assert pool.size == 0
        fresh = shared_worker_pool()
        assert fresh is not pool
        shutdown_shared_pool()

    def test_overlapping_analyses_share_one_pool(self, mutants):
        # Two engines driving the same pool at once (the pipelined sweep
        # does exactly this) interleave on its workers instead of one of
        # them silently falling back to a cold private pool — the
        # multi-tenant dispatcher fences runs by id and round-robins
        # their batches, so both finish with serial-identical verdicts
        # and the pool never grows past the largest single request.
        import threading

        with WorkerPool() as pool:
            runs = {}

            def drive(seed):
                runs[seed] = battery(mutants, seed, pool)

            threads = [threading.Thread(target=drive, args=(seed,))
                       for seed in SEEDS[:2]]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert pool.size <= 2  # shared capacity, not 2 + 2
            for seed in SEEDS[:2]:
                serial = MutationAnalysis(
                    CSortableObList, small_suite(seed), oracle=oracle(),
                    static_triage=False,
                ).analyze(mutants)
                assert runs[seed].same_results(serial)

    def test_interleaved_batteries_stay_within_the_battery_lru(self, mutants):
        # Interleaving two batteries must not thrash spec re-shipping:
        # each worker keeps a small LRU of shipped batteries, so running
        # A, B, A, B on one pool ships each spec to each worker at most
        # once (4 total for two batteries × two workers), not once per
        # alternation.
        shipped = 0
        with WorkerPool() as pool:
            for _ in range(2):  # A, B, A, B
                for seed in SEEDS[:2]:
                    telemetry = Telemetry(sink=MemorySink())
                    battery(mutants, seed, pool, telemetry=telemetry)
                    shipped += telemetry.counters().get(
                        "parallel.battery_shipped", 0
                    )
                    telemetry.close()
        assert shipped == 4  # two batteries × two workers, no re-ships


class TestPoolHygiene:
    """Dead idle workers are pruned, not classified."""

    def test_worker_killed_between_batteries_is_replaced(self, mutants):
        with WorkerPool() as pool:
            first = battery(mutants, SEEDS[0], pool)
            victim = pool.workers[0]
            victim.process.kill()
            victim.process.join()

            rerun = battery(mutants, SEEDS[0], pool)
            assert rerun.same_results(first)
            assert pool.size == 2
            assert all(worker.process.is_alive()
                       for worker in pool.workers)
