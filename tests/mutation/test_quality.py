"""Tests for test-quality estimation and quality-driven selection."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.generator.driver import DriverGenerator
from repro.harness.oracles import experiment_oracle
from repro.mutation.generate import generate_mutants
from repro.mutation.quality import (
    estimate_suite_quality,
    select_by_budget,
    select_by_quality,
    wilson_interval,
)


@pytest.fixture(scope="module")
def suite():
    return DriverGenerator(CSortableObList.__tspec__).generate()


@pytest.fixture(scope="module")
def small_suite(suite):
    relevant = tuple(
        case for case in suite.cases
        if any(step.method_name in ("FindMax", "FindMin") for step in case.steps)
    )[:80]
    return replace(suite, cases=relevant)


@pytest.fixture(scope="module")
def findmax_mutants():
    mutants, _ = generate_mutants(
        CSortableObList, ["FindMax"], type_model=OBLIST_TYPE_MODEL
    )
    return mutants


class TestWilsonInterval:
    def test_contains_proportion(self):
        low, high = wilson_interval(80, 100)
        assert low < 0.8 < high

    def test_bounds_clamped(self):
        low, high = wilson_interval(100, 100)
        assert high <= 1.0
        low, high = wilson_interval(0, 100)
        assert low >= 0.0

    def test_narrows_with_trials(self):
        narrow = wilson_interval(80, 1000)
        wide = wilson_interval(8, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_no_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_higher_confidence_is_wider(self):
        at_90 = wilson_interval(50, 100, confidence=0.90)
        at_99 = wilson_interval(50, 100, confidence=0.99)
        assert (at_99[1] - at_99[0]) > (at_90[1] - at_90[0])

    def test_unsupported_confidence(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 2, confidence=0.5)


class TestEstimate:
    def test_estimate_fields(self, suite):
        estimate = estimate_suite_quality(
            CSortableObList, suite, ["FindMax"],
            sample_size=25, seed=3,
            oracle=experiment_oracle(CSortableObList.__tspec__),
            type_model=OBLIST_TYPE_MODEL,
        )
        assert estimate.sampled == 25
        assert 0 <= estimate.killed <= 25
        assert estimate.low <= estimate.estimate <= estimate.high
        assert estimate.pool_size >= estimate.sampled
        assert "confidence" in estimate.summary()

    def test_sample_larger_than_pool_uses_pool(self, suite):
        estimate = estimate_suite_quality(
            CSortableObList, suite, ["FindMax"],
            sample_size=10_000, seed=3, type_model=OBLIST_TYPE_MODEL,
        )
        assert estimate.sampled == estimate.pool_size

    def test_deterministic_from_seed(self, small_suite):
        first = estimate_suite_quality(
            CSortableObList, small_suite, ["FindMax"],
            sample_size=15, seed=9, type_model=OBLIST_TYPE_MODEL,
        )
        second = estimate_suite_quality(
            CSortableObList, small_suite, ["FindMax"],
            sample_size=15, seed=9, type_model=OBLIST_TYPE_MODEL,
        )
        assert first == second


class TestSelection:
    def test_select_by_quality_meets_target(self, small_suite, findmax_mutants):
        reduced = select_by_quality(
            CSortableObList, small_suite, findmax_mutants[:30],
            target_quality=0.9,
        )
        assert reduced.quality_ratio >= 0.9
        assert len(reduced.suite) < len(small_suite)

    def test_full_quality_target(self, small_suite, findmax_mutants):
        reduced = select_by_quality(
            CSortableObList, small_suite, findmax_mutants[:30],
            target_quality=1.0,
        )
        assert reduced.kill_power == reduced.full_kill_power

    def test_select_by_budget_respects_budget(self, small_suite, findmax_mutants):
        reduced = select_by_budget(
            CSortableObList, small_suite, findmax_mutants[:30], max_cases=2
        )
        assert len(reduced.suite) <= 2
        assert reduced.kill_power > 0

    def test_bigger_budget_no_weaker(self, small_suite, findmax_mutants):
        small = select_by_budget(
            CSortableObList, small_suite, findmax_mutants[:30], max_cases=1
        )
        large = select_by_budget(
            CSortableObList, small_suite, findmax_mutants[:30], max_cases=5
        )
        assert large.kill_power >= small.kill_power

    def test_invalid_arguments(self, small_suite, findmax_mutants):
        with pytest.raises(ValueError):
            select_by_quality(CSortableObList, small_suite,
                              findmax_mutants[:5], target_quality=0.0)
        with pytest.raises(ValueError):
            select_by_budget(CSortableObList, small_suite,
                             findmax_mutants[:5], max_cases=0)

    def test_summary(self, small_suite, findmax_mutants):
        reduced = select_by_budget(
            CSortableObList, small_suite, findmax_mutants[:10], max_cases=2
        )
        assert "reduced suite" in reduced.summary()
