"""Tests for the five interface mutation operators and their machinery."""

from __future__ import annotations

import ast

import pytest

from repro.core.errors import MutationError
from repro.mutation.operators import (
    ALL_OPERATORS,
    IndVarBitNeg,
    IndVarRepExt,
    IndVarRepGlob,
    IndVarRepLoc,
    IndVarRepReq,
    MethodContext,
    REQUIRED_CONSTANTS,
)
from repro.mutation.operators.base import infer_attribute_universe, render_expr


class Machine:
    """Small subject with known L/G/E structure."""

    def __init__(self):
        self.fuel = 10
        self.speed = 0
        self.odometer = 0

    def drive(self, distance):
        # L = {steps, used}; parameters (distance) are interface variables.
        steps = 0
        used = distance // 2
        while steps < distance:
            steps = steps + 1
            self.odometer = self.odometer + 1
        self.fuel = self.fuel - used
        return steps

    def idle(self):
        burn = 1
        self.fuel = self.fuel - burn
        return burn


def context_for(method="drive"):
    return MethodContext(Machine, method)


class TestMethodContext:
    def test_locals_exclude_parameters(self):
        context = context_for()
        assert set(context.L) == {"steps", "used"}
        assert "distance" not in context.L

    def test_globals_are_used_attributes(self):
        context = context_for()
        assert set(context.G) == {"fuel", "odometer"}

    def test_externals_are_unused_attributes(self):
        context = context_for()
        assert set(context.E) == {"speed"}

    def test_use_sites_in_load_context_only(self):
        context = context_for()
        variables = [site.variable for site in context.use_sites]
        # 'steps' is read in the while test, the assignment RHS and the
        # return; 'used' is read once in the fuel update.
        assert variables.count("used") == 1
        assert variables.count("steps") >= 3

    def test_missing_method_rejected(self):
        with pytest.raises(MutationError):
            MethodContext(Machine, "absent")

    def test_inherited_method_rejected(self):
        class Sub(Machine):
            pass

        with pytest.raises(MutationError, match="defining class"):
            MethodContext(Sub, "drive")

    def test_attribute_universe(self):
        assert infer_attribute_universe(Machine) == {"fuel", "speed", "odometer"}

    def test_mutate_use_produces_fresh_tree(self):
        context = context_for()
        site = context.use_sites[0]
        module = context.mutate_use(site, ast.Constant(value=42))
        assert "42" in ast.unparse(module)
        # Original source untouched.
        assert "42" not in context.source

    def test_compile_mutant_returns_function(self):
        context = context_for("idle")
        site = context.use_sites[0]
        module = context.mutate_use(site, ast.Constant(value=5))
        function = context.compile_mutant(module)
        assert callable(function)
        machine = Machine()
        function(machine)  # the mutated body executes
        assert machine.fuel == 5  # burn use replaced by 5


class TestOperatorPoints:
    def test_bitneg_one_per_use(self):
        context = context_for()
        points = IndVarBitNeg().points(context)
        assert len(points) == len(context.use_sites)
        assert all("~" in render_expr(point.replacement) for point in points)

    def test_repglob_uses_times_globals(self):
        context = context_for()
        points = IndVarRepGlob().points(context)
        assert len(points) == len(context.use_sites) * len(context.G)
        rendered = {render_expr(point.replacement) for point in points}
        assert rendered == {"self.fuel", "self.odometer"}

    def test_reploc_skips_self_replacement(self):
        context = context_for()
        points = IndVarRepLoc().points(context)
        for point in points:
            assert render_expr(point.replacement) != point.site.variable

    def test_repext_uses_times_externals(self):
        context = context_for()
        points = IndVarRepExt().points(context)
        assert len(points) == len(context.use_sites) * len(context.E)
        assert {render_expr(p.replacement) for p in points} == {"self.speed"}

    def test_repreq_uses_times_constants(self):
        context = context_for()
        points = IndVarRepReq().points(context)
        assert len(points) == len(context.use_sites) * len(REQUIRED_CONSTANTS)

    def test_repreq_custom_constants(self):
        context = context_for()
        points = IndVarRepReq(constants=(None,)).points(context)
        assert len(points) == len(context.use_sites)

    def test_required_constants_match_table1(self):
        # RC contains NULL, MAXINT, MININT "and so on".
        assert None in REQUIRED_CONSTANTS
        assert 2_147_483_647 in REQUIRED_CONSTANTS
        assert -2_147_483_648 in REQUIRED_CONSTANTS

    def test_battery_names_match_table1(self):
        assert [operator.name for operator in ALL_OPERATORS] == [
            "IndVarBitNeg",
            "IndVarRepGlob",
            "IndVarRepLoc",
            "IndVarRepExt",
            "IndVarRepReq",
        ]

    def test_descriptions_are_informative(self):
        context = context_for()
        for operator in ALL_OPERATORS:
            for point in operator.points(context)[:3]:
                assert point.site.variable in point.description
