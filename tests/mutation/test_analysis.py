"""Tests for mutation analysis (kill classification, runs, aggregation)."""

from __future__ import annotations

import pytest

from repro.components import CObList, CSortableObList, OBLIST_TYPE_MODEL
from repro.generator.driver import DriverGenerator
from repro.harness.oracles import KillReason, experiment_oracle
from repro.mutation.analysis import MutationAnalysis, analyze_mutants
from repro.mutation.generate import generate_mutants
from repro.mutation.mutant import rebuild_subclass


@pytest.fixture(scope="module")
def findmax_mutants():
    mutants, _ = generate_mutants(
        CSortableObList, ["FindMax"], type_model=OBLIST_TYPE_MODEL
    )
    return mutants


@pytest.fixture(scope="module")
def small_suite():
    suite = DriverGenerator(CSortableObList.__tspec__).generate()
    from dataclasses import replace
    # Cases that actually visit FindMax/FindMin keep the run fast and the
    # kill power realistic.
    relevant = tuple(
        case for case in suite.cases
        if any(step.method_name in ("FindMax", "FindMin") for step in case.steps)
    )[:120]
    return replace(suite, cases=relevant)


class TestAnalysis:
    def test_reference_is_green(self, small_suite):
        analysis = MutationAnalysis(CSortableObList, small_suite)
        reference = analysis.reference_results()
        assert reference.all_passed

    def test_reference_cached(self, small_suite):
        analysis = MutationAnalysis(CSortableObList, small_suite)
        assert analysis.reference_results() is analysis.reference_results()

    def test_most_findmax_mutants_killed(self, small_suite, findmax_mutants):
        run = MutationAnalysis(
            CSortableObList, small_suite,
            oracle=experiment_oracle(CSortableObList.__tspec__),
        ).analyze(findmax_mutants)
        assert run.total == len(findmax_mutants)
        assert len(run.killed) > 0.5 * run.total

    def test_outcomes_carry_killing_case(self, small_suite, findmax_mutants):
        run = MutationAnalysis(CSortableObList, small_suite).analyze(findmax_mutants)
        for outcome in run.killed:
            assert outcome.killing_case
            assert outcome.reason is not KillReason.NONE
            assert outcome.cases_run >= 1
        for outcome in run.survivors:
            assert outcome.killing_case == ""
            # Pruning may skip non-covering cases, but every case must be
            # accounted for as either executed or provably irrelevant.
            assert outcome.cases_run + outcome.cases_skipped == len(small_suite)

    def test_stop_on_first_kill_short_circuits(self, small_suite, findmax_mutants):
        eager = MutationAnalysis(
            CSortableObList, small_suite, stop_on_first_kill=True
        ).analyze(findmax_mutants[:10])
        exhaustive = MutationAnalysis(
            CSortableObList, small_suite, stop_on_first_kill=False
        ).analyze(findmax_mutants[:10])
        for eager_outcome, full_outcome in zip(eager.outcomes, exhaustive.outcomes):
            assert eager_outcome.killed == full_outcome.killed
            if eager_outcome.killed:
                assert eager_outcome.killing_case == full_outcome.killing_case
                assert len(full_outcome.killing_cases) >= 1

    def test_kill_reason_counts(self, small_suite, findmax_mutants):
        run = MutationAnalysis(CSortableObList, small_suite).analyze(findmax_mutants)
        counts = run.kill_reason_counts()
        assert sum(counts.values()) == len(run.killed)
        assert "none" not in counts

    def test_aggregation_views(self, small_suite, findmax_mutants):
        run = MutationAnalysis(CSortableObList, small_suite).analyze(findmax_mutants)
        assert run.outcomes_for_method("FindMax") == run.outcomes
        assert run.outcomes_for_method("Sort1") == ()
        per_operator = sum(
            len(run.outcomes_for_operator(op))
            for op in ("IndVarBitNeg", "IndVarRepGlob", "IndVarRepLoc",
                       "IndVarRepExt", "IndVarRepReq")
        )
        assert per_operator == run.total

    def test_summary(self, small_suite, findmax_mutants):
        run = MutationAnalysis(CSortableObList, small_suite).analyze(findmax_mutants[:5])
        text = run.summary()
        assert "CSortableObList" in text and "mutants killed" in text

    def test_analyze_mutants_convenience(self, small_suite, findmax_mutants):
        run = analyze_mutants(CSortableObList, small_suite, findmax_mutants[:3])
        assert run.total == 3


class TestSubclassOverMutantBase:
    def test_rebuild_subclass(self):
        mutants, _ = generate_mutants(CObList, ["AddHead"])
        mutant_base = mutants[0].build_class()
        rebuilt = rebuild_subclass(CSortableObList, CObList, mutant_base)
        assert rebuilt.__name__ == "CSortableObList"
        assert rebuilt.__bases__ == (mutant_base,)
        assert rebuilt.AddHead is mutant_base.AddHead
        # Subclass methods preserved.
        instance = rebuilt()
        assert hasattr(instance, "Sort1")

    def test_rebuild_requires_direct_base(self):
        mutants, _ = generate_mutants(CObList, ["AddHead"])
        with pytest.raises(ValueError):
            rebuild_subclass(CObList, CSortableObList, mutants[0].build_class())

    def test_base_mutants_analyzed_through_subclass(self):
        mutants, _ = generate_mutants(
            CObList, ["RemoveHead"], type_model=OBLIST_TYPE_MODEL
        )
        suite = DriverGenerator(CSortableObList.__tspec__).generate()
        from dataclasses import replace
        small = replace(suite, cases=suite.cases[:80])
        builder = lambda m: rebuild_subclass(CSortableObList, CObList, m.build_class())
        run = MutationAnalysis(
            CSortableObList, small, class_builder=builder
        ).analyze(mutants[:20])
        assert run.total == 20
        assert run.killed  # some base faults visible through the subclass
