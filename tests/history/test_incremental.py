"""Tests for the incremental subclass test planning (sec. 3.4.2)."""

from __future__ import annotations

import pytest

from repro.components import OBLIST_SPEC, SORTABLE_OBLIST_SPEC
from repro.generator.driver import DriverGenerator
from repro.history.incremental import plan_subclass_testing
from repro.history.model import TransactionStatus
from repro.tfm.graph import TransactionFlowGraph


@pytest.fixture(scope="module")
def plan():
    parent_suite = DriverGenerator(OBLIST_SPEC).generate()
    return plan_subclass_testing(OBLIST_SPEC, SORTABLE_OBLIST_SPEC, parent_suite)


class TestDecisions:
    def test_every_subclass_transaction_decided(self, plan):
        from repro.tfm.transactions import enumerate_transactions

        graph = TransactionFlowGraph(SORTABLE_OBLIST_SPEC)
        expected = {t.ident for t in enumerate_transactions(graph)}
        decided = {d.transaction.ident for d in plan.decisions}
        assert decided == expected

    def test_new_transactions_name_their_triggers(self, plan):
        new_methods = {"Sort1", "Sort2", "ShellSort", "FindMax", "FindMin",
                       "IsSorted"}
        for decision in plan.decisions_with(TransactionStatus.NEW):
            assert decision.triggering_methods
            assert set(decision.triggering_methods) <= new_methods

    def test_reused_transactions_are_inherited_only(self, plan):
        graph = TransactionFlowGraph(SORTABLE_OBLIST_SPEC)
        new_methods = {"Sort1", "Sort2", "ShellSort", "FindMax", "FindMin",
                       "IsSorted"}
        for decision in plan.decisions_with(TransactionStatus.REUSED):
            involved = {
                method.name
                for node in decision.transaction.path
                for method in graph.node_methods(node)
            }
            assert not (involved & new_methods)

    def test_no_retest_for_experiment_models(self, plan):
        # Every inherited-only transaction of the subclass model exists in
        # the base model (shared node idents), so RETEST is empty here.
        assert plan.decisions_with(TransactionStatus.RETEST) == ()


class TestSuites:
    def test_full_suite_partitions_by_origin(self, plan):
        assert len(plan.full_suite) == (
            len(plan.full_suite.new_cases) + len(plan.full_suite.reused_cases)
        )
        assert plan.full_suite.new_cases
        assert plan.full_suite.reused_cases

    def test_executed_suite_is_new_cases_only(self, plan):
        executed_idents = {case.ident for case in plan.executed_suite.cases}
        new_idents = {case.ident for case in plan.full_suite.new_cases}
        assert executed_idents == new_idents

    def test_reused_cases_retagged(self, plan):
        for case in plan.full_suite.reused_cases:
            assert case.origin == "reused"
            assert case.class_name == "CSortableObList"

    def test_no_ident_collisions(self, plan):
        idents = [case.ident for case in plan.full_suite.cases]
        assert len(idents) == len(set(idents))

    def test_paper_scale(self, plan):
        # Paper: 233 new + 329 reused.  Same order of magnitude expected.
        stats = plan.stats()
        assert 150 <= stats["new_cases"] <= 600
        assert 150 <= stats["reused_cases"] <= 600

    def test_executed_suite_runs_green_on_subclass(self, plan):
        from repro.components import CSortableObList
        from repro.harness.executor import TestExecutor

        result = TestExecutor(CSortableObList).run_suite(plan.executed_suite)
        assert result.all_passed


class TestHistoryOutput:
    def test_history_matches_decisions(self, plan):
        assert len(plan.history) == len(plan.decisions)
        for decision in plan.decisions:
            entry = plan.history.entry_for(decision.transaction.ident)
            assert entry.status is decision.status

    def test_history_stats_match_plan(self, plan):
        history_stats = plan.history.stats()
        plan_stats = plan.stats()
        assert history_stats["new_cases"] == plan_stats["new_cases"]
        assert history_stats["reused_cases"] == plan_stats["reused_cases"]

    def test_summary_mentions_both_counts(self, plan):
        text = plan.summary()
        assert "new test cases" in text
        assert "reused" in text
