"""Tests for testing-history records."""

from __future__ import annotations

import pytest

from repro.history.model import HistoryEntry, TestHistory, TransactionStatus


def entry(ident, status, cases=("TC0",)):
    return HistoryEntry(
        transaction_ident=ident, status=status, case_idents=tuple(cases)
    )


class TestStatus:
    def test_must_run(self):
        assert TransactionStatus.NEW.must_run
        assert TransactionStatus.RETEST.must_run
        assert TransactionStatus.SELF.must_run
        assert not TransactionStatus.REUSED.must_run


class TestHistoryContainer:
    def test_add_and_lookup(self):
        history = TestHistory("Sub", parent_name="Base")
        history.add(entry("n1>n2", TransactionStatus.NEW))
        assert history.entry_for("n1>n2").status is TransactionStatus.NEW
        with pytest.raises(KeyError):
            history.entry_for("missing")

    def test_rejects_duplicate_transaction(self):
        history = TestHistory("Sub")
        history.add(entry("n1>n2", TransactionStatus.NEW))
        with pytest.raises(ValueError, match="already"):
            history.add(entry("n1>n2", TransactionStatus.REUSED))

    def test_views(self):
        history = TestHistory("Sub")
        history.add(entry("a", TransactionStatus.NEW, ("TC0", "TC1")))
        history.add(entry("b", TransactionStatus.REUSED, ("TC2",)))
        history.add(entry("c", TransactionStatus.RETEST, ("TC3",)))
        assert len(history.with_status(TransactionStatus.NEW)) == 1
        assert len(history.must_run_entries) == 2
        assert len(history.reused_entries) == 1

    def test_case_counts(self):
        history = TestHistory("Sub")
        history.add(entry("a", TransactionStatus.NEW, ("TC0", "TC1")))
        history.add(entry("b", TransactionStatus.REUSED, ("TC2",)))
        assert history.case_count() == 3
        assert history.case_count((TransactionStatus.NEW,)) == 2

    def test_stats_and_summary(self):
        history = TestHistory("Sub", parent_name="Base")
        history.add(entry("a", TransactionStatus.NEW, ("TC0", "TC1")))
        history.add(entry("b", TransactionStatus.REUSED, ("TC2",)))
        stats = history.stats()
        assert stats == {"transactions": 2, "new_cases": 2, "reused_cases": 1}
        text = history.summary()
        assert "Sub" in text and "Base" in text and "2 new" in text

    def test_iteration(self):
        history = TestHistory("Sub")
        history.add(entry("a", TransactionStatus.NEW))
        assert len(history) == 1
        assert [e.transaction_ident for e in history] == ["a"]


class TestSerialization:
    def test_roundtrip(self):
        history = TestHistory("Sub", parent_name="Base")
        history.add(entry("a", TransactionStatus.NEW, ("TC0",)))
        history.add(entry("b", TransactionStatus.REUSED, ("TC1", "TC2")))
        payload = history.as_dict()
        restored = TestHistory.from_dict(payload)
        assert restored.class_name == "Sub"
        assert restored.parent_name == "Base"
        assert restored.entries == history.entries

    def test_entry_roundtrip(self):
        original = entry("x", TransactionStatus.RETEST, ("TC9",))
        assert HistoryEntry.from_dict(original.as_dict()) == original
