"""Tests for history persistence."""

from __future__ import annotations

import pytest

from repro.history.model import HistoryEntry, TestHistory, TransactionStatus
from repro.history.store import HistoryStore


def sample_history(name="Sub", parent="Base"):
    history = TestHistory(name, parent_name=parent)
    history.add(HistoryEntry("n1>n2", TransactionStatus.NEW, ("TC0",)))
    history.add(HistoryEntry("n1>n3", TransactionStatus.REUSED, ("TC1", "TC2")))
    return history


class TestStore:
    def test_save_and_load(self, tmp_path):
        store = HistoryStore(str(tmp_path))
        path = store.save(sample_history())
        assert path.endswith("Sub.history.json")
        loaded = store.load("Sub")
        assert loaded.class_name == "Sub"
        assert loaded.entries == sample_history().entries

    def test_exists_and_delete(self, tmp_path):
        store = HistoryStore(str(tmp_path))
        assert not store.exists("Sub")
        store.save(sample_history())
        assert store.exists("Sub")
        assert store.delete("Sub")
        assert not store.exists("Sub")
        assert not store.delete("Sub")

    def test_class_names_sorted(self, tmp_path):
        store = HistoryStore(str(tmp_path))
        store.save(sample_history("Zeta", None))
        store.save(sample_history("Alpha", None))
        assert store.class_names() == ["Alpha", "Zeta"]

    def test_save_overwrites(self, tmp_path):
        store = HistoryStore(str(tmp_path))
        store.save(sample_history())
        replacement = TestHistory("Sub", parent_name="Base")
        store.save(replacement)
        assert len(store.load("Sub")) == 0

    def test_unusable_class_name(self, tmp_path):
        store = HistoryStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.save(TestHistory("///"))

    def test_creates_directory(self, tmp_path):
        nested = tmp_path / "a" / "b"
        HistoryStore(str(nested))
        assert nested.is_dir()


class TestLineage:
    def test_chain_walks_to_root(self, tmp_path):
        store = HistoryStore(str(tmp_path))
        store.save(sample_history("Base", None))
        store.save(sample_history("Middle", "Base"))
        store.save(sample_history("Leaf", "Middle"))
        chain = store.lineage("Leaf")
        assert [history.class_name for history in chain] == [
            "Leaf", "Middle", "Base",
        ]

    def test_chain_stops_at_missing_parent(self, tmp_path):
        store = HistoryStore(str(tmp_path))
        store.save(sample_history("Leaf", "Ghost"))
        chain = store.lineage("Leaf")
        assert [history.class_name for history in chain] == ["Leaf"]

    def test_chain_survives_cycles(self, tmp_path):
        store = HistoryStore(str(tmp_path))
        store.save(sample_history("A", "B"))
        store.save(sample_history("B", "A"))
        chain = store.lineage("A")
        assert len(chain) == 2  # terminates despite the cycle
