"""Tests for parent/subclass feature classification."""

from __future__ import annotations

import pytest

from repro.components import CObList, CSortableObList, OBLIST_SPEC, SORTABLE_OBLIST_SPEC
from repro.history.diff import (
    MethodChange,
    attribute_uses,
    classify_methods,
    classify_spec_methods,
)


class Base:
    def __init__(self):
        self.total = 0
        self.name = ""

    def add(self, n):
        self.total += n

    def reset(self):
        self.total = 0

    def label(self):
        return self.name


class Child(Base):
    def add(self, n):  # redefined
        self.total += 2 * n

    def double(self):  # new
        self.total *= 2


class TestRuntimeClassification:
    def test_new_redefined_inherited(self):
        diff = classify_methods(Base, Child)
        assert diff.change_for("double") is MethodChange.NEW
        assert diff.change_for("add") is MethodChange.REDEFINED
        assert diff.change_for("reset") is MethodChange.INHERITED
        assert diff.change_for("label") is MethodChange.INHERITED

    def test_modified_or_new_set(self):
        diff = classify_methods(Base, Child)
        assert diff.modified_or_new == {"double", "add"}

    def test_unrelated_classes_rejected(self):
        class Stranger:
            pass

        with pytest.raises(ValueError):
            classify_methods(Base, Stranger)

    def test_unknown_method_conservatively_new(self):
        diff = classify_methods(Base, Child)
        assert diff.change_for("ghost") is MethodChange.NEW

    def test_signature_change_flagged(self):
        class BadChild(Base):
            def add(self, n, factor):  # changes the argument list
                self.total += factor * n

        diff = classify_methods(Base, BadChild)
        assert any("argument list" in violation for violation in diff.violations)

    def test_multiple_inheritance_flagged(self):
        class Other:
            pass

        class Diamond(Base, Other):
            pass

        diff = classify_methods(Base, Diamond)
        assert any("multiple inheritance" in v for v in diff.violations)

    def test_attribute_refinement(self):
        # "In case an attribute is modified, the methods using it are
        # considered as modified" (sec. 3.4.2).
        diff = classify_methods(Base, Child, changed_attributes={"name"})
        assert diff.change_for("label") is MethodChange.REDEFINED
        assert diff.change_for("reset") is MethodChange.INHERITED

    def test_summary(self):
        text = classify_methods(Base, Child).summary()
        assert "Child vs Base" in text
        assert "1 new" in text


class TestAttributeUses:
    def test_reads_and_writes_collected(self):
        assert attribute_uses(Base, "add") == {"total"}
        assert attribute_uses(Base, "label") == {"name"}

    def test_missing_method(self):
        assert attribute_uses(Base, "nothing") == set()


class TestSpecClassification:
    def test_experiment_specs(self):
        diff = classify_spec_methods(OBLIST_SPEC, SORTABLE_OBLIST_SPEC)
        assert diff.violations == ()
        assert diff.modified_or_new == {
            "Sort1", "Sort2", "ShellSort", "FindMax", "FindMin", "IsSorted",
        }
        assert diff.change_for("AddHead") is MethodChange.INHERITED

    def test_constructors_excluded(self):
        diff = classify_spec_methods(OBLIST_SPEC, SORTABLE_OBLIST_SPEC)
        names = {name for name, _ in diff.changes}
        assert "CObList" not in names
        assert "CSortableObList" not in names
        assert "~CObList" not in names

    def test_wrong_superclass_flagged(self):
        diff = classify_spec_methods(SORTABLE_OBLIST_SPEC, OBLIST_SPEC)
        assert any("superclass" in violation for violation in diff.violations)

    def test_runtime_matches_spec_for_experiment_classes(self):
        spec_diff = classify_spec_methods(OBLIST_SPEC, SORTABLE_OBLIST_SPEC)
        runtime_diff = classify_methods(CObList, CSortableObList)
        spec_new = set(spec_diff.methods_with(MethodChange.NEW))
        runtime_new = set(runtime_diff.methods_with(MethodChange.NEW))
        assert spec_new == runtime_new
