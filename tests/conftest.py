"""Shared fixtures: pristine BIT state and ambient database per test."""

from __future__ import annotations

import pytest

from repro.bit import access
from repro.components import reset_database
from repro.core.rng import ReproRandom


@pytest.fixture(autouse=True)
def pristine_global_state():
    """Every test starts and ends with test mode off and an empty database.

    The BIT access control and the Product stock database are process-wide;
    leaking either between tests would make outcomes order-dependent.
    """
    access.reset()
    reset_database()
    yield
    access.reset()
    reset_database()


@pytest.fixture
def rng() -> ReproRandom:
    """A deterministic random source with the library's default seed."""
    return ReproRandom()


@pytest.fixture
def in_test_mode():
    """Run the test body with global test mode enabled."""
    with access.test_mode():
        yield
