"""The public API surface: everything advertised must resolve and work."""

from __future__ import annotations

import importlib

import pytest

import repro

SUBPACKAGES = (
    "repro.core",
    "repro.tspec",
    "repro.tfm",
    "repro.bit",
    "repro.generator",
    "repro.harness",
    "repro.history",
    "repro.mutation",
    "repro.components",
    "repro.interclass",
    "repro.experiments",
)


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_all_is_sorted_unique(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert getattr(module, name, None) is not None, (
                f"{module_name}.{name} is exported but missing"
            )

    def test_quickstart_snippet_from_docstring(self):
        """The module docstring's quickstart must actually run."""
        from repro import DriverGenerator, TestExecutor
        from repro.components import BoundedStack

        suite = DriverGenerator(BoundedStack.__tspec__).generate()
        result = TestExecutor(BoundedStack).run_suite(suite)
        assert result.all_passed

    def test_error_hierarchy_reachable_from_top(self):
        from repro import ContractViolation, InvariantViolation, ReproError

        assert issubclass(InvariantViolation, ContractViolation)
        assert issubclass(ContractViolation, ReproError)

    def test_no_accidental_private_exports(self):
        assert not [name for name in repro.__all__ if name.startswith("_")]
