"""Fixture components, each seeded with spec-drift defects for concat-lint.

Every rule class of the analyzer has at least one deliberate defect here:

* ``DriftInterface`` — interface drift (CL001–CL007);
* ``DriftModel``     — test-model drift (CL008, CL009);
* ``DriftContracts`` — contract predicates that cannot resolve (CL010);
* ``DriftBarren``    — an interface the IND operators cannot mutate (CL011).

The specs are intentionally *internally* inconsistent in places (dangling
node idents, unreachable nodes), so ``DriftModel``'s spec is built from raw
model records rather than through :class:`SpecBuilder` (which validates).
"""

from __future__ import annotations

from repro.bit.assertions import check_precondition, ensure
from repro.bit.builtintest import BuiltInTest
from repro.core.domains import RangeDomain, StringDomain
from repro.tspec.builder import SpecBuilder
from repro.tspec.model import (
    ClassSpec,
    EdgeSpec,
    MethodCategory,
    MethodSpec,
    NodeSpec,
)


class DriftInterface(BuiltInTest):
    """Interface drift: CL001, CL002, CL003, CL004, CL005, CL006, CL007."""

    def __init__(self):
        self.level = 0          # CL007: spec declares level in range [1, 10]
        self.mystery = 1        # CL005: public attribute, no declared domain

    def Pay(self, amount):      # CL003: spec passes two arguments
        total = amount + 0      # a local, so CL011 stays quiet on this class
        return total

    def Rename(self, text):     # CL004: spec names this parameter 'new_name'
        self._label = str(text)

    def Extra(self):            # CL001: not declared in the t-spec
        return 42


DriftInterface.__tspec__ = (
    SpecBuilder("DriftInterface")
    .attribute("level", RangeDomain(1, 10))
    .attribute("ghost", RangeDomain(0, 1))      # CL006: never assigned
    .constructor("DriftInterface")
    .method("Pay", [("a", RangeDomain(0, 9)), ("b", RangeDomain(0, 9))],
            category="update")
    .method("Rename", [("new_name", StringDomain(1, 8))], category="update")
    .method("Vanished", category="process")     # CL002: no implementation
    .destructor("~DriftInterface")
    .node("birth", ["DriftInterface"], start=True)
    .node("work", ["Pay", "Rename", "Vanished"])
    .node("death", ["~DriftInterface"])
    .edge("birth", "work")
    .edge("work", "work")
    .edge("work", "death")
    .edge("birth", "death")
    .build()
)


class DriftModel(BuiltInTest):
    """Test-model drift: CL008 (dangling ident), CL009 (unreachable/stuck)."""

    def __init__(self):
        self._state = 0

    def Step(self):
        advanced = self._state + 1
        self._state = advanced
        return advanced


DriftModel.__tspec__ = ClassSpec(
    name="DriftModel",
    methods=(
        MethodSpec(ident="c1", name="DriftModel",
                   category=MethodCategory.CONSTRUCTOR),
        MethodSpec(ident="p1", name="Step", category=MethodCategory.PROCESS),
        MethodSpec(ident="d1", name="~DriftModel",
                   category=MethodCategory.DESTRUCTOR),
    ),
    nodes=(
        NodeSpec(ident="birth", methods=("c1",), is_start=True),
        NodeSpec(ident="work", methods=("p1",)),
        NodeSpec(ident="ghost", methods=("x9",)),   # CL008: unknown ident
        NodeSpec(ident="orphan", methods=("p1",)),  # CL009: unreachable
        NodeSpec(ident="trap", methods=("p1",)),    # CL009: cannot terminate
        NodeSpec(ident="death", methods=("d1",)),
    ),
    edges=(
        EdgeSpec("birth", "work"),
        EdgeSpec("birth", "ghost"),
        EdgeSpec("ghost", "death"),
        EdgeSpec("work", "death"),
        EdgeSpec("work", "trap"),
        EdgeSpec("trap", "trap"),
        EdgeSpec("orphan", "death"),
    ),
)


class DriftContracts(BuiltInTest):
    """Contract drift: CL010 — predicates referencing undefined names."""

    def __init__(self):
        self._value = 0

    @ensure(lambda self, result: result <= missing_ceiling)  # noqa: F821 — CL010
    def Bump(self):
        step = 1
        check_precondition(lambda: step < unknown_limit)  # noqa: F821 — CL010
        self._value += step
        return self._value


DriftContracts.__tspec__ = (
    SpecBuilder("DriftContracts")
    .constructor("DriftContracts")
    .method("Bump", category="update", return_type="int")
    .destructor("~DriftContracts")
    .node("birth", ["DriftContracts"], start=True)
    .node("work", ["Bump"])
    .node("death", ["~DriftContracts"])
    .edge("birth", "work")
    .edge("work", "work")
    .edge("work", "death")
    .build()
)


class DriftBarren(BuiltInTest):
    """Mutation drift: CL011 — no locals anywhere for IND operators."""

    def __init__(self):
        self._flag = True

    def Ping(self):
        return 1


DriftBarren.__tspec__ = (
    SpecBuilder("DriftBarren")
    .constructor("DriftBarren")
    .method("Ping", category="access", return_type="int")
    .destructor("~DriftBarren")
    .node("birth", ["DriftBarren"], start=True)
    .node("work", ["Ping"])
    .node("death", ["~DriftBarren"])
    .edge("birth", "work")
    .edge("work", "death")
    .edge("birth", "death")
    .build()
)
