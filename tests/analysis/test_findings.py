"""Unit tests for the finding records, severity ladder, and emitters."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Finding, LintResult, Severity
from repro.analysis.report import render_json, render_sarif, summary_line


def make_finding(rule_id="CL001", severity=Severity.ERROR, line=10):
    return Finding(
        rule_id=rule_id,
        rule_name="spec-missing-method",
        severity=severity,
        path="src/thing.py",
        line=line,
        message="method 'X' is not declared",
        component="Thing",
    )


class TestSeverity:
    def test_from_keyword(self):
        assert Severity.from_keyword("ERROR") is Severity.ERROR
        assert Severity.from_keyword("info") is Severity.INFO

    def test_unknown_keyword(self):
        with pytest.raises(ValueError):
            Severity.from_keyword("fatal")

    def test_sarif_level_spelling(self):
        assert Severity.ERROR.sarif_level == "error"
        assert Severity.INFO.sarif_level == "note"


class TestFinding:
    def test_render_shape(self):
        text = make_finding().render()
        assert text.startswith("src/thing.py:10: [CL001 spec-missing-method]")
        assert "error:" in text

    def test_with_severity_relabels(self):
        relabeled = make_finding().with_severity(Severity.WARNING)
        assert relabeled.severity is Severity.WARNING
        assert relabeled.message == make_finding().message

    def test_suppression_carries_justification(self):
        suppressed = make_finding().with_suppression("known helper")
        assert suppressed.suppressed
        assert "known helper" in suppressed.render()
        assert suppressed.to_json()["justification"] == "known helper"

    def test_json_round_trip(self):
        record = make_finding().to_json()
        assert json.loads(json.dumps(record)) == record
        assert record["severity"] == "error"


class TestLintResult:
    def test_exit_codes(self):
        clean = LintResult()
        assert clean.exit_code() == 0
        warned = LintResult(findings=[make_finding(severity=Severity.WARNING)])
        assert warned.exit_code() == 0
        assert warned.exit_code(strict=True) == 1
        failed = LintResult(findings=[make_finding()])
        assert failed.exit_code() == 1

    def test_summary_line_counts(self):
        result = LintResult(
            findings=[make_finding(), make_finding(severity=Severity.WARNING)],
            suppressed=[make_finding()],
            components=2,
        )
        line = summary_line(result)
        assert "1 error" in line and "1 warning" in line
        assert "(1 suppressed)" in line

    def test_render_json_is_sorted_and_parseable(self):
        result = LintResult(findings=[make_finding()], components=1, files=1)
        payload = json.loads(render_json(result))
        assert payload["summary"]["components"] == 1
        assert payload["findings"][0]["rule_id"] == "CL001"

    def test_render_sarif_minimal_document(self):
        result = LintResult(findings=[make_finding()])
        document = json.loads(render_sarif(result))
        entry = document["runs"][0]["results"][0]
        assert entry["ruleId"] == "CL001"
        assert entry["level"] == "error"
