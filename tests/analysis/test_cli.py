"""CLI tests: exit codes, output formats, and the acceptance criterion —
clean on shipped components, non-zero with the expected rule ids on the
drift-seeded fixture."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.cli import main
from repro.analysis.runner import default_component_target

FIXTURE = Path(__file__).parent / "fixtures" / "drift_component.py"
REPO_ROOT = Path(__file__).resolve().parents[2]


class TestExitCodes:
    def test_shipped_components_exit_zero(self, capsys):
        assert main([default_component_target()]) == 0
        assert "0 errors" in capsys.readouterr().out

    def test_default_target_is_shipped_components(self, capsys):
        assert main([]) == 0
        assert "6 components" in capsys.readouterr().out

    def test_fixture_exits_nonzero(self, capsys):
        assert main([str(FIXTURE)]) == 1
        output = capsys.readouterr().out
        for rule_id in ("CL001", "CL002", "CL003", "CL007", "CL008",
                        "CL009", "CL010"):
            assert rule_id in output

    def test_warnings_pass_unless_strict(self, capsys):
        assert main([str(FIXTURE), "--select", "CL004"]) == 0
        assert main([str(FIXTURE), "--select", "CL004", "--strict"]) == 1
        capsys.readouterr()

    def test_unresolvable_target_exits_two(self, capsys):
        assert main(["no/such/thing.py"]) == 2
        capsys.readouterr()

    def test_bad_severity_spec_exits_two(self, capsys):
        assert main([str(FIXTURE), "--severity", "nonsense"]) == 2
        capsys.readouterr()


class TestFormats:
    def test_json_payload(self, capsys):
        assert main([str(FIXTURE), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "concat-lint"
        assert payload["summary"]["errors"] > 0
        rule_ids = {finding["rule_id"] for finding in payload["findings"]}
        assert rule_ids == {f"CL{index:03d}" for index in range(1, 12)}

    def test_json_on_clean_target(self, capsys):
        assert main([default_component_target(), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["summary"]["suppressed"] == 3

    def test_sarif_document(self, capsys):
        assert main([str(FIXTURE), "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "concat-lint"
        assert len(run["tool"]["driver"]["rules"]) == 11
        assert run["results"]
        for entry in run["results"]:
            location = entry["locations"][0]["physicalLocation"]
            assert location["region"]["startLine"] >= 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        output = capsys.readouterr().out
        for index in range(1, 12):
            assert f"CL{index:03d}" in output

    def test_disable_flag(self, capsys):
        code = main([str(FIXTURE), "--disable",
                     "CL001,CL002,CL003,CL007,CL008,CL009,CL010"])
        assert code == 0  # only warnings remain
        capsys.readouterr()

    def test_dotted_module_target(self, capsys):
        assert main(["repro.components.stack", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["components"] == 1


class TestModuleInvocation:
    """End-to-end: the real ``python -m repro.analysis`` process."""

    def _run(self, *arguments):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *arguments],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )

    def test_process_clean_on_components(self):
        completed = self._run("src/repro/components", "--format", "json")
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(completed.stdout)
        assert payload["summary"]["errors"] == 0

    def test_process_fails_on_fixture(self):
        completed = self._run(str(FIXTURE))
        assert completed.returncode == 1
        assert "CL00" in completed.stdout
