"""Rule-level tests: every concat-lint rule fires on its seeded defect, and
the shipped components come back clean."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    LintConfig,
    Severity,
    default_registry,
    lint_paths,
    lint_units,
    units_from_module,
)
from repro.analysis.loader import load_module
from repro.analysis.runner import default_component_target

FIXTURE = Path(__file__).parent / "fixtures" / "drift_component.py"


@pytest.fixture(scope="module")
def fixture_result():
    module = load_module(FIXTURE)
    units = units_from_module(module)
    assert len(units) == 4  # the four Drift* classes
    return lint_units(units)


def fired(result, rule_id):
    return [f for f in result.findings if f.rule_id == rule_id]


class TestSeededDefects:
    def test_every_rule_fires(self, fixture_result):
        expected = {f"CL{index:03d}" for index in range(1, 12)}
        assert {f.rule_id for f in fixture_result.findings} == expected

    def test_cl001_extra_method(self, fixture_result):
        (finding,) = fired(fixture_result, "CL001")
        assert finding.component == "DriftInterface"
        assert "'Extra'" in finding.message
        assert finding.severity is Severity.ERROR

    def test_cl002_vanished_method(self, fixture_result):
        (finding,) = fired(fixture_result, "CL002")
        assert "'Vanished'" in finding.message

    def test_cl003_arity_mismatch(self, fixture_result):
        (finding,) = fired(fixture_result, "CL003")
        assert "Pay" in finding.message
        assert "2 argument(s)" in finding.message

    def test_cl004_parameter_name(self, fixture_result):
        (finding,) = fired(fixture_result, "CL004")
        assert "'new_name'" in finding.message and "'text'" in finding.message
        assert finding.severity is Severity.WARNING

    def test_cl005_undeclared_public_attribute(self, fixture_result):
        (finding,) = fired(fixture_result, "CL005")
        assert "'mystery'" in finding.message

    def test_cl006_never_assigned_attribute(self, fixture_result):
        (finding,) = fired(fixture_result, "CL006")
        assert "'ghost'" in finding.message

    def test_cl007_domain_violating_literal(self, fixture_result):
        (finding,) = fired(fixture_result, "CL007")
        assert "'level'" in finding.message and "range [1, 10]" in finding.message

    def test_cl008_dangling_node_ident(self, fixture_result):
        (finding,) = fired(fixture_result, "CL008")
        assert "'x9'" in finding.message

    def test_cl009_unreachable_and_stuck(self, fixture_result):
        findings = fired(fixture_result, "CL009")
        messages = " | ".join(f.message for f in findings)
        assert "orphan" in messages and "unreachable" in messages
        assert "trap" in messages and "never terminate" in messages

    def test_cl010_both_contract_sites(self, fixture_result):
        findings = fired(fixture_result, "CL010")
        names = {name for f in findings for name in ("missing_ceiling",
                                                     "unknown_limit")
                 if name in f.message}
        assert names == {"missing_ceiling", "unknown_limit"}

    def test_cl011_barren_interface(self, fixture_result):
        (finding,) = fired(fixture_result, "CL011")
        assert finding.component == "DriftBarren"

    def test_findings_have_real_locations(self, fixture_result):
        for finding in fixture_result.findings:
            assert finding.path.endswith("drift_component.py")
            assert finding.line >= 1

    def test_result_fails_the_run(self, fixture_result):
        assert fixture_result.errors > 0
        assert fixture_result.exit_code() == 1


class TestShippedComponentsClean:
    def test_no_active_findings(self):
        result = lint_paths([default_component_target()])
        assert result.findings == []
        assert result.exit_code(strict=True) == 0

    def test_known_suppressions_carry_justifications(self):
        result = lint_paths([default_component_target()])
        assert len(result.suppressed) == 3
        assert all(f.justification for f in result.suppressed)
        assert {f.rule_id for f in result.suppressed} == {"CL001", "CL011"}

    def test_component_census(self):
        result = lint_paths([default_component_target()])
        assert result.components == 6  # the six shipped __tspec__ classes


class TestConfig:
    def test_disable_by_id(self):
        module = load_module(FIXTURE)
        units = units_from_module(module)
        result = lint_units(units, LintConfig.build(disable=["CL001"]))
        assert not fired(result, "CL001")
        assert fired(result, "CL002")

    def test_disable_by_slug(self):
        module = load_module(FIXTURE)
        units = units_from_module(module)
        result = lint_units(
            units, LintConfig.build(disable=["spec-missing-method"]))
        assert not fired(result, "CL001")

    def test_select_runs_only_listed_rules(self):
        module = load_module(FIXTURE)
        units = units_from_module(module)
        result = lint_units(units, LintConfig.build(select=["CL004"]))
        assert {f.rule_id for f in result.findings} == {"CL004"}

    def test_severity_override(self):
        module = load_module(FIXTURE)
        units = units_from_module(module)
        result = lint_units(
            units, LintConfig.build(severities={"CL004": "error"}))
        (finding,) = fired(result, "CL004")
        assert finding.severity is Severity.ERROR

    def test_unknown_severity_keyword_rejected(self):
        with pytest.raises(ValueError):
            LintConfig.build(severities={"CL004": "catastrophic"})


class TestRegistry:
    def test_eleven_rules_with_stable_ids(self):
        registry = default_registry()
        assert len(registry) == 11
        assert [row["id"] for row in registry.table()] == [
            f"CL{index:03d}" for index in range(1, 12)
        ]

    def test_lookup_by_either_key(self):
        registry = default_registry()
        assert registry.by_key("CL001") is registry.by_key("spec-missing-method")

    def test_duplicate_registration_rejected(self):
        registry = default_registry()
        with pytest.raises(ValueError):
            registry.add(registry.by_key("CL001"))
