"""Differential proof: telemetry observes, never decides.

The tentpole guarantee of :mod:`repro.obs` — instrumented runs produce
verdicts field-for-field identical (``MutationRun.same_results``) to plain
runs — checked the same way the cache's cached≡fresh and the parallel
engine's serial-equivalence are: across seeds × worker counts × cache
temperatures.  Plus the "off means off" contract: a default
(un-instrumented) analysis must never reach the emitter at all.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.generator.driver import DriverGenerator
from repro.harness.oracles import experiment_oracle
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.cache import MutationOutcomeCache
from repro.mutation.generate import generate_mutants
from repro.mutation.parallel import ParallelMutationAnalysis
from repro.obs import MemorySink, Telemetry, validate_event

SEEDS = (20010701, 7, 99)
WORKER_COUNTS = (1, 2)
MUTANT_COUNT = 20


def small_suite(seed: int):
    """A compact suite whose cases all visit the mutated methods."""
    suite = DriverGenerator(CSortableObList.__tspec__, seed=seed).generate()
    relevant = tuple(
        case for case in suite.cases
        if any(step.method_name in ("FindMax", "FindMin")
               for step in case.steps)
    )[:50]
    return replace(suite, cases=relevant)


def oracle():
    return experiment_oracle(CSortableObList.__tspec__)


@pytest.fixture(scope="module")
def findmax_mutants():
    mutants, _ = generate_mutants(
        CSortableObList, ["FindMax"], type_model=OBLIST_TYPE_MODEL
    )
    return mutants[:MUTANT_COUNT]


@pytest.fixture(scope="module")
def plain_runs(findmax_mutants):
    """Per seed: the un-instrumented, cache-less baseline run."""
    return {
        seed: MutationAnalysis(
            CSortableObList, small_suite(seed), oracle=oracle()
        ).analyze(findmax_mutants)
        for seed in SEEDS
    }


class TestSameResultsOnVsOff:
    """3 seeds × workers {1, 2} × cache {cold, warm}: observed ≡ plain."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_traced_run_matches_plain(self, seed, workers, findmax_mutants,
                                      plain_runs, tmp_path):
        plain = plain_runs[seed]
        cache = MutationOutcomeCache(tmp_path / "outcomes",
                                     telemetry=None)

        def run(telemetry, cache_obj):
            engine = (ParallelMutationAnalysis if workers > 1
                      else MutationAnalysis)
            return engine(
                CSortableObList, small_suite(seed), oracle=oracle(),
                cache=cache_obj, telemetry=telemetry,
                **({"workers": workers} if workers > 1 else {}),
            ).analyze(findmax_mutants)

        # Cold cache, telemetry on: every mutant executes under spans.
        sink_cold = MemorySink()
        cold = run(Telemetry(sink=sink_cold), cache)
        assert cold.same_results(plain)
        assert cold.cache_stats.misses == len(findmax_mutants)

        # Warm cache, telemetry on: every verdict replays under spans.
        sink_warm = MemorySink()
        warm = run(Telemetry(sink=sink_warm), cache)
        assert warm.same_results(plain)
        assert warm.same_results(cold)
        assert warm.cache_stats.hits == len(findmax_mutants)

        # The traces themselves are schema-conformant and non-trivial.
        for sink in (sink_cold, sink_warm):
            assert sink.events
            for event in sink.events:
                validate_event(event)
        spans = [e["name"] for e in sink_cold.events if e["kind"] == "span"]
        if workers == 1:
            assert spans.count("analysis.mutant") == len(findmax_mutants)
        else:
            # Parent-only instrumentation: one run span, one task event
            # per mutant executed in a worker (workers stay untraced).
            assert "parallel.run" in spans
            tasks = [e for e in sink_cold.events
                     if e["kind"] == "point" and e["name"] == "parallel.task"]
            assert len(tasks) == len(findmax_mutants)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mutant_spans_carry_verdict_attrs(self, seed, findmax_mutants,
                                              plain_runs):
        """Span attributes mirror the run's outcomes exactly."""
        sink = MemorySink()
        observed = MutationAnalysis(
            CSortableObList, small_suite(seed), oracle=oracle(),
            telemetry=Telemetry(sink=sink),
        ).analyze(findmax_mutants)
        assert observed.same_results(plain_runs[seed])
        by_ident = {
            event["attrs"]["mutant"]: event["attrs"]
            for event in sink.events
            if event["kind"] == "span" and event["name"] == "analysis.mutant"
        }
        for outcome in observed.outcomes:
            attrs = by_ident[outcome.mutant.ident]
            assert attrs["killed"] == outcome.killed
            assert attrs["reason"] == outcome.reason.value
            assert attrs["cases_run"] == outcome.cases_run
            assert attrs["cases_skipped"] == outcome.cases_skipped


class TestZeroEventsWhenDisabled:
    """A default (telemetry-less) analysis never reaches the emitter."""

    def test_default_analysis_emits_nothing(self, findmax_mutants,
                                            monkeypatch, tmp_path):
        def explode(self, event):
            raise AssertionError("disabled telemetry emitted an event")

        monkeypatch.setattr(Telemetry, "_emit", explode)
        run = MutationAnalysis(
            CSortableObList, small_suite(SEEDS[0]), oracle=oracle(),
            cache=MutationOutcomeCache(tmp_path / "outcomes"),
        ).analyze(findmax_mutants[:5])
        assert len(run.outcomes) == 5
