"""Unit tests for the run-telemetry layer (spans, sinks, schema, CLI)."""

from __future__ import annotations

import io
import json
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.obs import (
    NULL_TELEMETRY,
    JsonlSink,
    MemorySink,
    NullTelemetry,
    SCHEMA_VERSION,
    SchemaError,
    Telemetry,
    coalesce,
    render_summary,
    validate_event,
    validate_jsonl,
)
from repro.obs.__main__ import main as obs_main


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, start: float = 100.0, step: float = 0.25):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestSpans:
    def test_span_duration_from_monotonic_clock(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, clock=FakeClock(step=0.25))
        with telemetry.span("work", job="j1"):
            pass
        [event] = sink.events
        assert event["kind"] == "span"
        assert event["name"] == "work"
        assert event["dur"] == pytest.approx(0.25)
        assert event["t"] == pytest.approx(0.25)  # one read for the origin
        assert event["attrs"] == {"job": "j1"}

    def test_mid_flight_attributes_chainable(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, clock=FakeClock())
        with telemetry.span("work") as span:
            assert span.set("killed", True).set("reason", "state") is span
        assert sink.events[0]["attrs"] == {"killed": True, "reason": "state"}

    def test_exception_recorded_and_reraised(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, clock=FakeClock())
        with pytest.raises(ValueError):
            with telemetry.span("work"):
                raise ValueError("boom")
        assert sink.events[0]["attrs"]["error"] == "ValueError"

    def test_nonscalar_attrs_coerced_to_strings(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, clock=FakeClock())
        with telemetry.span("work", payload=[1, 2]):
            pass
        assert sink.events[0]["attrs"]["payload"] == "[1, 2]"
        validate_event(sink.events[0])

    def test_span_stats_aggregate(self):
        telemetry = Telemetry(clock=FakeClock(step=1.0))
        for _ in range(3):
            with telemetry.span("work"):
                pass
        stats = telemetry.span_stats()["work"]
        assert stats["count"] == 3
        assert stats["total_s"] == pytest.approx(3.0)
        assert stats["mean_s"] == pytest.approx(1.0)
        assert stats["max_s"] == pytest.approx(1.0)


class TestCountersAndEvents:
    def test_counters_only_emitted_at_close(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, clock=FakeClock())
        telemetry.count("hits")
        telemetry.count("hits", 4)
        assert sink.events == []  # no per-increment traffic
        telemetry.close()
        [event] = sink.events
        assert event["kind"] == "counters"
        assert event["counters"] == {"hits": 5}

    def test_point_event(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, clock=FakeClock())
        telemetry.event("respawn", worker=3)
        [event] = sink.events
        assert event["kind"] == "point"
        assert event["attrs"] == {"worker": 3}

    def test_close_is_idempotent_and_closes_sink(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, clock=FakeClock())
        telemetry.close()
        telemetry.close()
        assert len(sink.events) == 1
        assert sink.closed

    def test_every_emitted_event_validates(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, clock=FakeClock())
        with telemetry.span("s", a=1):
            pass
        telemetry.event("p", b="x")
        telemetry.count("c")
        telemetry.close()
        for event in sink.events:
            validate_event(event)
        assert telemetry.events_emitted == len(sink.events) == 3


class TestNullTelemetry:
    def test_off_means_zero_events(self, monkeypatch):
        """The null object never reaches the emitter at all."""

        def explode(self, event):
            raise AssertionError("NULL_TELEMETRY emitted an event")

        monkeypatch.setattr(Telemetry, "_emit", explode)
        with NULL_TELEMETRY.span("work", a=1) as span:
            span.set("k", "v")
        NULL_TELEMETRY.event("p")
        NULL_TELEMETRY.count("c")
        NULL_TELEMETRY.close()
        assert NULL_TELEMETRY.events_emitted == 0

    def test_null_span_is_shared_singleton(self):
        assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")

    def test_enabled_flags(self):
        assert Telemetry(clock=FakeClock()).enabled
        assert not NullTelemetry().enabled

    def test_coalesce(self):
        assert coalesce(None) is NULL_TELEMETRY
        live = Telemetry(clock=FakeClock())
        assert coalesce(live) is live


class TestJsonlSink:
    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(sink=JsonlSink(path), clock=FakeClock())
        with telemetry.span("work", job="j1"):
            pass
        telemetry.count("hits", 2)
        telemetry.close()
        lines = path.read_text().splitlines()
        assert validate_jsonl(lines) == 2
        events = [json.loads(line) for line in lines]
        assert events[0]["name"] == "work"
        assert events[1]["counters"] == {"hits": 2}

    def test_truncates_previous_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("stale line\n")
        sink = JsonlSink(path)
        sink.close()
        assert path.read_text() == ""

    def test_close_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()


class TestSchemaValidation:
    def good_span(self):
        return {"v": SCHEMA_VERSION, "kind": "span", "name": "s",
                "t": 0.0, "dur": 0.1, "attrs": {"a": 1}}

    def test_accepts_good_span(self):
        assert validate_event(self.good_span()) == self.good_span()

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda e: e.update(v=99), "schema version"),
        (lambda e: e.update(kind="mystery"), "kind"),
        (lambda e: e.update(name=""), "name"),
        (lambda e: e.update(t=-1.0), "non-negative"),
        (lambda e: e.update(dur="fast"), "dur"),
        (lambda e: e.update(attrs={"a": [1]}), "scalar"),
        (lambda e: e.update(attrs="no"), "dict"),
    ])
    def test_rejects_malformed(self, mutate, fragment):
        event = self.good_span()
        mutate(event)
        with pytest.raises(SchemaError, match=fragment):
            validate_event(event)

    def test_rejects_bool_counter(self):
        event = {"v": SCHEMA_VERSION, "kind": "counters", "name": "c",
                 "t": 0.0, "counters": {"x": True}}
        with pytest.raises(SchemaError, match="int"):
            validate_event(event)

    def test_jsonl_names_offending_line(self):
        lines = [json.dumps(self.good_span()), "", "not json"]
        with pytest.raises(SchemaError, match="line 3"):
            validate_jsonl(lines)

    def test_jsonl_skips_blanks(self):
        lines = ["", json.dumps(self.good_span()), "   "]
        assert validate_jsonl(lines) == 1


class TestSummary:
    def test_every_line_prefixed_obs(self):
        telemetry = Telemetry(clock=FakeClock())
        with telemetry.span("work"):
            pass
        telemetry.count("hits", 3)
        text = render_summary(telemetry)
        assert text == telemetry.summary()
        for line in text.splitlines():
            assert line.startswith("obs ")
        assert "work" in text
        assert "hits" in text

    def test_empty_session_renders_header_only(self):
        text = render_summary(Telemetry(clock=FakeClock()))
        assert text == "obs telemetry summary: 0 events emitted"


class TestValidatorCli:
    def run(self, *argv):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            code = obs_main(list(argv))
        return code, out.getvalue(), err.getvalue()

    def test_ok_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        telemetry = Telemetry(sink=JsonlSink(path), clock=FakeClock())
        with telemetry.span("s"):
            pass
        telemetry.close()
        code, out, _ = self.run(str(path))
        assert code == 0
        assert "ok — 2 events" in out

    def test_schema_violation_exits_1(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 99}\n')
        code, _, err = self.run(str(path))
        assert code == 1
        assert "line 1" in err

    def test_unreadable_exits_2(self, tmp_path):
        code, _, err = self.run(str(tmp_path / "absent.jsonl"))
        assert code == 2
        assert "unreadable" in err
