"""Tests for state snapshotting and reports."""

from __future__ import annotations

from repro.bit.reporter import MAX_DEPTH, StateReport, report_to_file, snapshot_value


class TestSnapshotValue:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "text"):
            assert snapshot_value(value) == value

    def test_containers(self):
        assert snapshot_value([1, 2]) == [1, 2]
        assert snapshot_value((1, 2)) == (1, 2)
        assert snapshot_value({"k": 1}) == {"k": 1}

    def test_sets_are_ordered(self):
        first = snapshot_value({3, 1, 2})
        second = snapshot_value({2, 3, 1})
        assert first == second

    def test_objects_become_dicts(self):
        class Point:
            def __init__(self):
                self.x = 1
                self.y = 2

        snap = snapshot_value(Point())
        assert snap == {"<class>": "Point", "x": 1, "y": 2}

    def test_slots_objects(self):
        class Slotted:
            __slots__ = ("a", "b")

            def __init__(self):
                self.a = 1
                self.b = "two"

        snap = snapshot_value(Slotted())
        assert snap["a"] == 1 and snap["b"] == "two"

    def test_bit_state_protocol_preferred(self):
        class Custom:
            def __init__(self):
                self.hidden = "raw"

            def bit_state(self):
                return {"visible": 42}

        snap = snapshot_value(Custom())
        assert snap == {"<class>": "Custom", "visible": 42}

    def test_cycles_cut(self):
        a = {}
        a["self"] = a
        snap = snapshot_value(a)
        assert snap["self"] == "<cycle>"

    def test_depth_limited(self):
        nested = current = []
        for _ in range(MAX_DEPTH + 3):
            deeper = []
            current.append(deeper)
            current = deeper
        snap = snapshot_value(nested)
        text = repr(snap)
        assert "depth-limit" in text

    def test_large_lists_truncated_explicitly(self):
        snap = snapshot_value(list(range(500)))
        assert "<300 more>" in snap[-1]

    def test_unknown_objects_placeholder(self):
        snap = snapshot_value(object())
        assert snap == "<object>"


class TestStateReport:
    def test_capture_and_dict(self):
        class Pair:
            def __init__(self):
                self.left = 1
                self.right = 2

        report = StateReport.capture(Pair())
        assert report.class_name == "Pair"
        assert report.as_dict() == {"left": 1, "right": 2}

    def test_ignores_bit_internal_attributes(self):
        class Wrapped:
            def __init__(self):
                self.real = 1
                self._bit_tracer = "internal"

        report = StateReport.capture(Wrapped())
        assert "real" in report.as_dict()
        assert "_bit_tracer" not in report.as_dict()

    def test_equality_is_structural(self):
        class Counter:
            def __init__(self, n):
                self.n = n

        assert StateReport.capture(Counter(3)) == StateReport.capture(Counter(3))
        assert StateReport.capture(Counter(3)) != StateReport.capture(Counter(4))

    def test_differs_from(self):
        class Counter:
            def __init__(self, n, m=0):
                self.n = n
                self.m = m

        first = StateReport.capture(Counter(1, 5))
        second = StateReport.capture(Counter(2, 5))
        assert first.differs_from(second) == ("n",)
        assert first.differs_from(first) == ()

    def test_differs_from_reports_missing_attributes(self):
        class One:
            def __init__(self):
                self.only = 1

        class Two:
            def __init__(self):
                self.other = 2

        first = StateReport.capture(One())
        second = StateReport.capture(Two())
        assert set(first.differs_from(second)) == {"only", "other"}

    def test_format(self):
        class Named:
            def __init__(self):
                self.name = "x"

        text = StateReport.capture(Named()).format()
        assert "state of Named" in text
        assert "name = 'x'" in text

    def test_format_empty(self):
        class Empty:
            pass

        assert "no instance attributes" in StateReport.capture(Empty()).format()

    def test_bit_state_protocol(self):
        class Listy:
            def bit_state(self):
                return {"count": 2, "values": [4, 5]}

        report = StateReport.capture(Listy())
        assert report.as_dict() == {"count": 2, "values": [4, 5]}


class TestReportToFile:
    def test_appends(self, tmp_path):
        class Named:
            def __init__(self, tag):
                self.tag = tag

        path = str(tmp_path / "log.txt")
        report_to_file(Named("a"), path)
        report_to_file(Named("b"), path)
        content = (tmp_path / "log.txt").read_text()
        assert "tag = 'a'" in content and "tag = 'b'" in content
