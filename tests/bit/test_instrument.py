"""Tests for dynamic instrumentation (the test-mode compile analogue)."""

from __future__ import annotations

import pytest

from repro.bit import access
from repro.bit.builtintest import BuiltInTest
from repro.bit.instrument import (
    compile_component,
    instrument,
    is_instrumented,
    original_class,
    tracer_of,
)
from repro.bit.trace import CallTracer
from repro.core.errors import InstrumentationError, InvariantViolation


class Turnstile:
    """A plain (not self-testable) component."""

    def __init__(self):
        self.entries = 0
        self.locked = True

    def unlock(self):
        self.locked = False

    def push(self):
        if not self.locked:
            self.entries += 1
            self.locked = True
            return True
        return False

    def count(self):
        return self.entries

    def _secret(self):
        return "internal"


def turnstile_invariant(self) -> bool:
    return self.entries >= 0


class TestInstrument:
    def test_produces_marked_subclass(self):
        instrumented = instrument(Turnstile)
        assert is_instrumented(instrumented)
        assert issubclass(instrumented, Turnstile)
        assert issubclass(instrumented, BuiltInTest)
        assert original_class(instrumented) is Turnstile

    def test_original_untouched(self):
        instrument(Turnstile)
        assert not is_instrumented(Turnstile)
        assert not hasattr(Turnstile, "invariant_test")

    def test_rejects_double_instrumentation(self):
        instrumented = instrument(Turnstile)
        with pytest.raises(InstrumentationError, match="already"):
            instrument(instrumented)

    def test_rejects_non_class(self):
        with pytest.raises(InstrumentationError):
            instrument(Turnstile())  # type: ignore[arg-type]

    def test_behaviour_preserved(self):
        instrumented = instrument(Turnstile)
        gate = instrumented()
        gate.unlock()
        assert gate.push() is True
        assert gate.count() == 1

    def test_invariant_installed(self, in_test_mode):
        instrumented = instrument(Turnstile, invariant=turnstile_invariant)
        gate = instrumented()
        gate.invariant_test()
        gate.entries = -1
        with pytest.raises(InvariantViolation):
            gate.invariant_test()

    def test_spec_embedded(self):
        from repro.components import STACK_SPEC

        instrumented = instrument(Turnstile, spec=STACK_SPEC)
        assert instrumented.__tspec__ is STACK_SPEC

    def test_keeps_existing_builtintest_base(self):
        class SelfMade(BuiltInTest):
            def __init__(self):
                self.x = 1

            def work(self):
                return self.x

        instrumented = instrument(SelfMade)
        assert instrumented.__mro__.count(BuiltInTest) == 1

    def test_private_methods_not_wrapped(self):
        instrumented = instrument(Turnstile)
        assert not getattr(instrumented._secret, "__bit_wrapped__", False)

    def test_class_name_default_and_override(self):
        assert instrument(Turnstile).__name__ == "Turnstile"
        renamed = instrument(Turnstile, class_name="TestableTurnstile")
        assert renamed.__name__ == "TestableTurnstile"


class TestTracing:
    def test_calls_recorded(self):
        tracer = CallTracer()
        instrumented = instrument(Turnstile, tracer=tracer)
        gate = instrumented()
        gate.unlock()
        gate.push()
        gate.count()
        names = tracer.method_sequence()
        assert names == ("__init__", "unlock", "push", "count")

    def test_tracer_attached(self):
        tracer = CallTracer()
        instrumented = instrument(Turnstile, tracer=tracer)
        assert tracer_of(instrumented) is tracer
        assert tracer_of(Turnstile) is None

    def test_exceptions_traced_and_propagated(self):
        class Boomy:
            def explode(self):
                raise ValueError("bang")

        tracer = CallTracer()
        instrumented = instrument(Boomy, tracer=tracer)
        with pytest.raises(ValueError):
            instrumented().explode()
        events = tracer.calls_to("explode")
        assert events and events[0].outcome == "raise"
        assert "bang" in events[0].detail


class TestAutomaticInvariantChecking:
    def test_checks_around_each_call(self):
        instrumented = instrument(
            Turnstile, invariant=turnstile_invariant, check_invariants=True
        )
        gate = instrumented()
        with access.test_mode():
            gate.unlock()

            # Sabotage the state, then call any method: the pre-call check
            # must fire.
            gate.entries = -5
            with pytest.raises(InvariantViolation):
                gate.count()

    def test_no_checks_outside_test_mode(self):
        instrumented = instrument(
            Turnstile, invariant=turnstile_invariant, check_invariants=True
        )
        gate = instrumented()
        gate.entries = -5
        assert gate.count() == -5  # silent in production


class TestCompileComponent:
    def test_production_build_is_original(self):
        assert compile_component(Turnstile, test_mode=False) is Turnstile

    def test_test_build_is_instrumented(self):
        built = compile_component(Turnstile, test_mode=True)
        assert is_instrumented(built)

    def test_production_build_of_instrumented_unwraps(self):
        built = compile_component(Turnstile, test_mode=True)
        assert compile_component(built, test_mode=False) is Turnstile

    def test_test_build_idempotent(self):
        built = compile_component(Turnstile, test_mode=True)
        assert compile_component(built, test_mode=True) is built
