"""Tests for the BIT access control (test-mode switch)."""

from __future__ import annotations

import pytest

from repro.bit import access
from repro.core.errors import TestModeError


class Component:
    pass


class SubComponent(Component):
    pass


class Unrelated:
    pass


class TestGlobalSwitch:
    def test_off_by_default(self):
        assert not access.is_test_mode()

    def test_set_and_reset(self):
        access.set_test_mode(True)
        assert access.is_test_mode()
        access.set_test_mode(False)
        assert not access.is_test_mode()

    def test_context_manager_restores(self):
        with access.test_mode():
            assert access.is_test_mode()
        assert not access.is_test_mode()

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with access.test_mode():
                raise RuntimeError("boom")
        assert not access.is_test_mode()

    def test_nested_contexts(self):
        with access.test_mode():
            with access.test_mode():
                assert access.is_test_mode()
            assert access.is_test_mode()
        assert not access.is_test_mode()


class TestPerClassSwitch:
    def test_enable_for_class(self):
        access.enable_for_class(Component)
        assert access.is_test_mode(Component)
        assert not access.is_test_mode(Unrelated)
        assert not access.is_test_mode()  # global stays off

    def test_subclasses_inherit_enablement(self):
        access.enable_for_class(Component)
        assert access.is_test_mode(SubComponent)

    def test_disable_for_class(self):
        access.enable_for_class(Component)
        access.disable_for_class(Component)
        assert not access.is_test_mode(Component)

    def test_disable_absent_is_noop(self):
        access.disable_for_class(Unrelated)

    def test_scoped_context_manager(self):
        with access.test_mode(Component):
            assert access.is_test_mode(Component)
            assert not access.is_test_mode(Unrelated)
        assert not access.is_test_mode(Component)

    def test_scoped_context_does_not_remove_prior_enablement(self):
        access.enable_for_class(Component)
        with access.test_mode(Component):
            pass
        assert access.is_test_mode(Component)

    def test_global_covers_everything(self):
        access.set_test_mode(True)
        assert access.is_test_mode(Unrelated)


class TestRequire:
    def test_raises_when_off(self):
        with pytest.raises(TestModeError, match="requires test mode"):
            access.require_test_mode(Component, "Reporter")

    def test_passes_when_on(self):
        with access.test_mode():
            access.require_test_mode(Component)

    def test_message_names_class_and_capability(self):
        try:
            access.require_test_mode(Component, "InvariantTest")
        except TestModeError as error:
            assert "Component" in str(error)
            assert "InvariantTest" in str(error)
        else:  # pragma: no cover
            pytest.fail("expected TestModeError")
