"""Tests for the set/reset BIT capability (sec. 3.3's optional feature)."""

from __future__ import annotations

import pytest

from repro.bit.builtintest import BuiltInTest
from repro.bit.setreset import Restorable, StateCheckpoint, run_from_state
from repro.core.errors import BitError, TestModeError


class Meter(BuiltInTest, Restorable):
    def __init__(self):
        self.reading = 0
        self.history = []

    def advance(self, amount):
        self.reading += amount
        self.history.append(amount)
        return self.reading


class TestRestorable:
    def test_requires_test_mode(self):
        meter = Meter()
        with pytest.raises(TestModeError):
            meter.bit_capture_state()
        with pytest.raises(TestModeError):
            meter.bit_set_state({})
        with pytest.raises(TestModeError):
            meter.bit_reset()

    def test_capture_and_set(self, in_test_mode):
        meter = Meter()
        meter.advance(5)
        snapshot = meter.bit_capture_state()
        meter.advance(10)
        meter.bit_set_state(snapshot)
        assert meter.reading == 5
        assert meter.history == [5]

    def test_capture_is_deep(self, in_test_mode):
        meter = Meter()
        meter.advance(1)
        snapshot = meter.bit_capture_state()
        meter.history.append("tampered")
        assert snapshot["history"] == [1]

    def test_set_state_removes_extraneous_attributes(self, in_test_mode):
        meter = Meter()
        snapshot = meter.bit_capture_state()
        meter.debris = "should vanish"
        meter.bit_set_state(snapshot)
        assert not hasattr(meter, "debris")

    def test_reset_reruns_init(self, in_test_mode):
        meter = Meter()
        meter.advance(42)
        meter.bit_reset()
        assert meter.reading == 0
        assert meter.history == []


class TestStateCheckpoint:
    def test_restore_roundtrip(self, in_test_mode):
        meter = Meter()
        meter.advance(3)
        checkpoint = StateCheckpoint(meter)
        meter.advance(7)
        checkpoint.restore()
        assert meter.reading == 3

    def test_restore_many_times(self, in_test_mode):
        meter = Meter()
        checkpoint = StateCheckpoint(meter)
        for _ in range(3):
            meter.advance(9)
            checkpoint.restore()
            assert meter.reading == 0

    def test_recapture(self, in_test_mode):
        meter = Meter()
        checkpoint = StateCheckpoint(meter)
        meter.advance(4)
        checkpoint.recapture()
        meter.advance(6)
        checkpoint.restore()
        assert meter.reading == 4

    def test_plain_object_fallback(self, in_test_mode):
        class Plain:
            def __init__(self):
                self.x = 1

        plain = Plain()
        checkpoint = StateCheckpoint(plain)
        plain.x = 99
        checkpoint.restore()
        assert plain.x == 1

    def test_requires_test_mode(self):
        with pytest.raises(TestModeError):
            StateCheckpoint(Meter())

    def test_stateless_object_rejected(self, in_test_mode):
        with pytest.raises(BitError, match="no restorable state"):
            StateCheckpoint(object())

    def test_state_view_is_copy(self, in_test_mode):
        meter = Meter()
        checkpoint = StateCheckpoint(meter)
        view = checkpoint.state
        view["reading"] = 999
        checkpoint.restore()
        assert meter.reading == 0


class TestRunFromState:
    def test_runs_from_predefined_state(self, in_test_mode):
        meter = Meter()
        deep_state = {"reading": 100, "history": [100]}
        result = run_from_state(meter, deep_state, meter.advance, 1)
        assert result == 101
        assert meter.reading == 101

    def test_none_state_uses_current(self, in_test_mode):
        meter = Meter()
        meter.advance(2)
        assert run_from_state(meter, None, meter.advance, 3) == 5

    def test_requires_capability(self, in_test_mode):
        class NoCapability:
            def poke(self):
                return 1

        target = NoCapability()
        with pytest.raises(BitError, match="set/reset"):
            run_from_state(target, {"x": 1}, target.poke)
