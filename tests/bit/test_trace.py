"""Tests for the call tracer."""

from __future__ import annotations

from repro.bit.trace import CallTracer, TraceEvent, _safe_repr


class Subject:
    pass


class TestRecording:
    def test_return_event(self):
        tracer = CallTracer()
        tracer.record_return(Subject(), "work", (1, "a"), {"k": 2}, result=99)
        event = tracer.events[0]
        assert event.class_name == "Subject"
        assert event.method == "work"
        assert event.arguments == ("1", "'a'", "k=2")
        assert event.outcome == "return"
        assert event.detail == "99"

    def test_raise_event(self):
        tracer = CallTracer()
        tracer.record_raise(Subject(), "work", (), {}, ValueError("oops"))
        event = tracer.events[0]
        assert event.outcome == "raise"
        assert "ValueError" in event.detail

    def test_len_and_iter(self):
        tracer = CallTracer()
        for index in range(3):
            tracer.record_return(Subject(), f"m{index}", (), {}, None)
        assert len(tracer) == 3
        assert [event.method for event in tracer] == ["m0", "m1", "m2"]

    def test_clear(self):
        tracer = CallTracer()
        tracer.record_return(Subject(), "m", (), {}, None)
        tracer.clear()
        assert len(tracer) == 0

    def test_disabled_records_nothing(self):
        tracer = CallTracer()
        tracer.enabled = False
        tracer.record_return(Subject(), "m", (), {}, None)
        assert len(tracer) == 0

    def test_capacity_drops_counted(self):
        tracer = CallTracer(capacity=2)
        for index in range(5):
            tracer.record_return(Subject(), f"m{index}", (), {}, None)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert "dropped" in tracer.format()


class NeverRepr:
    """An object whose repr must not run — regression guard for the
    render-before-gate bug: a disabled or full tracer used to repr every
    argument and result before checking whether the event would be kept."""

    def __repr__(self):
        raise AssertionError("repr rendered despite the admission gate")


class TestLazyRendering:
    def test_disabled_tracer_never_renders(self):
        tracer = CallTracer()
        tracer.enabled = False
        tracer.record_return(Subject(), "m", (NeverRepr(),),
                             {"k": NeverRepr()}, NeverRepr())
        tracer.record_raise(Subject(), "m", (NeverRepr(),), {},
                            ValueError("x"))
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_full_tracer_never_renders(self):
        tracer = CallTracer(capacity=1)
        tracer.record_return(Subject(), "first", (), {}, None)
        tracer.record_return(Subject(), "over", (NeverRepr(),), {},
                             NeverRepr())
        tracer.record_raise(Subject(), "over", (), {"k": NeverRepr()},
                            ValueError("x"))
        assert len(tracer) == 1
        assert tracer.dropped == 2  # drops still counted, just unrendered

    def test_admitted_events_render_as_before(self):
        tracer = CallTracer()
        tracer.record_return(Subject(), "work", (1,), {"k": "v"}, 2)
        event = tracer.events[0]
        assert event.arguments == ("1", "k='v'")
        assert event.detail == "2"


class TestQueries:
    def test_calls_to(self):
        tracer = CallTracer()
        tracer.record_return(Subject(), "a", (), {}, 1)
        tracer.record_return(Subject(), "b", (), {}, 2)
        tracer.record_return(Subject(), "a", (), {}, 3)
        assert len(tracer.calls_to("a")) == 2

    def test_method_sequence(self):
        tracer = CallTracer()
        for name in ("create", "use", "destroy"):
            tracer.record_return(Subject(), name, (), {}, None)
        assert tracer.method_sequence() == ("create", "use", "destroy")

    def test_format_last(self):
        tracer = CallTracer()
        for index in range(5):
            tracer.record_return(Subject(), f"m{index}", (), {}, None)
        text = tracer.format(last=2)
        assert "m3" in text and "m4" in text and "m0" not in text


class TestSafeRepr:
    def test_truncates_long_values(self):
        text = _safe_repr("x" * 1000)
        assert len(text) <= 120
        assert text.endswith("…")

    def test_survives_hostile_repr(self):
        class Hostile:
            def __repr__(self):
                raise RuntimeError("no repr for you")

        assert "repr failed" in _safe_repr(Hostile())


class TestTraceEvent:
    def test_format_return(self):
        event = TraceEvent("C", "m", ("1",), "return", "2")
        assert event.format() == "C.m(1) -> 2"

    def test_format_raise(self):
        event = TraceEvent("C", "m", (), "raise", "ValueError: x")
        assert "!!" in event.format()
