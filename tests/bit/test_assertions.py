"""Tests for the contract assertion checks and decorators (Figure 5)."""

from __future__ import annotations

import pytest

from repro.bit import access
from repro.bit.assertions import (
    check_invariant,
    check_postcondition,
    check_precondition,
    ensure,
    has_contracts,
    invariant_checked,
    require,
)
from repro.bit.builtintest import BuiltInTest
from repro.core.errors import (
    InvariantViolation,
    PostconditionViolation,
    PreconditionViolation,
)


class TestCheckFunctions:
    def test_noop_outside_test_mode(self):
        # Like the macros compiled out of a production build.
        check_invariant(False)
        check_precondition(False)
        check_postcondition(False)

    def test_raise_in_test_mode(self, in_test_mode):
        with pytest.raises(InvariantViolation):
            check_invariant(False)
        with pytest.raises(PreconditionViolation):
            check_precondition(False)
        with pytest.raises(PostconditionViolation):
            check_postcondition(False)

    def test_truthy_passes(self, in_test_mode):
        check_invariant(True)
        check_precondition(1)
        check_postcondition("non-empty")

    def test_callable_predicates_lazy(self):
        # Outside test mode the predicate must not even be evaluated.
        calls = []

        def expensive():
            calls.append(1)
            return False

        check_precondition(expensive)
        assert calls == []
        with access.test_mode():
            with pytest.raises(PreconditionViolation):
                check_precondition(expensive)
        assert calls == [1]

    def test_subject_in_message(self, in_test_mode):
        with pytest.raises(InvariantViolation, match="Widget"):
            check_invariant(False, subject="Widget")

    def test_custom_message(self, in_test_mode):
        with pytest.raises(PreconditionViolation, match="must be positive"):
            check_precondition(False, message="must be positive")


class Account(BuiltInTest):
    def __init__(self, balance=0):
        self.balance = balance

    def class_invariant(self):
        return self.balance >= 0

    @require(lambda self, amount: amount > 0, "amount must be positive")
    def deposit(self, amount):
        self.balance += amount
        return self.balance

    @ensure(lambda self, result, amount: result >= 0, "no overdraft")
    def withdraw(self, amount):
        self.balance -= amount
        return self.balance

    @invariant_checked
    def audit(self):
        return self.balance


class TestDecorators:
    def test_require_passes_valid_call(self, in_test_mode):
        assert Account().deposit(10) == 10

    def test_require_rejects_invalid_call(self, in_test_mode):
        with pytest.raises(PreconditionViolation, match="positive"):
            Account().deposit(-1)

    def test_require_transparent_outside_test_mode(self):
        assert Account().deposit(-1) == -1  # fault passes silently

    def test_ensure_detects_violation(self, in_test_mode):
        account = Account(5)
        with pytest.raises(PostconditionViolation, match="overdraft"):
            account.withdraw(10)

    def test_ensure_passes(self, in_test_mode):
        assert Account(10).withdraw(4) == 6

    def test_invariant_checked_before_and_after(self, in_test_mode):
        account = Account(3)
        assert account.audit() == 3
        account.balance = -1
        with pytest.raises(InvariantViolation):
            account.audit()

    def test_invariant_checked_transparent_outside(self):
        account = Account(-5)
        assert account.audit() == -5

    def test_violation_subject_names_class_and_method(self, in_test_mode):
        try:
            Account().deposit(0)
        except PreconditionViolation as violation:
            assert "Account.deposit" in str(violation)
        else:  # pragma: no cover
            pytest.fail("expected violation")

    def test_has_contracts(self):
        assert has_contracts(Account.deposit)
        assert has_contracts(Account.withdraw)
        assert has_contracts(Account.audit)
        assert not has_contracts(Account.class_invariant)

    def test_wrapped_method_keeps_name(self):
        assert Account.deposit.__name__ == "deposit"

    def test_per_class_test_mode_scopes_decorators(self):
        with access.test_mode(Account):
            with pytest.raises(PreconditionViolation):
                Account().deposit(0)
