"""Tests for the BuiltInTest mixin (Figure 4)."""

from __future__ import annotations

import pytest

from repro.bit import access
from repro.bit.builtintest import BuiltInTest, is_self_testable
from repro.bit.reporter import StateReport
from repro.core.errors import InvariantViolation, TestModeError


class Thermostat(BuiltInTest):
    def __init__(self, target=20):
        self.target = target

    def class_invariant(self):
        return -30 <= self.target <= 60


class TestInvariantTest:
    def test_requires_test_mode(self):
        with pytest.raises(TestModeError):
            Thermostat().invariant_test()

    def test_passes_on_valid_state(self, in_test_mode):
        Thermostat().invariant_test()

    def test_raises_on_invalid_state(self, in_test_mode):
        broken = Thermostat(1000)
        with pytest.raises(InvariantViolation, match="Thermostat"):
            broken.invariant_test()

    def test_default_invariant_accepts_everything(self, in_test_mode):
        class Plain(BuiltInTest):
            pass

        Plain().invariant_test()

    def test_per_class_enablement_suffices(self):
        access.enable_for_class(Thermostat)
        Thermostat().invariant_test()


class TestReporter:
    def test_requires_test_mode(self):
        with pytest.raises(TestModeError):
            Thermostat().reporter()

    def test_captures_state(self, in_test_mode):
        report = Thermostat(22).reporter()
        assert isinstance(report, StateReport)
        assert report.as_dict()["target"] == 22

    def test_appends_to_file(self, in_test_mode, tmp_path):
        destination = tmp_path / "Result.txt"
        Thermostat(18).reporter(str(destination))
        Thermostat(19).reporter(str(destination))
        content = destination.read_text()
        assert content.count("state of Thermostat") == 2
        assert "target = 18" in content
        assert "target = 19" in content


class TestIsSelfTestable:
    def test_mixin_subclass(self):
        assert is_self_testable(Thermostat)

    def test_duck_typed_class(self):
        class Duck:
            def class_invariant(self):
                return True

            def invariant_test(self):
                pass

            def reporter(self, destination=None):
                return None

        assert is_self_testable(Duck)

    def test_plain_class_is_not(self):
        class Plain:
            pass

        assert not is_self_testable(Plain)

    def test_has_builtin_test_marker(self):
        assert Thermostat.has_builtin_test()
