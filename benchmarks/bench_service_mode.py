"""Service mode — daemon-vs-batch overhead and resident-state wins.

Runs a slice of the builtin ``ci`` corpus twice against a resident
mutation-analysis daemon (UNIX socket, line-delimited JSON) and once as
a plain in-process batch sweep:

* ``batch`` — one :class:`SweepRunner` built, used, discarded: every
  sweep pays synthesis, suite generation and reference recording again;
* ``daemon cold`` — the same corpus through ``sweep_over_server`` on a
  freshly started daemon: adds protocol framing, job-queue scheduling
  and result polling on top of the same pipeline;
* ``daemon warm`` — the corpus resubmitted to the *same* daemon: the
  resident runner's prep memos (synthesis, suites, references) are
  already populated, which is the service-mode win a batch process can
  never see.

Asserted: every daemon report's deterministic projection is
byte-identical to the batch report's (the ``--server`` passthrough
contract), the protocol overhead is bounded, and the warm resubmission
does not lose to the cold one.  Raw speedups are recorded, not asserted
— on a loaded container the memo win can drown in mutant-execution
noise.  Ping round-trips pin the per-request framing cost.

Results go to ``BENCH_service_mode.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path

from repro.scenarios import SweepRunner, builtin_registry
from repro.service import MutationService, ServiceClient, ServiceServer, \
    sweep_over_server

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_service_mode.json"

FILTER = "ci"
MAX_SCENARIOS = 10
PINGS = 200

#: Timing gates are loose by design: the workload is sub-second, so on
#: a single-CPU container scheduler noise can exceed the effects under
#: measurement.  The gates only catch pathological regressions (a
#: daemon twice as slow as batch); real speedups live in the JSON.
WARM_TOLERANCE = 2.0
OVERHEAD_TOLERANCE = 2.0


def run_bench() -> dict:
    registry = builtin_registry()
    workspace = Path(tempfile.mkdtemp(prefix="bench-service-"))

    started = time.perf_counter()
    batch_report = SweepRunner(
        registry, workers=1, workspace=str(workspace)
    ).run(filter_expression=FILTER, max_scenarios=MAX_SCENARIOS)
    batch_seconds = time.perf_counter() - started
    baseline = batch_report.to_json(timings=False)

    service = MutationService(
        workers=1, concurrency=4, workspace=str(workspace)
    )
    socket_path = str(workspace / "bench.sock")
    server = ServiceServer(service, socket_path=socket_path)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"install_signal_handlers": False}, daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 10
    while not os.path.exists(socket_path):
        assert time.monotonic() < deadline, "daemon never came up"
        time.sleep(0.01)

    try:
        with ServiceClient(socket_path) as client:
            started = time.perf_counter()
            for _ in range(PINGS):
                client.ping()
            ping_seconds = time.perf_counter() - started

            started = time.perf_counter()
            cold_report = sweep_over_server(
                client, registry, filter_expression=FILTER,
                max_scenarios=MAX_SCENARIOS,
            )
            cold_seconds = time.perf_counter() - started

            started = time.perf_counter()
            warm_report = sweep_over_server(
                client, registry, filter_expression=FILTER,
                max_scenarios=MAX_SCENARIOS,
            )
            warm_seconds = time.perf_counter() - started
            stats = client.stats()
    finally:
        server.stop()
        thread.join(timeout=30)

    return {
        "benchmark": "service_mode",
        "workload": {
            "filter": FILTER,
            "max_scenarios": MAX_SCENARIOS,
            "registry_fingerprint": registry.fingerprint()[:16],
            "scenarios": len(batch_report.results),
            "mutants": batch_report.mutants_total,
            "killed": batch_report.mutants_killed,
        },
        "cpu_count": os.cpu_count(),
        "batch_seconds": round(batch_seconds, 3),
        "daemon_cold_seconds": round(cold_seconds, 3),
        "daemon_warm_seconds": round(warm_seconds, 3),
        "daemon_overhead": round(cold_seconds / batch_seconds, 3),
        "warm_vs_cold": round(cold_seconds / warm_seconds, 3),
        "ping_round_trip_ms": round(ping_seconds / PINGS * 1000, 4),
        "jobs_executed": stats["executed"],
        "deterministic_across_transports": (
            cold_report.to_json(timings=False) == baseline
            and warm_report.to_json(timings=False) == baseline
        ),
        "oracle_failures": batch_report.total_oracle_failures,
        "scenario_errors": len(batch_report.errors),
    }


def write_report(data: dict) -> None:
    OUTPUT_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_service_mode_overhead(benchmark):
    from conftest import run_once

    data = run_once(benchmark, run_bench)
    write_report(data)

    print()
    print(json.dumps(data, indent=2))

    assert data["workload"]["scenarios"] == MAX_SCENARIOS
    assert data["deterministic_across_transports"]
    assert data["oracle_failures"] == 0
    assert data["scenario_errors"] == 0
    assert data["jobs_executed"] == 2 * MAX_SCENARIOS
    # Protocol + queueing must stay a bounded tax over the batch sweep.
    assert data["daemon_cold_seconds"] <= \
        data["batch_seconds"] * OVERHEAD_TOLERANCE
    # Resubmission runs on warm prep memos: it must not lose outright.
    assert data["daemon_warm_seconds"] <= \
        data["daemon_cold_seconds"] * WARM_TOLERANCE
    # A ping round-trip is framing + dispatch only: well under 50 ms.
    assert data["ping_round_trip_ms"] < 50
