"""Ablation — oracle contribution (sec. 4's assertion discussion).

The paper: "assertions, besides improving testability, help to improve
fault-revealing effectiveness.  The results also show that assertions alone
do not constitute an effective oracle."  This ablation scores a sampled
Table-2 mutant pool under three oracle configurations:

* assertions only   (the embedded partial oracle by itself);
* output only       (golden observations, no contract knowledge);
* the full composite (the experiment configuration).

Expected shape: assertions alone kill a clear minority; the composite
dominates both single detectors.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablations import oracle_ablation


def test_oracle_ablation(benchmark):
    result = run_once(benchmark, oracle_ablation, stride=4)

    print()
    print(result.format())

    kills = result.kills_by_oracle
    # Assertions alone are not an effective oracle (paper's conclusion)…
    assert kills["assertions_only"] < 0.5 * result.total_mutants
    # …but they do help: they kill a non-trivial share on their own.
    assert kills["assertions_only"] > 0
    # The composite is at least as strong as each single detector.
    assert kills["full_composite"] >= kills["assertions_only"]
    assert kills["full_composite"] >= kills["output_only"]
    # And the full configuration is effective overall.
    assert kills["full_composite"] > 0.6 * result.total_mutants
