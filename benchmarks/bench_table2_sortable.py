"""Table 2 — experiment 1: mutation scores for ``CSortableObList``.

Regenerates the paper's Table 2: the five target methods are interface-
mutated (Table 1 operators, C++-typing gate), the consumer-generated
624-case transaction-coverage suite runs over every mutant, survivors are
probed for equivalence, and the per-method × per-operator score grid is
printed in the paper's layout.

Paper reference: 700 mutants, 652 killed, 19 equivalent, total score
95.7%; per-operator scores 85.7%–98.2%; 59 kills by assertion violation.
Expected shape here: a comparable pool (≈700), a high total score (≳80%),
every operator contributing, assertions responsible for a clear minority
of kills.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.table2 import run_table2


def test_table2_full_experiment(benchmark):
    result = run_once(benchmark, run_table2)

    print()
    print(result.generation.summary())
    print(result.table.format())
    if result.equivalence is not None:
        print(result.equivalence.summary())
    print(result.run.summary())
    print(result.summary())

    table = result.table
    # Pool size: same order as the paper's 700.
    assert 500 <= table.total_generated <= 900
    # Headline: the suite is effective (paper: 95.7%).
    assert table.total_score >= 0.80
    # Every operator contributes mutants and kills.
    for column in table.columns:
        assert column.generated > 0
        assert column.killed > 0
    # Equivalent mutants exist (paper: 19) and are excluded from the score.
    assert table.total_equivalent > 0
    # Assertions help but are a minority detector (paper: 59 of 652).
    assert 0 < table.assertion_kills < table.total_killed / 2
    # Sort1 is a heavyweight row, FindMax/FindMin light ones (paper shape).
    assert table.method_total("ShellSort") > table.method_total("FindMax")
