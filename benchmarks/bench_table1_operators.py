"""Table 1 — the interface mutation operator battery.

Regenerates Table 1 as executable evidence: each of the five operators,
applied to the experiments' subject methods, yields mutants of the
documented kind; the C++-typing gate (the paper's "compiled cleanly"
requirement) removes a substantial share of type-invalid candidates.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.table1 import OPERATOR_DEFINITIONS, run_table1


def test_table1_operator_battery(benchmark):
    result = run_once(benchmark, run_table1)

    print()
    print(result.format())

    assert len(result.demos) == len(OPERATOR_DEFINITIONS) == 5
    for demo in result.demos:
        assert demo.typed_mutants > 0, f"{demo.operator} produced no mutants"
        assert demo.untyped_mutants >= demo.typed_mutants
    # The gate must actually gate: overall it rejects a visible share.
    total_untyped = sum(demo.untyped_mutants for demo in result.demos)
    total_typed = sum(demo.typed_mutants for demo in result.demos)
    assert total_typed < total_untyped
    # Replacement operators dominate BitNeg, as in the paper's tables.
    bitneg = result.demo_for("IndVarBitNeg").typed_mutants
    for name in ("IndVarRepGlob", "IndVarRepLoc", "IndVarRepExt", "IndVarRepReq"):
        assert result.demo_for(name).typed_mutants > bitneg
