"""Benchmark fixtures: pristine global state, shared heavyweight artefacts."""

from __future__ import annotations

import pytest

from repro.bit import access
from repro.components import reset_database


@pytest.fixture(autouse=True)
def pristine_global_state():
    access.reset()
    reset_database()
    yield
    access.reset()
    reset_database()


def run_once(benchmark, function, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark clock."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs,
        rounds=1, iterations=1, warmup_rounds=0,
    )
