"""Static equivalent-mutant triage — executions avoided, probe time saved.

Runs the Table 2 workload (the full typed mutant pool over the five sort
methods of ``CSortableObList``, truncated suite) once with the static
triage pass (the default) and once with ``static_triage=False``, and
writes ``BENCH_mutation_triage.json`` at the repository root.

The asserted contract is soundness under real load: the two runs must
pass ``same_verdicts`` (identical kill verdicts on every executed
mutant), every triaged mutant must be withheld from dispatch
(``dispatched == mutants - skipped``), and no statically-equivalent
mutant may be marked killed.  The triage wall-clock, the number of
executions avoided, and the probe time saved on a capped survivor pool
are *recorded* for machines to compare; on this battery the typed pool
contains one redundancy class per ``// 2`` spelling in ``ShellSort`` and
no AST/bytecode-equivalent mutants, so the expected avoidance is small
but non-zero.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.experiments.config import TABLE2_METHODS, sortable_oracle, sortable_suite
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.cache import MutationOutcomeCache
from repro.mutation.equivalence import probe_equivalence
from repro.mutation.generate import generate_mutants
from repro.mutation.triage import triage_mutants

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_mutation_triage.json"

MAX_CASES = 200

#: Cap the probe pool so the benchmark stays tractable; statically-triaged
#: survivors are always force-included so the skip path is exercised.
PROBE_POOL = 18
PROBE_OPTIONS = dict(seeds=(1,), max_transactions=30, extra_variants=0)


def _workload():
    suite = sortable_suite()
    suite = replace(suite, cases=suite.cases[:MAX_CASES])
    mutants, _ = generate_mutants(
        CSortableObList, TABLE2_METHODS, type_model=OBLIST_TYPE_MODEL
    )
    return suite, mutants


def _timed(function, *args, **kwargs):
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


def run_bench() -> dict:
    suite, mutants = _workload()

    # The triage pass alone, cold and (verdict-cache) warm.
    triage, triage_cold_seconds = _timed(
        triage_mutants, CSortableObList, mutants, type_model=OBLIST_TYPE_MODEL
    )
    with tempfile.TemporaryDirectory(prefix="bench-mutation-triage-") as root:
        cache = MutationOutcomeCache(root)
        _, prime_seconds = _timed(
            triage_mutants, CSortableObList, mutants,
            type_model=OBLIST_TYPE_MODEL, cache=cache,
        )
        replayed, triage_warm_seconds = _timed(
            triage_mutants, CSortableObList, mutants,
            type_model=OBLIST_TYPE_MODEL, cache=cache,
        )
    assert replayed.entries == triage.entries

    # Full analyses with and without the pass.
    with_triage = MutationAnalysis(
        CSortableObList, suite, oracle=sortable_oracle(),
        triage_type_model=OBLIST_TYPE_MODEL,
    ).analyze(mutants)
    without_triage = MutationAnalysis(
        CSortableObList, suite, oracle=sortable_oracle(), static_triage=False,
    ).analyze(mutants)

    # Probe a capped survivor pool with and without the triage proofs.
    alive = {o.mutant.ident for o in with_triage.outcomes if not o.killed}
    survivors = [m for m in mutants if m.ident in alive]
    forced = [m for m in survivors if with_triage.triage.is_skipped(m.ident)]
    rest = [m for m in survivors if not with_triage.triage.is_skipped(m.ident)]
    pool = (forced + rest)[:max(PROBE_POOL, len(forced))]
    spec = CSortableObList.__tspec__
    probe_plain, probe_plain_seconds = _timed(
        probe_equivalence, CSortableObList, spec, pool, **PROBE_OPTIONS
    )
    probe_triaged, probe_triaged_seconds = _timed(
        probe_equivalence, CSortableObList, spec, pool,
        triage=with_triage.triage, **PROBE_OPTIONS,
    )

    return {
        "benchmark": "mutation_triage",
        "workload": {
            "class": "CSortableObList",
            "methods": list(TABLE2_METHODS),
            "mutants": len(mutants),
            "suite_cases": len(suite),
        },
        "cpu_count": os.cpu_count(),
        "triage": {
            "cold_seconds": round(triage_cold_seconds, 3),
            "warm_seconds": round(triage_warm_seconds, 3),
            "prime_seconds": round(prime_seconds, 3),
            "ast_equivalent": len(triage.ast_equivalent),
            "bytecode_equivalent": len(triage.bytecode_equivalent),
            "redundant": len(triage.redundant),
            "executions_avoided": triage.skipped,
        },
        "with_triage": {
            "seconds": round(with_triage.elapsed_seconds, 3),
            "dispatched": with_triage.dispatched_count,
            "killed": len(with_triage.killed),
        },
        "without_triage": {
            "seconds": round(without_triage.elapsed_seconds, 3),
            "dispatched": without_triage.dispatched_count,
            "killed": len(without_triage.killed),
        },
        "verdicts_identical": with_triage.same_verdicts(without_triage),
        "probe": {
            "pool": len(pool),
            "skipped_by_triage": len(
                [m for m in pool if with_triage.triage.is_skipped(m.ident)]
            ),
            "plain_seconds": round(probe_plain_seconds, 3),
            "triaged_seconds": round(probe_triaged_seconds, 3),
            "seconds_saved": round(
                probe_plain_seconds - probe_triaged_seconds, 3
            ),
            "classifications_identical": (
                set(probe_plain.likely_equivalent)
                == set(probe_triaged.likely_equivalent)
            ),
        },
    }


def write_report(data: dict) -> None:
    OUTPUT_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_triage_avoids_executions_soundly(benchmark):
    from conftest import run_once

    data = run_once(benchmark, run_bench)
    write_report(data)

    print()
    print(json.dumps(data, indent=2))

    # The contract under real load: identical verdicts, zero dispatches of
    # triaged mutants, the known ShellSort redundancy class detected.
    assert data["verdicts_identical"]
    triage = data["triage"]
    assert triage["executions_avoided"] == (
        triage["ast_equivalent"] + triage["bytecode_equivalent"]
        + triage["redundant"]
    )
    assert triage["redundant"] >= 2
    assert data["with_triage"]["dispatched"] == (
        data["workload"]["mutants"] - triage["executions_avoided"]
    )
    assert data["without_triage"]["dispatched"] == data["workload"]["mutants"]
    assert data["probe"]["classifications_identical"]
    assert OUTPUT_PATH.exists()


if __name__ == "__main__":
    report = run_bench()
    write_report(report)
    print(json.dumps(report, indent=2))
