"""Incremental outcome cache — cold vs warm wall-clock, segment-store edition.

Runs the Table 1 workload (the full typed mutant pool over the Table 2
target methods of ``CSortableObList``, truncated suite) three times into a
fresh cache directory — once with no cache (fresh baseline), once cold
(populating), once warm (replaying) — plus a warm run on the 2-worker
engine, then compacts the store and replays once more, and writes
``BENCH_mutation_cache.json`` at the repository root.

The asserted contract is the cached≡fresh guarantee under real load: every
warm run (including the post-compaction one) must pass ``same_results``
against the fresh baseline with a 100% hit rate (zero mutant executions).
Store shape is reported as segment bytes + live records, not a file count:
the v4 store is ONE append-only segment, so the per-entry filesystem cost
that made the old cold runs ~74% slower than fresh is gone.  Cold overhead
(``cold/fresh - 1``) is recorded always and asserted only in gate mode::

    python benchmarks/bench_mutation_cache.py --assert-overhead 0.20

which exits non-zero if the cold run is more than 20% slower than fresh —
the CI throughput gate.  The pytest entry point records but never asserts
wall-clock (timing assertions don't belong in the default suite).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.experiments.config import TABLE2_METHODS, sortable_oracle, sortable_suite
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.cache import MutationOutcomeCache
from repro.mutation.generate import generate_mutants
from repro.mutation.parallel import ParallelMutationAnalysis

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_mutation_cache.json"

MAX_CASES = 200


def _workload():
    suite = sortable_suite()
    suite = replace(suite, cases=suite.cases[:MAX_CASES])
    mutants, _ = generate_mutants(
        CSortableObList, TABLE2_METHODS, type_model=OBLIST_TYPE_MODEL
    )
    return suite, mutants


def _stats_dict(run):
    stats = run.cache_stats
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "invalidations": stats.invalidations,
        "corrupt": stats.corrupt,
        "hit_rate": round(stats.hit_rate, 4),
    }


def run_bench() -> dict:
    suite, mutants = _workload()

    fresh = MutationAnalysis(
        CSortableObList, suite, oracle=sortable_oracle()
    ).analyze(mutants)

    with tempfile.TemporaryDirectory(prefix="bench-mutation-cache-") as root:
        cache = MutationOutcomeCache(root)
        cold = MutationAnalysis(
            CSortableObList, suite, oracle=sortable_oracle(), cache=cache
        ).analyze(mutants)
        warm = MutationAnalysis(
            CSortableObList, suite, oracle=sortable_oracle(), cache=cache
        ).analyze(mutants)
        warm_parallel = ParallelMutationAnalysis(
            CSortableObList, suite, oracle=sortable_oracle(), cache=cache,
            workers=2,
        ).analyze(mutants)

        segment_bytes = cache.segment_bytes()
        compaction = cache.compact()
        compacted = MutationAnalysis(
            CSortableObList, suite, oracle=sortable_oracle(), cache=cache
        ).analyze(mutants)
        store = {
            "segment_bytes": segment_bytes,
            "live_records": cache.live_records(),
            "compaction": {
                "records_before": compaction.records_before,
                "records_kept": compaction.records_kept,
                "records_dropped": compaction.records_dropped,
                "bytes_before": compaction.bytes_before,
                "bytes_after": compaction.bytes_after,
            },
        }

    return {
        "benchmark": "mutation_cache",
        "workload": {
            "class": "CSortableObList",
            "methods": list(TABLE2_METHODS),
            "mutants": len(mutants),
            # Statically-triaged mutants are never executed or stored, so
            # the outcome-record count tracks the dispatched pool.
            "dispatched": fresh.dispatched_count,
            "suite_cases": len(suite),
            "killed": len(fresh.killed),
        },
        "cpu_count": os.cpu_count(),
        "fresh_seconds": round(fresh.elapsed_seconds, 3),
        "cold": {
            "seconds": round(cold.elapsed_seconds, 3),
            "identical_to_fresh": cold.same_results(fresh),
            "overhead_vs_fresh": round(
                cold.elapsed_seconds / fresh.elapsed_seconds - 1.0, 3
            ),
            "cache": _stats_dict(cold),
        },
        "warm": {
            "seconds": round(warm.elapsed_seconds, 3),
            "identical_to_fresh": warm.same_results(fresh),
            "speedup_vs_cold": round(
                cold.elapsed_seconds / warm.elapsed_seconds, 3
            ),
            "cache": _stats_dict(warm),
        },
        "warm_parallel_2": {
            "seconds": round(warm_parallel.elapsed_seconds, 3),
            "identical_to_fresh": warm_parallel.same_results(fresh),
            "cache": _stats_dict(warm_parallel),
        },
        "post_compaction_warm": {
            "seconds": round(compacted.elapsed_seconds, 3),
            "identical_to_fresh": compacted.same_results(fresh),
            "cache": _stats_dict(compacted),
        },
        "store": store,
    }


def check_contract(data: dict) -> None:
    """The load-independent guarantees every bench run must satisfy."""
    assert data["cold"]["identical_to_fresh"]
    assert data["warm"]["identical_to_fresh"]
    assert data["warm_parallel_2"]["identical_to_fresh"]
    assert data["post_compaction_warm"]["identical_to_fresh"]
    assert data["cold"]["cache"]["hits"] == 0
    assert data["warm"]["cache"]["hit_rate"] == 1.0
    assert data["warm_parallel_2"]["cache"]["hit_rate"] == 1.0
    assert data["post_compaction_warm"]["cache"]["hit_rate"] == 1.0
    # One outcome record per dispatched mutant, plus the triage records.
    assert data["store"]["live_records"] >= data["workload"]["dispatched"]
    assert data["store"]["segment_bytes"] > 0
    assert (data["store"]["compaction"]["bytes_after"]
            <= data["store"]["compaction"]["bytes_before"])


def write_report(data: dict) -> None:
    OUTPUT_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_cache_cold_vs_warm(benchmark):
    from conftest import run_once

    data = run_once(benchmark, run_bench)
    write_report(data)

    print()
    print(json.dumps(data, indent=2))

    check_contract(data)
    assert OUTPUT_PATH.exists()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Cache bench: cold/warm wall-clock + segment-store shape."
    )
    parser.add_argument(
        "--assert-overhead", type=float, default=None, metavar="FRACTION",
        help="gate mode: fail if cold overhead vs fresh exceeds FRACTION "
             "(e.g. 0.20 for the 20%% CI gate)",
    )
    arguments = parser.parse_args(argv)

    report = run_bench()
    write_report(report)
    print(json.dumps(report, indent=2))
    check_contract(report)

    if arguments.assert_overhead is not None:
        overhead = report["cold"]["overhead_vs_fresh"]
        if overhead > arguments.assert_overhead:
            print(f"FAIL: cold overhead {overhead:.1%} exceeds the "
                  f"{arguments.assert_overhead:.0%} gate")
            return 1
        print(f"cold overhead {overhead:.1%} within the "
              f"{arguments.assert_overhead:.0%} gate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
