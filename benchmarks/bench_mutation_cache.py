"""Incremental outcome cache — cold vs warm wall-clock.

Runs the Table 1 workload (the full typed mutant pool over the Table 2
target methods of ``CSortableObList``, truncated suite) three times into a
fresh cache directory — once with no cache (fresh baseline), once cold
(populating), once warm (replaying) — plus a warm run on the 2-worker
engine, and writes ``BENCH_mutation_cache.json`` at the repository root.

The asserted contract is the cached≡fresh guarantee under real load: both
warm runs must pass ``same_results`` against the fresh baseline with a
100% hit rate (zero mutant executions).  The cold/warm wall-clocks and the
speedup are *recorded* for machines to compare; warm time is dominated by
the reference-suite execution the cache deliberately never skips.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import replace
from pathlib import Path

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.experiments.config import TABLE2_METHODS, sortable_oracle, sortable_suite
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.cache import MutationOutcomeCache
from repro.mutation.generate import generate_mutants
from repro.mutation.parallel import ParallelMutationAnalysis

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_mutation_cache.json"

MAX_CASES = 200


def _workload():
    suite = sortable_suite()
    suite = replace(suite, cases=suite.cases[:MAX_CASES])
    mutants, _ = generate_mutants(
        CSortableObList, TABLE2_METHODS, type_model=OBLIST_TYPE_MODEL
    )
    return suite, mutants


def _stats_dict(run):
    stats = run.cache_stats
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "invalidations": stats.invalidations,
        "corrupt": stats.corrupt,
        "hit_rate": round(stats.hit_rate, 4),
    }


def run_bench() -> dict:
    suite, mutants = _workload()

    fresh = MutationAnalysis(
        CSortableObList, suite, oracle=sortable_oracle()
    ).analyze(mutants)

    with tempfile.TemporaryDirectory(prefix="bench-mutation-cache-") as root:
        cache = MutationOutcomeCache(root)
        cold = MutationAnalysis(
            CSortableObList, suite, oracle=sortable_oracle(), cache=cache
        ).analyze(mutants)
        warm = MutationAnalysis(
            CSortableObList, suite, oracle=sortable_oracle(), cache=cache
        ).analyze(mutants)
        warm_parallel = ParallelMutationAnalysis(
            CSortableObList, suite, oracle=sortable_oracle(), cache=cache,
            workers=2,
        ).analyze(mutants)
        entry_files = sum(
            1 for _ in (Path(root) / "objects").rglob("*.pkl")
        )

    return {
        "benchmark": "mutation_cache",
        "workload": {
            "class": "CSortableObList",
            "methods": list(TABLE2_METHODS),
            "mutants": len(mutants),
            # Statically-triaged mutants are never executed or stored, so
            # the entry-file count tracks the dispatched pool.
            "dispatched": fresh.dispatched_count,
            "suite_cases": len(suite),
            "killed": len(fresh.killed),
        },
        "cpu_count": os.cpu_count(),
        "fresh_seconds": round(fresh.elapsed_seconds, 3),
        "cold": {
            "seconds": round(cold.elapsed_seconds, 3),
            "identical_to_fresh": cold.same_results(fresh),
            "cache": _stats_dict(cold),
        },
        "warm": {
            "seconds": round(warm.elapsed_seconds, 3),
            "identical_to_fresh": warm.same_results(fresh),
            "speedup_vs_cold": round(
                cold.elapsed_seconds / warm.elapsed_seconds, 3
            ),
            "cache": _stats_dict(warm),
        },
        "warm_parallel_2": {
            "seconds": round(warm_parallel.elapsed_seconds, 3),
            "identical_to_fresh": warm_parallel.same_results(fresh),
            "cache": _stats_dict(warm_parallel),
        },
        "entry_files": entry_files,
    }


def write_report(data: dict) -> None:
    OUTPUT_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_cache_cold_vs_warm(benchmark):
    from conftest import run_once

    data = run_once(benchmark, run_bench)
    write_report(data)

    print()
    print(json.dumps(data, indent=2))

    # The contract under real load: cached is fresh-identical, full hit.
    assert data["cold"]["identical_to_fresh"]
    assert data["warm"]["identical_to_fresh"]
    assert data["warm_parallel_2"]["identical_to_fresh"]
    assert data["cold"]["cache"]["hits"] == 0
    assert data["warm"]["cache"]["hit_rate"] == 1.0
    assert data["warm_parallel_2"]["cache"]["hit_rate"] == 1.0
    assert data["entry_files"] == data["workload"]["dispatched"]
    assert OUTPUT_PATH.exists()


if __name__ == "__main__":
    report = run_bench()
    write_report(report)
    print(json.dumps(report, indent=2))
