"""Figures 6–7 — test-case generation and the executable driver.

Benchmarks the consumer-side pipeline the paper automates: suite generation
from the embedded t-spec (Driver Generator), driver source emission
(Figure 6's test-case functions + Figure 7's executable suite), and the
end-to-end run of the generated driver module.
"""

from __future__ import annotations

from repro.components import CSortableObList, SORTABLE_OBLIST_SPEC
from repro.experiments.figures import figure67_generated_driver
from repro.generator.codegen import generate_driver_source
from repro.generator.driver import DriverGenerator
from repro.harness.executor import TestExecutor


def test_suite_generation_speed(benchmark):
    suite = benchmark(lambda: DriverGenerator(SORTABLE_OBLIST_SPEC).generate())
    assert len(suite) > 400


def test_suite_execution_speed(benchmark):
    suite = DriverGenerator(SORTABLE_OBLIST_SPEC).generate()
    executor = TestExecutor(CSortableObList)
    result = benchmark(executor.run_suite, suite)
    assert result.all_passed


def test_driver_codegen_speed(benchmark):
    suite = DriverGenerator(SORTABLE_OBLIST_SPEC).generate()
    source = benchmark(
        generate_driver_source, suite, "repro.components", "CSortableObList"
    )
    assert source.count("def test_case_") == len(suite)


def test_generated_driver_end_to_end(benchmark):
    result = benchmark(figure67_generated_driver, 12)
    print()
    print(result.summary())
    assert result.passed == result.test_case_count
    assert result.failed == 0
