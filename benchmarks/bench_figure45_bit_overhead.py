"""Figures 4–5 — BuiltInTest capabilities and their cost.

Two claims are benchmarked:

* **detection** — the Figure-5 assertion macros fire in test mode and are
  silent outside it, and the BIT interface is unreachable without test
  mode (the access-control contract);
* **cost** — a production build (``compile_component(test_mode=False)``)
  is the original class, so testability machinery adds nothing to deployed
  components; the instrumented build pays for its observability.
"""

from __future__ import annotations

from repro.bit import access
from repro.bit.instrument import compile_component
from repro.components import BoundedStack
from repro.experiments.figures import figure45_bit_demo


def _drive(stack_class, rounds=200):
    for _ in range(rounds):
        stack = stack_class(8)
        for value in range(8):
            stack.Push(value)
        while not stack.IsEmpty():
            stack.Pop()


def test_figure45_detection(benchmark):
    result = benchmark(figure45_bit_demo)
    print()
    print(result.summary())
    assert set(result.violations_in_test_mode) == {"pre", "post", "invariant"}
    assert result.silent_outside_test_mode
    assert result.bit_blocked_outside_test_mode


def test_production_build_cost(benchmark):
    production = compile_component(BoundedStack, test_mode=False)
    assert production is BoundedStack  # literally the original class
    benchmark(_drive, production)


def test_instrumented_test_mode_cost(benchmark):
    instrumented = compile_component(
        BoundedStack, test_mode=True, check_invariants=True
    )

    def drive_in_test_mode():
        with access.test_mode():
            _drive(instrumented)

    benchmark(drive_in_test_mode)


def test_instrumented_off_mode_cost(benchmark):
    instrumented = compile_component(
        BoundedStack, test_mode=True, check_invariants=True
    )
    benchmark(_drive, instrumented)
