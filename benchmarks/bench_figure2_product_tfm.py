"""Figures 1–3 — the Product component, its TFM, and the t-spec text.

Regenerates the paper's running example: the Figure-2 transaction flow
model with the use-case path highlighted (create → obtain data → remove →
destroy), plus the Figure-3 textual t-spec round trip.  The benchmark
measures transaction enumeration, the operation the Driver Generator
performs on every generation run.
"""

from __future__ import annotations

from repro.components import PRODUCT_SPEC
from repro.experiments.figures import (
    figure1_product_interface,
    figure2_product_tfm,
    figure3_tspec_roundtrip,
)
from repro.tfm.graph import TransactionFlowGraph
from repro.tfm.transactions import enumerate_transactions


def test_figure2_enumeration_speed(benchmark):
    graph = TransactionFlowGraph(PRODUCT_SPEC)
    result = benchmark(enumerate_transactions, graph)
    assert len(result) > 10
    assert not result.truncated


def test_figure123_artefacts(benchmark):
    figure2 = benchmark(figure2_product_tfm)

    print()
    print(figure1_product_interface())
    print()
    print(figure2.ascii_rendering)
    print(f"\n{figure2.summary()}")

    # Figure-2 shape: the 6-node model with the highlighted use case.
    assert figure2.metrics.nodes == 6
    assert figure2.metrics.links == 14
    assert figure2.use_case_path.length == 4
    assert "*" in figure2.ascii_rendering
    assert "digraph" in figure2.dot_rendering

    # Figure 3: the textual t-spec is faithful (parse ∘ write = identity).
    text, roundtrips = figure3_tspec_roundtrip()
    assert roundtrips
    assert "Attribute ('qty', range, 1, 99999)" in text  # Figure 3's example
