"""Table 3 — experiment 2: base-class faults under the incremental suite.

Regenerates the paper's Table 3: three methods of the **base** ``CObList``
are mutated, ``CSortableObList`` is re-derived over each mutated base, and
only the subclass's *incremental* test set runs (inherited-only
transactions are not rerun, per sec. 3.4.2).  The contrast runs score the
same mutants under the base class's own suite and the subclass's full
suite.

Paper reference: 159 mutants, 101 killed, score **63.5%** — dramatically
below Table 2's 95.7%, the paper's argument that not retesting inherited
features "can be dangerous".  Expected shape here: the incremental score
sits clearly below the Table-2 score and at-or-below the contrast suites.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.table3 import run_table3


def test_table3_full_experiment(benchmark):
    result = run_once(benchmark, run_table3, with_contrast_runs=True)

    print()
    print(result.generation.summary())
    print(f"incremental test set: {len(result.plan.executed_suite)} cases "
          f"({result.plan.summary()})")
    print(result.incremental_table.format())
    base_table = result.base_suite_table
    full_table = result.full_suite_table
    print(f"\ncontrast — base's own suite:    {base_table.total_score:.1%}")
    print(f"contrast — full subclass suite: {full_table.total_score:.1%}")
    print(result.summary())

    table = result.incremental_table
    # Pool size: same order as the paper's 159.
    assert 100 <= table.total_generated <= 280
    # Headline (paper: 63.5% vs 95.7%): the incremental suite leaves a
    # substantial escape population — clearly below the Table-2 regime.
    assert table.total_score < 0.90
    assert len(result.incremental_run.survivors) >= 15
    # The full subclass suite is at least as strong as the incremental one.
    assert full_table.total_killed >= table.total_killed
    # Per-method rows all present.
    for method in ("AddHead", "RemoveAt", "RemoveHead"):
        assert table.method_total(method) > 0
