"""Scenario sweep throughput — the CI corpus through the sweep runner.

Runs the builtin registry's ``ci`` group (40 scenarios: 5 generated
families × 2 seeds × 4 operators) through one
:class:`~repro.scenarios.sweep.SweepRunner` per configuration:

* ``serial`` — workers=1, inflight=1 (the reference row);
* the **pipelining matrix** — workers=2 at inflight 1, 2 and 4, all
  interleaving on the multi-tenant shared worker pool;
* ``warm`` — a second inflight=4 sweep over a populated scenario store
  (every scenario replays from the segment file: zero mutants executed,
  zero reference passes).

Every configuration's deterministic report projection must be
byte-identical to the serial row's, and the whole corpus must gate green
(zero oracle failures, zero scenario errors).

The asserted wall-clock property: pipelining must not *lose* — the best
inflight>1 row must be no slower than the inflight=1 row on the same
worker count (tolerance for scheduler noise).  Raw speedups are recorded,
not asserted: on a single-CPU container overlapping prep with execution
cannot beat the CPU-time bound.  The warm row is the machine-independent
win and is asserted to replay entirely from the store.

Results go to ``BENCH_scenario_sweep.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.mutation.cache import MutationOutcomeCache
from repro.mutation.parallel import shutdown_shared_pool
from repro.scenarios import SweepRunner, builtin_registry

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_scenario_sweep.json"

FILTER = "ci"

#: Scheduler-noise allowance on the pipelined-vs-sequential gate.
PIPELINE_TOLERANCE = 1.15


def run_bench() -> dict:
    registry = builtin_registry()
    workspace = Path(tempfile.mkdtemp(prefix="bench-sweep-"))
    cache_dir = Path(tempfile.mkdtemp(prefix="bench-sweep-cache-"))

    serial_report = SweepRunner(
        registry, workers=1, workspace=workspace
    ).run(filter_expression=FILTER)
    baseline = serial_report.to_json(timings=False)

    matrix = []
    for inflight in (1, 2, 4):
        report = SweepRunner(
            registry, workers=2, inflight=inflight, workspace=workspace
        ).run(filter_expression=FILTER)
        matrix.append({
            "workers": 2,
            "inflight": inflight,
            "seconds": round(report.elapsed_seconds, 3),
            "deterministic": report.to_json(timings=False) == baseline,
        })

    cold_cache = MutationOutcomeCache(cache_dir)
    cold_report = SweepRunner(
        registry, workers=2, inflight=4, workspace=workspace,
        cache=cold_cache,
    ).run(filter_expression=FILTER)
    warm_cache = MutationOutcomeCache(cache_dir)
    warm_report = SweepRunner(
        registry, workers=2, inflight=4, workspace=workspace,
        cache=warm_cache,
    ).run(filter_expression=FILTER)
    shutdown_shared_pool()

    sequential_seconds = matrix[0]["seconds"]
    pipelined_seconds = min(row["seconds"] for row in matrix[1:])
    return {
        "benchmark": "scenario_sweep",
        "workload": {
            "filter": FILTER,
            "registry_fingerprint": registry.fingerprint()[:16],
            "scenarios": len(serial_report.results),
            "mutants": serial_report.mutants_total,
            "killed": serial_report.mutants_killed,
        },
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_report.elapsed_seconds, 3),
        "pipeline_matrix": matrix,
        "sequential_seconds": sequential_seconds,
        "pipelined_seconds": pipelined_seconds,
        "pipelined_vs_sequential": round(
            sequential_seconds / pipelined_seconds, 3
        ),
        "warm_cold_seconds": round(cold_report.elapsed_seconds, 3),
        "warm_seconds": round(warm_report.elapsed_seconds, 3),
        "warm_speedup": round(
            cold_report.elapsed_seconds / warm_report.elapsed_seconds, 2
        ),
        "warm_scenario_hits": warm_cache.scenario_stats()["hits"],
        "deterministic_across_engines": (
            all(row["deterministic"] for row in matrix)
            and cold_report.to_json(timings=False) == baseline
            and warm_report.to_json(timings=False) == baseline
        ),
        "oracle_failures": serial_report.total_oracle_failures,
        "scenario_errors": len(serial_report.errors),
    }


def write_report(data: dict) -> None:
    OUTPUT_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_scenario_sweep_throughput(benchmark):
    from conftest import run_once

    data = run_once(benchmark, run_bench)
    write_report(data)

    print()
    print(json.dumps(data, indent=2))

    assert data["workload"]["scenarios"] == 40
    assert data["deterministic_across_engines"]
    assert data["oracle_failures"] == 0
    assert data["scenario_errors"] == 0
    # Pipelining must not lose against the sequential scheduler on the
    # same worker count (the 0.79× regression class).
    assert data["pipelined_seconds"] <= \
        data["sequential_seconds"] * PIPELINE_TOLERANCE
    # The warm sweep replays every scenario from the store.
    assert data["warm_scenario_hits"] == data["workload"]["scenarios"]
    assert data["warm_seconds"] < data["warm_cold_seconds"]
    assert OUTPUT_PATH.exists()


if __name__ == "__main__":
    report = run_bench()
    write_report(report)
    print(json.dumps(report, indent=2))
