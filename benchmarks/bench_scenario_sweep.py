"""Scenario sweep throughput — the CI corpus through the sweep runner.

Runs the builtin registry's ``ci`` group (40 scenarios: 5 generated
families × 2 seeds × 4 operators) once serially and once on 2 workers
through one :class:`~repro.scenarios.sweep.SweepRunner` each, recording
wall-clock, scenario/mutant throughput and the determinism check (the two
runs' deterministic report projections must be byte-identical).  Results
go to ``BENCH_scenario_sweep.json`` at the repository root.

Speedup is recorded, not asserted — on a single-CPU container the pool
cannot win.  The guarded properties are determinism across engines and a
green gate (zero oracle failures, zero scenario errors) on the whole CI
corpus under real load.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.mutation.parallel import shutdown_shared_pool
from repro.scenarios import SweepRunner, builtin_registry

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_scenario_sweep.json"

FILTER = "ci"


def run_bench() -> dict:
    registry = builtin_registry()
    workspace = Path(tempfile.mkdtemp(prefix="bench-sweep-"))

    serial_report = SweepRunner(
        registry, workers=1, workspace=workspace
    ).run(filter_expression=FILTER)
    parallel_report = SweepRunner(
        registry, workers=2, workspace=workspace
    ).run(filter_expression=FILTER)
    shutdown_shared_pool()

    deterministic = (serial_report.to_json(timings=False)
                     == parallel_report.to_json(timings=False))
    return {
        "benchmark": "scenario_sweep",
        "workload": {
            "filter": FILTER,
            "registry_fingerprint": registry.fingerprint()[:16],
            "scenarios": len(serial_report.results),
            "mutants": serial_report.mutants_total,
            "killed": serial_report.mutants_killed,
        },
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_report.elapsed_seconds, 3),
        "parallel_seconds": round(parallel_report.elapsed_seconds, 3),
        "speedup": round(
            serial_report.elapsed_seconds
            / parallel_report.elapsed_seconds, 3
        ),
        "scenarios_per_second": round(
            len(serial_report.results)
            / serial_report.elapsed_seconds, 2
        ),
        "deterministic_across_engines": deterministic,
        "oracle_failures": serial_report.total_oracle_failures,
        "scenario_errors": len(serial_report.errors),
    }


def write_report(data: dict) -> None:
    OUTPUT_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_scenario_sweep_throughput(benchmark):
    from conftest import run_once

    data = run_once(benchmark, run_bench)
    write_report(data)

    print()
    print(json.dumps(data, indent=2))

    assert data["workload"]["scenarios"] == 40
    assert data["deterministic_across_engines"]
    assert data["oracle_failures"] == 0
    assert data["scenario_errors"] == 0
    assert OUTPUT_PATH.exists()


if __name__ == "__main__":
    report = run_bench()
    write_report(report)
    print(json.dumps(report, indent=2))
