"""Sec. 3.4.2 / sec. 4 accounting — suite sizes and incremental reuse.

The paper reports, for the ``CSortableObList`` experiment, "a total of 233
test cases were generated for this class, for a test model composed of 16
nodes and 43 links […] the class reused 329 test cases from its
superclass."  This bench regenerates that accounting: model sizes, new vs
reused case counts, and the incremental plan's decision breakdown.
"""

from __future__ import annotations

from conftest import run_once

from repro.components import OBLIST_SPEC, SORTABLE_OBLIST_SPEC
from repro.experiments.config import incremental_plan
from repro.history.model import TransactionStatus


def test_testgen_accounting(benchmark):
    plan = run_once(benchmark, incremental_plan)

    base_counts = OBLIST_SPEC.stats()
    subclass_counts = SORTABLE_OBLIST_SPEC.stats()
    stats = plan.stats()

    print()
    print(f"base model:      {base_counts['nodes']} nodes, "
          f"{base_counts['links']} links")
    print(f"subclass model:  {subclass_counts['nodes']} nodes, "
          f"{subclass_counts['links']} links   (paper: 16 nodes, 43 links)")
    print(f"new test cases:    {stats['new_cases']}   (paper: 233)")
    print(f"reused test cases: {stats['reused_cases']}   (paper: 329)")
    print(f"decisions: {stats['new_transactions']} new, "
          f"{stats['reused_transactions']} reused, "
          f"{stats['retest_transactions']} retest transactions")
    print(plan.history.summary())

    # The paper's exact model size is reproduced by construction.
    assert subclass_counts["nodes"] == 16
    assert subclass_counts["links"] == 43
    # Case counts land in the paper's order of magnitude.
    assert 150 <= stats["new_cases"] <= 600
    assert 150 <= stats["reused_cases"] <= 600
    # Reuse accounting is exact: every reused case maps to a REUSED
    # transaction of the history.
    reused_history_cases = sum(
        len(entry.case_idents)
        for entry in plan.history.with_status(TransactionStatus.REUSED)
    )
    assert reused_history_cases == stats["reused_cases"]
