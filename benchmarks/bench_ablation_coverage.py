"""Ablation — coverage criterion strength (sec. 3.4.1).

The paper calls transaction coverage "the weakest criterion among the ones
presented in [Beizer]" yet finds it useful.  This ablation compares the
transaction-coverage suite against greedy node-coverage and link-coverage
suites over the same model, on suite size and kill power, plus the
loop-bound study for cyclic models (DESIGN.md §5.1).

Expected shape: node ⊆ link ⊆ transaction in suite size, with kill power
increasing in the same order — structural criteria are much cheaper but
miss interaction faults that only specific method sequences reveal.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablations import coverage_ablation, edge_bound_ablation


def test_coverage_criterion_ablation(benchmark):
    result = run_once(benchmark, coverage_ablation, stride=4)

    print()
    print(result.format())

    by_name = {row.criterion: row for row in result.rows}
    transaction = by_name["transaction coverage"]
    node = by_name["node coverage (greedy)"]
    link = by_name["link coverage (greedy)"]

    # Suite sizes: structural criteria are far cheaper.
    assert node.cases <= link.cases <= transaction.cases
    assert node.transactions < transaction.transactions
    # Kill power follows the same order (transaction coverage wins).
    assert node.kills <= link.kills <= transaction.kills
    assert transaction.kills > 0


def test_edge_bound_ablation(benchmark):
    rows = run_once(benchmark, edge_bound_ablation, bounds=(1, 2, 3))

    print()
    for row in rows:
        print(f"  {row.class_name:<14} bound={row.edge_bound}  "
              f"{row.transactions:5d} transactions"
              f"{'  [truncated]' if row.truncated else ''}")

    by_class = {}
    for row in rows:
        by_class.setdefault(row.class_name, []).append(row.transactions)
    for class_name, counts in by_class.items():
        # Loopier bounds strictly grow the transaction set on cyclic models.
        assert counts[0] < counts[1] < counts[2], class_name
