"""Coverage-guided pruning — executed-case reduction and wall-clock.

Runs the two paper subjects' mutant batteries twice each — exhaustive and
pruned — on truncated suites, and writes ``BENCH_mutation_coverage.json``
at the repository root:

* ``CSortableObList`` over the Table 2 methods (each mutant lives in one of
  five methods, so most suite cases are irrelevant to most mutants);
* ``CObList`` over the Table 3 methods under its own suite.

The asserted contract is the pruned≡unpruned guarantee under real load:
both pruned runs must pass ``same_results`` against their exhaustive
counterparts, and at least one subject must skip ≥30% of its mutant×case
executions.  Wall-clock speedups are *recorded* for machines to compare.

Also asserts the :class:`~repro.mutation.sandbox.StepBudgetGuard` tracer's
overhead stays within a generous bound (the guard's fast path is the
hottest code in any mutant run).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro.components import CObList, CSortableObList, OBLIST_TYPE_MODEL
from repro.experiments.config import (
    TABLE2_METHODS,
    TABLE3_METHODS,
    oblist_oracle,
    oblist_suite,
    sortable_oracle,
    sortable_suite,
)
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.generate import generate_mutants
from repro.mutation.sandbox import StepBudgetGuard

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_mutation_coverage.json"

MAX_CASES = 150

#: Line-event tracing costs tens of interpreter operations per line; the
#: bound is deliberately generous (CI machines vary) — it exists to catch a
#: rewrite that accidentally makes the tracer's fast path quadratic or
#: re-renders something per event, not to benchmark the interpreter.
GUARD_OVERHEAD_BOUND = 200.0


def _subject_bench(name, cut_class, methods, suite, oracle) -> dict:
    suite = replace(suite, cases=suite.cases[:MAX_CASES])
    mutants, _ = generate_mutants(
        cut_class, methods, type_model=OBLIST_TYPE_MODEL
    )

    exhaustive = MutationAnalysis(
        cut_class, suite, oracle=oracle, prune=False
    ).analyze(mutants)
    pruned = MutationAnalysis(
        cut_class, suite, oracle=oracle, prune=True
    ).analyze(mutants)

    reduction = (
        1.0 - pruned.cases_executed / exhaustive.cases_executed
        if exhaustive.cases_executed else 0.0
    )
    return {
        "class": name,
        "methods": list(methods),
        "mutants": len(mutants),
        "suite_cases": len(suite),
        "killed": len(pruned.killed),
        "identical_to_exhaustive": pruned.same_results(exhaustive),
        "cases_executed_exhaustive": exhaustive.cases_executed,
        "cases_executed_pruned": pruned.cases_executed,
        "cases_skipped": pruned.cases_skipped,
        "executed_case_reduction": round(reduction, 4),
        "exhaustive_seconds": round(exhaustive.elapsed_seconds, 3),
        "pruned_seconds": round(pruned.elapsed_seconds, 3),
        "speedup": round(
            exhaustive.elapsed_seconds / pruned.elapsed_seconds, 3
        ) if pruned.elapsed_seconds else 0.0,
    }


def _guard_overhead(repeats: int = 5) -> dict:
    """Min-over-repeats ratio of guarded vs unguarded execution time."""

    def workload():
        total = 0
        for value in range(20_000):
            total += value
        return total

    guard = StepBudgetGuard(budget=10_000_000)
    plain_best = min(
        _timed(workload) for _ in range(repeats)
    )
    guarded_best = min(
        _timed(lambda: guard(workload)) for _ in range(repeats)
    )
    return {
        "plain_seconds": round(plain_best, 6),
        "guarded_seconds": round(guarded_best, 6),
        "overhead_ratio": round(guarded_best / plain_best, 2),
        "bound": GUARD_OVERHEAD_BOUND,
    }


def _timed(function) -> float:
    started = time.perf_counter()
    function()
    return time.perf_counter() - started


def run_bench() -> dict:
    return {
        "benchmark": "mutation_coverage",
        "cpu_count": os.cpu_count(),
        "subjects": [
            _subject_bench(
                "CSortableObList", CSortableObList, TABLE2_METHODS,
                sortable_suite(), sortable_oracle(),
            ),
            _subject_bench(
                "CObList", CObList, TABLE3_METHODS,
                oblist_suite(), oblist_oracle(),
            ),
        ],
        "step_budget_guard": _guard_overhead(),
    }


def write_report(data: dict) -> None:
    OUTPUT_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_coverage_pruning_reduction(benchmark):
    from conftest import run_once

    data = run_once(benchmark, run_bench)
    write_report(data)

    print()
    print(json.dumps(data, indent=2))

    # The contract under real load: pruning changes cost, never verdicts.
    for subject in data["subjects"]:
        assert subject["identical_to_exhaustive"], subject["class"]
        assert (subject["cases_executed_pruned"] + subject["cases_skipped"]
                >= subject["cases_executed_exhaustive"])
    # The headline: at least one paper subject skips >=30% of executions.
    assert any(
        subject["executed_case_reduction"] >= 0.30
        for subject in data["subjects"]
    ), [s["executed_case_reduction"] for s in data["subjects"]]
    guard = data["step_budget_guard"]
    assert guard["overhead_ratio"] < guard["bound"]
    assert OUTPUT_PATH.exists()


if __name__ == "__main__":
    report = run_bench()
    write_report(report)
    print(json.dumps(report, indent=2))
