"""Parallel mutation engine — serial vs 2/4-worker wall-clock, batched.

Runs the Table 1 workload (the full typed mutant pool over the Table 2
target methods of ``CSortableObList``, truncated suite) once serially,
once per worker count on the batched engine (adaptive chunking), and once
at 2 workers with batching forced off (``batch_size=1``) so the dispatch
overhead the batches remove is visible in the report.  Every parallel run
is checked field-for-field identical to the serial one; the result goes to
``BENCH_mutation_parallel.json`` at the repository root.

Speedup is *recorded*, not asserted: on a single-CPU container (common in
CI) the process pool cannot beat the serial loop and speedup hovers at or
below 1.0.  The property this benchmark guards is serial equivalence
under real load; the wall-clocks are there for machines with cores.  The
runs deliberately share the process-wide worker pool — later runs reuse
warm workers, which is exactly how back-to-back batteries behave in the
experiment drivers.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from pathlib import Path

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.experiments.config import TABLE2_METHODS, sortable_oracle, sortable_suite
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.generate import generate_mutants
from repro.mutation.parallel import (
    ParallelMutationAnalysis,
    default_batch_size,
    shutdown_shared_pool,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_mutation_parallel.json"

#: (workers, explicit batch size or None for the adaptive default)
RUN_MATRIX = ((2, None), (2, 1), (4, None))
MAX_CASES = 200


def _workload():
    suite = sortable_suite()
    suite = replace(suite, cases=suite.cases[:MAX_CASES])
    mutants, _ = generate_mutants(
        CSortableObList, TABLE2_METHODS, type_model=OBLIST_TYPE_MODEL
    )
    return suite, mutants


def run_bench() -> dict:
    suite, mutants = _workload()

    serial = MutationAnalysis(
        CSortableObList, suite, oracle=sortable_oracle()
    ).analyze(mutants)

    runs = []
    for workers, batch_size in RUN_MATRIX:
        parallel = ParallelMutationAnalysis(
            CSortableObList, suite, oracle=sortable_oracle(),
            workers=workers, batch_size=batch_size,
        ).analyze(mutants)
        runs.append({
            "workers": workers,
            "batch_size": (batch_size if batch_size is not None
                           else default_batch_size(serial.dispatched_count,
                                                   workers)),
            "adaptive": batch_size is None,
            "seconds": round(parallel.elapsed_seconds, 3),
            "speedup": round(
                serial.elapsed_seconds / parallel.elapsed_seconds, 3
            ),
            "identical_to_serial": parallel.same_results(serial),
            "step_timeouts": parallel.step_timeouts,
        })
    shutdown_shared_pool()

    return {
        "benchmark": "mutation_parallel",
        "workload": {
            "class": "CSortableObList",
            "methods": list(TABLE2_METHODS),
            "mutants": len(mutants),
            "dispatched": serial.dispatched_count,
            "suite_cases": len(suite),
            "killed": len(serial.killed),
        },
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial.elapsed_seconds, 3),
        "serial_step_timeouts": serial.step_timeouts,
        "runs": runs,
    }


def write_report(data: dict) -> None:
    OUTPUT_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_parallel_engine_scaling(benchmark):
    from conftest import run_once

    data = run_once(benchmark, run_bench)
    write_report(data)

    print()
    print(json.dumps(data, indent=2))

    # The contract under real load: every parallel run is serial-identical.
    assert all(run["identical_to_serial"] for run in data["runs"])
    assert [(run["workers"], None if run["adaptive"] else run["batch_size"])
            for run in data["runs"]] == list(RUN_MATRIX)
    assert data["serial_seconds"] > 0
    assert OUTPUT_PATH.exists()


if __name__ == "__main__":
    report = run_bench()
    write_report(report)
    print(json.dumps(report, indent=2))
