"""Run-telemetry overhead — instrumented vs plain mutation analysis.

Runs the ``CSortableObList`` Table-2 mutant battery twice on a truncated
suite — once with telemetry off (the ``NULL_TELEMETRY`` default) and once
streaming a full JSONL trace — and writes ``BENCH_obs_overhead.json`` at
the repository root.

Two contracts are asserted under real load:

* **No verdict drift** — the instrumented run passes
  ``MutationRun.same_results`` against the plain run (the differential
  suite proves this across seeds/workers/cache; the bench proves it on
  the full battery).
* **Bounded cost** — enabled telemetry stays under
  :data:`OVERHEAD_BOUND` (10%) of the plain run's wall-clock, min over
  :data:`REPEATS` repeats of each configuration.  The null path's cost is
  not separately measurable (it *is* the plain run — instrumented call
  sites default to the null object), which is the point.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro.components import CSortableObList, OBLIST_TYPE_MODEL
from repro.experiments.config import (
    TABLE2_METHODS,
    sortable_oracle,
    sortable_suite,
)
from repro.mutation.analysis import MutationAnalysis
from repro.mutation.generate import generate_mutants
from repro.obs import JsonlSink, Telemetry, validate_jsonl

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_obs_overhead.json"

MAX_CASES = 120
REPEATS = 3

#: The acceptance bound: telemetry on must cost <10% over telemetry off.
OVERHEAD_BOUND = 0.10


def _battery(telemetry=None):
    suite = replace(
        sortable_suite(), cases=sortable_suite().cases[:MAX_CASES]
    )
    mutants, _ = generate_mutants(
        CSortableObList, TABLE2_METHODS, type_model=OBLIST_TYPE_MODEL,
        telemetry=telemetry,
    )
    run = MutationAnalysis(
        CSortableObList, suite, oracle=sortable_oracle(),
        telemetry=telemetry,
    ).analyze(mutants)
    return run


def _timed(function):
    started = time.perf_counter()
    result = function()
    return time.perf_counter() - started, result


def run_bench(trace_dir=None) -> dict:
    trace_dir = Path(trace_dir) if trace_dir is not None else REPO_ROOT
    plain_best, plain_run = None, None
    for _ in range(REPEATS):
        seconds, run = _timed(_battery)
        if plain_best is None or seconds < plain_best:
            plain_best, plain_run = seconds, run

    traced_best, traced_run, events = None, None, 0
    trace_path = trace_dir / "bench_obs_trace.jsonl"
    for _ in range(REPEATS):
        telemetry = Telemetry(sink=JsonlSink(trace_path))
        seconds, run = _timed(lambda: _battery(telemetry))
        telemetry.close()
        if traced_best is None or seconds < traced_best:
            traced_best, traced_run = seconds, run
            events = telemetry.events_emitted
    with open(trace_path, "r", encoding="utf-8") as stream:
        validated = validate_jsonl(stream)
    trace_path.unlink()

    overhead = traced_best / plain_best - 1.0
    return {
        "benchmark": "obs_overhead",
        "cpu_count": os.cpu_count(),
        "subject": "CSortableObList",
        "methods": list(TABLE2_METHODS),
        "suite_cases": MAX_CASES,
        "mutants": len(plain_run.outcomes),
        "repeats": REPEATS,
        "same_results": traced_run.same_results(plain_run),
        "events_emitted": events,
        "events_validated": validated,
        "plain_seconds": round(plain_best, 3),
        "traced_seconds": round(traced_best, 3),
        "overhead_ratio": round(overhead, 4),
        "bound": OVERHEAD_BOUND,
    }


def write_report(data: dict) -> None:
    OUTPUT_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_obs_overhead(benchmark, tmp_path):
    from conftest import run_once

    data = run_once(benchmark, run_bench, tmp_path)
    write_report(data)

    print()
    print(json.dumps(data, indent=2))

    assert data["same_results"], "telemetry changed a verdict"
    assert data["events_emitted"] == data["events_validated"] > 0
    assert data["overhead_ratio"] < data["bound"], (
        f"telemetry overhead {data['overhead_ratio']:.1%} exceeds "
        f"{data['bound']:.0%}"
    )
    assert OUTPUT_PATH.exists()


if __name__ == "__main__":
    report = run_bench()
    write_report(report)
    print(json.dumps(report, indent=2))
