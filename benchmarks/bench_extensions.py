"""Extensions — the paper's future work, benchmarked.

Not tables/figures of the paper itself, but the extensions its sec. 6 and
related-work discussion point to, implemented in this repository:

* **interclass testing** (sec. 6 future work): generation + execution of
  the warehouse assembly (Provider + Product);
* **test-quality estimation** (Le Traon et al., sec. 5): sampled mutation
  score with a Wilson interval, and quality/budget-driven suite reduction;
* **set/reset** (sec. 3.3's optional capability): checkpoint/restore cost.
"""

from __future__ import annotations

from conftest import run_once

from repro.bit import access
from repro.bit.setreset import StateCheckpoint
from repro.components import (
    BankAccount,
    CSortableObList,
    OBLIST_TYPE_MODEL,
    WAREHOUSE_ASSEMBLY,
    WAREHOUSE_ROLES,
    reset_database,
)
from repro.experiments.config import sortable_oracle, sortable_suite
from repro.harness.outcomes import Verdict
from repro.interclass import AssemblyExecutor, InterclassDriverGenerator
from repro.mutation.generate import generate_mutants
from repro.mutation.quality import (
    estimate_suite_quality,
    select_by_budget,
    select_by_quality,
)


def test_interclass_warehouse(benchmark):
    def run():
        reset_database()
        suite = InterclassDriverGenerator(WAREHOUSE_ASSEMBLY, seed=7).generate()
        executor = AssemblyExecutor(WAREHOUSE_ASSEMBLY, WAREHOUSE_ROLES)
        return suite, executor.run_suite(suite)

    suite, result = run_once(benchmark, run)
    print()
    print(suite.summary())
    print(result.summary())
    assert result.all_passed
    assert len(suite) > 20
    assert not result.by_verdict(Verdict.INCOMPLETE)


def test_quality_estimation(benchmark):
    suite = sortable_suite()

    estimate = run_once(
        benchmark,
        estimate_suite_quality,
        CSortableObList, suite, ("Sort1", "Sort2", "ShellSort",
                                 "FindMax", "FindMin"),
        sample_size=120, seed=11,
        oracle=sortable_oracle(), type_model=OBLIST_TYPE_MODEL,
    )
    print()
    print(estimate.summary())
    # The sampled estimate approximates the full-run kill rate (561/709 ≈
    # 79.1%); a 95% interval misses ~1 run in 20, so assert a margin rather
    # than strict bracketing.
    assert estimate.sampled == 120
    assert abs(estimate.estimate - 0.791) < 0.12
    assert (estimate.high - estimate.low) < 0.25
    assert estimate.low <= estimate.estimate <= estimate.high


def test_quality_driven_reduction(benchmark):
    from dataclasses import replace

    suite = sortable_suite()
    relevant = replace(suite, cases=tuple(
        case for case in suite.cases
        if any(step.method_name in ("FindMax", "FindMin") for step in case.steps)
    )[:100])
    mutants, _ = generate_mutants(
        CSortableObList, ["FindMax", "FindMin"], type_model=OBLIST_TYPE_MODEL
    )

    def run():
        by_quality = select_by_quality(
            CSortableObList, relevant, mutants[:60], target_quality=0.95,
            oracle=sortable_oracle(),
        )
        by_budget = select_by_budget(
            CSortableObList, relevant, mutants[:60], max_cases=5,
            oracle=sortable_oracle(),
        )
        return by_quality, by_budget

    by_quality, by_budget = run_once(benchmark, run)
    print()
    print(f"quality-driven: {by_quality.summary()}")
    print(f"budget-driven:  {by_budget.summary()}")
    assert by_quality.quality_ratio >= 0.95
    assert len(by_quality.suite) < len(relevant)
    assert len(by_budget.suite) <= 5


def test_setreset_checkpoint_cost(benchmark):
    with access.test_mode():
        account = BankAccount("bench", 1000)
        for _ in range(50):
            account.Deposit(10)
        checkpoint = StateCheckpoint(account)

        def capture_and_restore():
            account.Withdraw(100)
            checkpoint.restore()
            return account.GetBalance()

        balance = benchmark(capture_and_restore)
    assert balance == 1500
