"""Bounded execution of mutants.

An injected fault can turn a terminating loop into an infinite one (replace
the loop cursor with an attribute that never advances).  The paper ran
mutants as separate programs, where a hang is observed externally; in-process
we bound each guarded call with a **line-event budget**: a ``sys.settrace``
hook counts line events and raises :class:`SandboxTimeout` when the budget
is exhausted.  The budget is deterministic (same run → same count), unlike
wall-clock timeouts, so mutation scores are exactly reproducible.

The guard plugs into :class:`~repro.harness.executor.TestExecutor` via its
``step_guard`` parameter: each constructor call, method call, invariant
check and teardown runs under its own fresh budget.
"""

from __future__ import annotations

import sys
from typing import Any, Callable

from ..core.errors import SandboxTimeout

#: Default per-call budget.  The subject methods execute tens-to-hundreds of
#: lines per call on suite-sized inputs; 50k lines is ~3 orders of magnitude
#: of headroom while still cutting an infinite loop within milliseconds.
DEFAULT_STEP_BUDGET = 50_000


class StepBudgetGuard:
    """A step guard enforcing a line-event budget per guarded call."""

    def __init__(self, budget: int = DEFAULT_STEP_BUDGET):
        if budget < 1:
            raise ValueError("step budget must be positive")
        self.budget = budget
        self.timeouts = 0  # how many guarded calls were cut (observability)

    def __call__(self, function: Callable, *args: Any, **kwargs: Any) -> Any:
        # The tracer runs once per traced event, so it is the hottest code in
        # a mutant run.  Non-"line" events (call/return/exception) bail out
        # first, and the countdown lives in a closure cell rather than a list
        # so the common path is one compare + one subtract.
        remaining = self.budget

        def tracer(frame, event, arg):  # noqa: ARG001 — sys.settrace API
            nonlocal remaining
            if event != "line":
                return tracer
            remaining -= 1
            if remaining <= 0:
                raise SandboxTimeout(
                    f"step budget of {self.budget} line events exhausted "
                    f"in {getattr(function, '__name__', function)!r}"
                )
            return tracer

        previous = sys.gettrace()
        sys.settrace(tracer)
        try:
            return function(*args, **kwargs)
        except SandboxTimeout:
            self.timeouts += 1
            raise
        finally:
            sys.settrace(previous)


class CallCountGuard:
    """A guard that only counts calls (used to measure suite cost in tests)."""

    def __init__(self):
        self.calls = 0

    def __call__(self, function: Callable, *args: Any, **kwargs: Any) -> Any:
        self.calls += 1
        return function(*args, **kwargs)
