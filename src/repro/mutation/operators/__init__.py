"""The five essential interface mutation operators of Table 1."""

from .base import (
    MAXINT,
    MININT,
    REQUIRED_CONSTANTS,
    MethodContext,
    MutationOperator,
    MutationPoint,
    OperatorRegistry,
    UseSite,
    infer_attribute_universe,
    render_expr,
)
from .ind_var_bit_neg import IndVarBitNeg
from .ind_var_rep_ext import IndVarRepExt
from .ind_var_rep_glob import IndVarRepGlob
from .ind_var_rep_loc import IndVarRepLoc
from .ind_var_rep_req import IndVarRepReq

#: The operator battery of Table 1, in the paper's column order.
ALL_OPERATORS = (
    IndVarBitNeg(),
    IndVarRepGlob(),
    IndVarRepLoc(),
    IndVarRepExt(),
    IndVarRepReq(),
)

OPERATOR_NAMES = tuple(operator.name for operator in ALL_OPERATORS)

__all__ = [
    "ALL_OPERATORS",
    "IndVarBitNeg",
    "IndVarRepExt",
    "IndVarRepGlob",
    "IndVarRepLoc",
    "IndVarRepReq",
    "MAXINT",
    "MININT",
    "MethodContext",
    "MutationOperator",
    "MutationPoint",
    "OPERATOR_NAMES",
    "OperatorRegistry",
    "REQUIRED_CONSTANTS",
    "UseSite",
    "infer_attribute_universe",
    "render_expr",
]
