"""The five essential interface mutation operators of Table 1."""

from .base import (
    MAXINT,
    MININT,
    REQUIRED_CONSTANTS,
    MethodContext,
    MutationOperator,
    MutationPoint,
    OperatorRegistry,
    UseSite,
    infer_attribute_universe,
    render_expr,
)
from .ind_var_bit_neg import IndVarBitNeg
from .ind_var_rep_ext import IndVarRepExt
from .ind_var_rep_glob import IndVarRepGlob
from .ind_var_rep_loc import IndVarRepLoc
from .ind_var_rep_req import IndVarRepReq

#: The operator battery of Table 1, in the paper's column order.
ALL_OPERATORS = (
    IndVarBitNeg(),
    IndVarRepGlob(),
    IndVarRepLoc(),
    IndVarRepExt(),
    IndVarRepReq(),
)

OPERATOR_NAMES = tuple(operator.name for operator in ALL_OPERATORS)

#: name → operator instance, for declarative configs that select by name.
OPERATORS_BY_NAME = {operator.name: operator for operator in ALL_OPERATORS}


def select_operators(names):
    """Resolve operator names to instances, preserving Table-1 order.

    Declarative scenario configs name their operator subset; resolution is
    order-insensitive (the battery always applies operators in the
    paper's column order) and strict — an unknown name raises
    :class:`~repro.core.errors.MutationError` listing the valid set.
    """
    from ...core.errors import MutationError

    unknown = sorted(set(names) - set(OPERATOR_NAMES))
    if unknown:
        raise MutationError(
            f"unknown mutation operator(s) {', '.join(unknown)}; "
            f"valid: {', '.join(OPERATOR_NAMES)}"
        )
    wanted = set(names)
    return tuple(op for op in ALL_OPERATORS if op.name in wanted)


__all__ = [
    "ALL_OPERATORS",
    "IndVarBitNeg",
    "IndVarRepExt",
    "IndVarRepGlob",
    "IndVarRepLoc",
    "IndVarRepReq",
    "MAXINT",
    "MININT",
    "MethodContext",
    "MutationOperator",
    "MutationPoint",
    "OPERATOR_NAMES",
    "OPERATORS_BY_NAME",
    "OperatorRegistry",
    "select_operators",
    "REQUIRED_CONSTANTS",
    "UseSite",
    "infer_attribute_universe",
    "render_expr",
]
