"""``IndVarRepGlob`` — "Replaces non-interface variable by G(R2)".

Each load use of a local variable is replaced by each class attribute the
method *uses* (its "globals"): ``x`` becomes ``self._head``, ``self._count``,
… — one mutant per (use, attribute) pair.
"""

from __future__ import annotations

from typing import List, Sequence

from .base import MethodContext, MutationOperator, MutationPoint, attribute_expr


class IndVarRepGlob(MutationOperator):
    """Replace local-variable uses with attributes used in the method."""

    name = "IndVarRepGlob"

    def points(self, context: MethodContext) -> Sequence[MutationPoint]:
        found: List[MutationPoint] = []
        for site in context.use_sites:
            for attribute in context.G:
                found.append(
                    MutationPoint(
                        site=site,
                        replacement=attribute_expr(attribute),
                        description=(
                            f"replace {site.variable} at line {site.line} "
                            f"with self.{attribute} (G)"
                        ),
                    )
                )
        return found
