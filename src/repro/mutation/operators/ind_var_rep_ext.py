"""``IndVarRepExt`` — "Replaces non-interface variable by E(R2)".

Each load use of a local variable is replaced by each class attribute the
method does **not** use — the classic "picked up the wrong member" fault in
interactions between methods of the same class.
"""

from __future__ import annotations

from typing import List, Sequence

from .base import MethodContext, MutationOperator, MutationPoint, attribute_expr


class IndVarRepExt(MutationOperator):
    """Replace local-variable uses with attributes NOT used in the method."""

    name = "IndVarRepExt"

    def points(self, context: MethodContext) -> Sequence[MutationPoint]:
        found: List[MutationPoint] = []
        for site in context.use_sites:
            for attribute in context.E:
                found.append(
                    MutationPoint(
                        site=site,
                        replacement=attribute_expr(attribute),
                        description=(
                            f"replace {site.variable} at line {site.line} "
                            f"with self.{attribute} (E)"
                        ),
                    )
                )
        return found
