"""Interface-mutation machinery: variable classification and AST rewriting.

Interface mutation (Delamaro; paper sec. 4, Table 1) models faults in the
interaction between a caller R1 and a callee R2 by perturbing, inside R2,
the points where values flow across the interface.  For OO components the
paper instantiates it per *method*: R2 is a method of the class, its
"global variables" are the class's attributes, and the operators act on
uses of **non-interface variables** — the set L(R2) ∪ E(R2), where

* ``L(R2)`` — local variables defined in R2 (formal parameters are
  *interface* variables and are excluded);
* ``G(R2)`` — "globals" (class attributes, ``self.<attr>``) used in R2;
* ``E(R2)`` — class attributes *not* used in R2;
* ``RC``    — required constants: NULL (``None``), MAXINT, MININT, 0, 1, -1.

A *use site* is an occurrence of a local variable in load (read) context.
Each operator derives one mutant per (use site × replacement) pair; the
generator compiles every mutant and discards the (rare, in Python) ones
that fail to compile, mirroring the paper's "individually compiled, to
assure that all faulty classes compiled cleanly".
"""

from __future__ import annotations

import ast
import builtins
import inspect
import textwrap
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ...core.errors import MutationError

#: The RC set (Table 1): NULL plus the classic integer edge constants.
#: MAXINT/MININT are the 32-bit C limits the paper's setting implies.
MAXINT = 2_147_483_647
MININT = -2_147_483_648
REQUIRED_CONSTANTS: Tuple = (None, 0, 1, -1, MAXINT, MININT)


@dataclass(frozen=True)
class UseSite:
    """One load-context occurrence of a local variable in a method body."""

    variable: str
    occurrence: int  # 0-based index among load uses, in AST walk order
    line: int
    column: int

    def describe(self) -> str:
        return f"{self.variable}@{self.line}:{self.column}"


class MethodContext:
    """Parsed view of one method: AST, variable sets, use sites.

    ``attribute_universe`` is the set of instance attributes the *class*
    owns (needed for E(R2)); when omitted it is inferred from the defining
    class's full source.
    """

    def __init__(self, owner: type, method_name: str,
                 attribute_universe: Optional[Set[str]] = None):
        self.owner = owner
        self.method_name = method_name
        function = _find_defining_dict(owner, method_name)
        self.source = textwrap.dedent(inspect.getsource(function))
        try:
            module = ast.parse(self.source)
        except SyntaxError as error:
            raise MutationError(
                f"cannot parse source of {owner.__name__}.{method_name}: {error}"
            ) from error
        if not module.body or not isinstance(
            module.body[0], (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            raise MutationError(
                f"source of {owner.__name__}.{method_name} is not a function"
            )
        self.tree: ast.Module = module
        self.function: ast.FunctionDef = module.body[0]

        self.parameters: Tuple[str, ...] = tuple(
            argument.arg for argument in self.function.args.args
            if argument.arg != "self"
        )
        self.locals: Tuple[str, ...] = tuple(sorted(_assigned_names(self.function)
                                                    - set(self.parameters) - {"self"}))
        universe = (attribute_universe if attribute_universe is not None
                    else infer_attribute_universe(owner))
        # G(R2) holds *data* attributes only: a `self.helper()` call names a
        # method, not a "global variable" in Table 1's sense.
        self.attributes_used: Tuple[str, ...] = tuple(
            sorted(_self_attributes(self.function) & universe)
        )
        self.attributes_unused: Tuple[str, ...] = tuple(
            sorted(universe - set(self.attributes_used))
        )
        self.use_sites: Tuple[UseSite, ...] = tuple(self._collect_use_sites())

    # -- variable sets (Table 1 notation) ----------------------------------

    @property
    def L(self) -> Tuple[str, ...]:  # noqa: N802 — paper notation
        """Local variables defined in R2."""
        return self.locals

    @property
    def G(self) -> Tuple[str, ...]:  # noqa: N802
        """Class attributes ("globals") used in R2."""
        return self.attributes_used

    @property
    def E(self) -> Tuple[str, ...]:  # noqa: N802
        """Class attributes not used in R2."""
        return self.attributes_unused

    # -- use sites ------------------------------------------------------------

    def _collect_use_sites(self) -> Iterator[UseSite]:
        local_set = set(self.locals)
        counters: Dict[str, int] = {}
        for node in ast.walk(self.function):
            if (isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in local_set):
                index = counters.get(node.id, 0)
                counters[node.id] = index + 1
                yield UseSite(
                    variable=node.id,
                    occurrence=index,
                    line=getattr(node, "lineno", 0),
                    column=getattr(node, "col_offset", 0),
                )

    # -- mutation --------------------------------------------------------------

    def mutate_use(self, site: UseSite,
                   replacement: ast.expr) -> ast.Module:
        """A fresh module AST with the given use replaced by ``replacement``."""
        module = ast.parse(self.source)
        transformer = _UseReplacer(site, replacement)
        mutated = transformer.visit(module)
        if not transformer.replaced:
            raise MutationError(
                f"use site {site.describe()} not found when re-parsing "
                f"{self.owner.__name__}.{self.method_name}"
            )
        ast.fix_missing_locations(mutated)
        return mutated

    def compile_mutant(self, module: ast.Module):
        """Compile a mutated module and return the resulting function object.

        The function is evaluated in the defining module's globals so that
        imported helpers (contract checks, node classes) resolve exactly as
        in the original.
        """
        import warnings

        with warnings.catch_warnings():
            # Replacements like `x is None` → `0 is None` trip SyntaxWarning;
            # the "weird" comparison is the injected fault itself.
            warnings.simplefilter("ignore", SyntaxWarning)
            code = compile(module, filename=f"<mutant of {self.method_name}>",
                           mode="exec")
        defining_module = inspect.getmodule(self.owner)
        namespace: Dict = {}
        globals_dict = dict(vars(defining_module)) if defining_module else {}
        exec(code, globals_dict, namespace)  # noqa: S102 — mutant construction
        try:
            return namespace[self.function.name]
        except KeyError:
            raise MutationError(
                f"compiled mutant of {self.method_name} did not define "
                f"{self.function.name!r}"
            ) from None


class _UseReplacer(ast.NodeTransformer):
    """Replaces the N-th load use of one local variable with an expression."""

    def __init__(self, site: UseSite, replacement: ast.expr):
        self._site = site
        self._replacement = replacement
        self._seen = 0
        self.replaced = False

    def visit_Name(self, node: ast.Name):  # noqa: N802 — ast API
        if (isinstance(node.ctx, ast.Load)
                and node.id == self._site.variable
                and not self.replaced):
            if self._seen == self._site.occurrence:
                self.replaced = True
                replacement = ast.copy_location(self._replacement, node)
                return replacement
            self._seen += 1
        return node


# ---------------------------------------------------------------------------
# Replacement expression builders
# ---------------------------------------------------------------------------


def name_expr(variable: str) -> ast.expr:
    return ast.Name(id=variable, ctx=ast.Load())


def attribute_expr(attribute: str) -> ast.expr:
    return ast.Attribute(
        value=ast.Name(id="self", ctx=ast.Load()),
        attr=attribute,
        ctx=ast.Load(),
    )


def constant_expr(value) -> ast.expr:
    return ast.Constant(value=value)


def bitneg_expr(variable: str) -> ast.expr:
    return ast.UnaryOp(op=ast.Invert(), operand=name_expr(variable))


def render_expr(expression: ast.expr) -> str:
    try:
        return ast.unparse(expression)
    except Exception:  # pragma: no cover — unparse failure is cosmetic only
        return "<expr>"


# ---------------------------------------------------------------------------
# Class-level helpers
# ---------------------------------------------------------------------------


def _find_defining_dict(owner: type, method_name: str):
    """The plain function implementing ``method_name``, defined on ``owner``.

    The method must live in ``owner.__dict__``: interface mutation targets
    "the methods of the target class" — inherited methods are mutated on the
    class that defines them (the second experiment mutates the *base*).
    """
    candidate = owner.__dict__.get(method_name)
    if candidate is None:
        raise MutationError(
            f"{owner.__name__} does not define method {method_name!r} itself; "
            "mutate the defining class instead"
        )
    if isinstance(candidate, (staticmethod, classmethod)):
        candidate = candidate.__func__
    if not callable(candidate):
        raise MutationError(
            f"{owner.__name__}.{method_name} is not a callable method"
        )
    return candidate


def _assigned_names(function: ast.FunctionDef) -> Set[str]:
    """Names bound anywhere in the body (locals)."""
    names: Set[str] = set()

    def collect_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect_target(element)
        elif isinstance(target, ast.Starred):
            collect_target(target.value)

    for node in ast.walk(function):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                collect_target(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            collect_target(node.target)
        elif isinstance(node, ast.For):
            collect_target(node.target)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            collect_target(node.optional_vars)
        elif isinstance(node, ast.comprehension):
            collect_target(node.target)
        elif isinstance(node, (ast.NamedExpr,)):
            collect_target(node.target)
    # Builtins shadowing is legal but confusing in reports; keep them anyway
    # (they are genuine locals) but drop compiler artefacts.
    return {name for name in names if not name.startswith("__")}


def _self_attributes(function: ast.FunctionDef) -> Set[str]:
    """Instance attributes touched as ``self.<attr>`` (read or write)."""
    attributes: Set[str] = set()
    for node in ast.walk(function):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            attributes.add(node.attr)
    return attributes


#: Method names whose self-attribute uses do not define data attributes.
_NON_DATA = set(dir(builtins))


def infer_attribute_universe(owner: type) -> Set[str]:
    """All *data* attributes instances of ``owner`` carry.

    Inferred from the full class hierarchy's sources: every ``self.<attr>``
    that is assigned somewhere (``self.x = …``) is a data attribute;
    attributes only ever called (``self.Method()``) are not.
    """
    universe: Set[str] = set()
    for klass in owner.__mro__:
        if klass is object:
            continue
        try:
            source = textwrap.dedent(inspect.getsource(klass))
            tree = ast.parse(source)
        except (OSError, TypeError, SyntaxError):
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
                if isinstance(node.value, ast.Name) and node.value.id == "self":
                    universe.add(node.attr)
    return universe


# ---------------------------------------------------------------------------
# Operator interface
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MutationPoint:
    """One concrete mutation: a use site and its replacement expression."""

    site: UseSite
    replacement: ast.expr
    description: str


class MutationOperator:
    """Base class of the five Table-1 operators."""

    #: Table-1 operator name, e.g. ``IndVarBitNeg``.
    name = "AbstractOperator"

    def points(self, context: MethodContext) -> Sequence[MutationPoint]:
        """All mutation points this operator derives from a method."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


def operator_registry() -> "OperatorRegistry":
    """The default registry with all five paper operators installed."""
    from . import ALL_OPERATORS
    return OperatorRegistry(ALL_OPERATORS)


class OperatorRegistry:
    """Named lookup over a set of operators."""

    def __init__(self, operators: Sequence[MutationOperator]):
        self._operators: List[MutationOperator] = list(operators)

    def __iter__(self) -> Iterator[MutationOperator]:
        return iter(self._operators)

    def __len__(self) -> int:
        return len(self._operators)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(op.name for op in self._operators)

    def by_name(self, name: str) -> MutationOperator:
        for operator in self._operators:
            if operator.name == name:
                return operator
        raise KeyError(f"unknown mutation operator {name!r}")
