"""``IndVarRepLoc`` — "Replaces non-interface variable by L(R2)".

Each load use of a local variable is replaced by each *other* local defined
in the method (replacing a variable with itself is the identity and is
skipped — the paper's mutants are, by construction, syntactic changes).
"""

from __future__ import annotations

from typing import List, Sequence

from .base import MethodContext, MutationOperator, MutationPoint, name_expr


class IndVarRepLoc(MutationOperator):
    """Replace local-variable uses with other locals of the same method."""

    name = "IndVarRepLoc"

    def points(self, context: MethodContext) -> Sequence[MutationPoint]:
        found: List[MutationPoint] = []
        for site in context.use_sites:
            for other in context.L:
                if other == site.variable:
                    continue
                found.append(
                    MutationPoint(
                        site=site,
                        replacement=name_expr(other),
                        description=(
                            f"replace {site.variable} at line {site.line} "
                            f"with {other} (L)"
                        ),
                    )
                )
        return found
