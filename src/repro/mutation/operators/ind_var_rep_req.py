"""``IndVarRepReq`` — "Replaces non-interface variable by RC".

Each load use of a local variable is replaced by each required constant:
NULL (``None``), 0, 1, -1, MAXINT and MININT — the "special values" faults
of Table 1.
"""

from __future__ import annotations

from typing import List, Sequence

from .base import (
    REQUIRED_CONSTANTS,
    MethodContext,
    MutationOperator,
    MutationPoint,
    constant_expr,
)


class IndVarRepReq(MutationOperator):
    """Replace local-variable uses with required constants."""

    name = "IndVarRepReq"

    def __init__(self, constants=REQUIRED_CONSTANTS):
        self.constants = tuple(constants)

    def points(self, context: MethodContext) -> Sequence[MutationPoint]:
        found: List[MutationPoint] = []
        for site in context.use_sites:
            for constant in self.constants:
                found.append(
                    MutationPoint(
                        site=site,
                        replacement=constant_expr(constant),
                        description=(
                            f"replace {site.variable} at line {site.line} "
                            f"with constant {constant!r} (RC)"
                        ),
                    )
                )
        return found
