"""``IndVarBitNeg`` — "Inserts bitwise negation at non-interface variable use".

At each load use of a local variable ``x``, the use becomes ``~x``.  In the
paper's C++ setting this compiles only for integral operands; Python compiles
it everywhere and fails at runtime for non-integral values — such mutants
are then killed by crash, the same detector class (i) of sec. 4.
"""

from __future__ import annotations

from typing import List, Sequence

from .base import MethodContext, MutationOperator, MutationPoint, bitneg_expr


class IndVarBitNeg(MutationOperator):
    """Insert ``~`` at every use of every local variable."""

    name = "IndVarBitNeg"

    def points(self, context: MethodContext) -> Sequence[MutationPoint]:
        found: List[MutationPoint] = []
        for site in context.use_sites:
            found.append(
                MutationPoint(
                    site=site,
                    replacement=bitneg_expr(site.variable),
                    description=(
                        f"negate use of {site.variable} at "
                        f"line {site.line} -> ~{site.variable}"
                    ),
                )
            )
        return found
