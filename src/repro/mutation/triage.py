"""Static equivalent-mutant triage: proving equivalence before execution.

"The determination of equivalent mutants is a non-decidable problem, so
they were obtained manually, by analyzing the mutants that were alive
after the tests" (sec. 4).  The dynamic deep probe
(:mod:`repro.mutation.equivalence`) approximates that manual pass by
re-executing every survivor under stronger suites — expensive, and it can
only ever say *likely* equivalent.  This module adds the cheap static half
of the story: three escalating checks, each of which **proves** its
verdict, run before a single mutant is dispatched.

1. **Normalized-AST identity.**  The original and the mutated method are
   reparsed, stripped of docstrings and dead ``pass`` padding, run through
   a small set of provably value-preserving folds, and canonically
   unparsed.  Identical text means the mutant compiles to the same program
   as the original — equivalent by construction.

2. **Bytecode identity.**  Both normalized ASTs are compiled (CPython's
   compiler constant-folds genuinely constant expressions, so ``1 + 1``
   and ``2`` meet here even though their ASTs differ) and the resulting
   code objects are compared facet by facet — ``co_code``, ``co_consts``
   (recursively, with constant *types* distinguished so ``1`` never equals
   ``1.0`` or ``True``), ``co_names``, ``co_varnames``, free/cell vars and
   flags; filenames and line tables are ignored.  Identical facets mean
   the interpreter executes the very same instructions — again equivalent
   by construction, catching same-value replacements the AST check
   misses.

3. **Cross-mutant redundancy.**  Mutants of one method whose normalized
   bytecode is pairwise identical behave identically under *every* suite
   (:mod:`repro.mutation.generate` only drops *textually* identical
   sources).  The first member of each class, in submission order, is the
   **representative**; only it is executed, and its verdict is propagated
   to the rest of the group.

**Soundness of the folds.**  Every fold claims semantic identity, so each
is either universally valid in Python or gated on the producer-declared
type model (:mod:`repro.mutation.typemodel` — the same C++-typing fiction
the generation gate uses):

* docstring removal — docstrings are inert data (they only change
  ``__doc__``, which no oracle observes);
* dead ``pass`` removal — ``pass`` is a no-op; it is only removed from
  bodies that keep at least one other statement;
* ``not not E`` → ``E`` in *test position only* (``if``/``while``/
  ``assert``/conditional-expression tests, comprehension guards): both
  sides call ``__bool__`` once and branch identically, for every Python
  value;
* ``E + 0``, ``0 + E``, ``E - 0``, ``E * 1``, ``1 * E`` → ``E`` and
  ``~~E``, ``--E``, ``+E`` → ``E`` **only** when ``E`` is a local variable
  whose inferred tag is integral under the supplied type model (Python
  ints are closed under these identities; without a model the folds are
  off, because ``x + 0`` is *not* an identity for, say, ``True`` or a
  float ``-0.0``).

The soundness property test (``tests/mutation/test_triage.py``) checks the
whole construction empirically: no statically-equivalent mutant is ever
killed by any generated suite, across seeds, operators and every shipped
component.

A triage verdict depends only on the owner's method source, the mutated
source and the fold configuration, so verdicts are **content-addressed**
in the same store as mutant outcomes (:meth:`repro.mutation.cache.\
MutationOutcomeCache.lookup_triage`) and replayed on warm runs.

``python -m repro.mutation.triage`` renders the triage of a table battery
as findings through the :mod:`repro.analysis` machinery (text, JSON, or
SARIF 2.1.0 — rules ``MT001``–``MT004``).
"""

from __future__ import annotations

import ast
import enum
import inspect
import textwrap
import types
import warnings
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import MutationError
from ..core.fingerprint import sha256_hex
from ..obs import Telemetry, coalesce
from .typemodel import INTEGRAL_TAGS, TypeModel, infer_local_types

if TYPE_CHECKING:  # imported lazily to keep triage <- analysis acyclic
    from .cache import MutationOutcomeCache
    from .generate import GenerationReport
    from .mutant import CompiledMutant


class TriageStatus(enum.Enum):
    """What the static pass proved about one mutant."""

    #: Normalized AST identical to the original — equivalent, never run.
    AST_EQUIVALENT = "ast_equivalent"
    #: Normalized bytecode identical to the original — equivalent, never run.
    BYTECODE_EQUIVALENT = "bytecode_equivalent"
    #: Normalized bytecode identical to an earlier mutant (the group
    #: representative) — only the representative runs; its verdict is
    #: propagated.
    REDUNDANT = "redundant"
    #: Nothing proven; the mutant is executed normally.
    UNDECIDED = "undecided"


#: The two statuses that prove equivalence *to the original* (redundant
#: mutants are equivalent to each other, not to the original).
EQUIVALENT_STATUSES = (
    TriageStatus.AST_EQUIVALENT,
    TriageStatus.BYTECODE_EQUIVALENT,
)


@dataclass(frozen=True)
class MutantTriage:
    """The static verdict for one mutant."""

    ident: str
    method_name: str
    status: TriageStatus
    #: Normalized-bytecode digest of the mutated method (the redundancy
    #: grouping key; empty only if the mutated source failed to compile,
    #: which generation already prevents).
    digest: str = ""
    #: For ``REDUNDANT``: the ident of the executed group representative.
    representative: str = ""


@dataclass(frozen=True)
class StaticTriage:
    """The complete static triage of one mutant battery.

    Pure value object (picklable, comparable): the serial and parallel
    engines attach it to :class:`~repro.mutation.analysis.MutationRun`,
    and both consult it the same way, so the two engines skip exactly the
    same mutants.
    """

    class_name: str
    entries: Tuple[MutantTriage, ...] = ()
    #: Whether the integral folds were active (a type model was supplied);
    #: recorded so reports can say which normalization produced verdicts.
    typed_folds: bool = False
    _by_ident: Mapping[str, MutantTriage] = field(
        default=None, compare=False, repr=False  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_by_ident", {entry.ident: entry for entry in self.entries}
        )

    def __getstate__(self):
        # The ident index is derived; rebuild it on unpickle.
        return (self.class_name, self.entries, self.typed_folds)

    def __setstate__(self, state) -> None:
        class_name, entries, typed_folds = state
        object.__setattr__(self, "class_name", class_name)
        object.__setattr__(self, "entries", entries)
        object.__setattr__(self, "typed_folds", typed_folds)
        self.__post_init__()

    # -- lookups --------------------------------------------------------

    def status_of(self, ident: str) -> TriageStatus:
        entry = self._by_ident.get(ident)
        return entry.status if entry is not None else TriageStatus.UNDECIDED

    def representative_of(self, ident: str) -> str:
        """The executed stand-in for a redundant mutant ('' otherwise)."""
        entry = self._by_ident.get(ident)
        return entry.representative if entry is not None else ""

    def is_equivalent(self, ident: str) -> bool:
        """Proven equivalent to the original (never dispatched, survives)."""
        return self.status_of(ident) in EQUIVALENT_STATUSES

    def is_skipped(self, ident: str) -> bool:
        """Never dispatched: proven equivalent or redundant."""
        return self.status_of(ident) is not TriageStatus.UNDECIDED

    def partition(self, mutants: Sequence["CompiledMutant"]
                  ) -> Tuple[Dict[int, "CompiledMutant"],
                             Dict[int, "CompiledMutant"]]:
        """Split a battery into ``(equivalents, redundants)`` index maps.

        The dispatch plan the batched engine builds its batches from:
        indices in neither map are executable and may be grouped into
        worker batches freely; ``equivalents`` get survivor outcomes
        synthesized up front; ``redundants`` are filled *after* the pool
        drains, from their representative's then-known verdict (the
        representative always precedes its group in submission order, so
        it is never itself skipped).  Because skipped mutants never enter
        the pending queue, batching cannot change which mutants a triaged
        run ships to workers — the zero-dispatch guarantee survives any
        batch size.
        """
        equivalents: Dict[int, "CompiledMutant"] = {}
        redundants: Dict[int, "CompiledMutant"] = {}
        for index, mutant in enumerate(mutants):
            status = self.status_of(mutant.ident)
            if status is TriageStatus.REDUNDANT:
                redundants[index] = mutant
            elif status is not TriageStatus.UNDECIDED:
                equivalents[index] = mutant
        return equivalents, redundants

    # -- aggregates -----------------------------------------------------

    @property
    def ast_equivalent(self) -> Tuple[str, ...]:
        return self._with_status(TriageStatus.AST_EQUIVALENT)

    @property
    def bytecode_equivalent(self) -> Tuple[str, ...]:
        return self._with_status(TriageStatus.BYTECODE_EQUIVALENT)

    @property
    def equivalent(self) -> Tuple[str, ...]:
        """All idents proven equivalent to the original."""
        return tuple(
            entry.ident for entry in self.entries
            if entry.status in EQUIVALENT_STATUSES
        )

    @property
    def redundant(self) -> Tuple[str, ...]:
        return self._with_status(TriageStatus.REDUNDANT)

    @property
    def skipped(self) -> int:
        """Executions avoided: equivalent + redundant mutants."""
        return sum(
            1 for entry in self.entries
            if entry.status is not TriageStatus.UNDECIDED
        )

    def groups(self) -> Dict[str, Tuple[str, ...]]:
        """Representative ident → the redundant idents it stands in for."""
        grouped: Dict[str, List[str]] = {}
        for entry in self.entries:
            if entry.status is TriageStatus.REDUNDANT:
                grouped.setdefault(entry.representative, []).append(entry.ident)
        return {rep: tuple(members) for rep, members in grouped.items()}

    def _with_status(self, status: TriageStatus) -> Tuple[str, ...]:
        return tuple(
            entry.ident for entry in self.entries if entry.status is status
        )

    def summary(self) -> str:
        return (
            f"static triage: {len(self.ast_equivalent)} AST-equivalent, "
            f"{len(self.bytecode_equivalent)} bytecode-equivalent, "
            f"{len(self.redundant)} redundant "
            f"({len(self.entries) - self.skipped} of {len(self.entries)} "
            f"mutants executed)"
        )


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------


class _Normalizer(ast.NodeTransformer):
    """Applies the provably value-preserving folds documented above."""

    def __init__(self, integral_locals: frozenset):
        self._integral = integral_locals

    # -- docstrings and dead pass ---------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef):  # noqa: N802
        self.generic_visit(node)
        node.body = self._clean_body(node.body)
        return node

    visit_AsyncFunctionDef = visit_FunctionDef  # noqa: N815

    def visit_ClassDef(self, node: ast.ClassDef):  # noqa: N802
        self.generic_visit(node)
        node.body = self._clean_body(node.body)
        return node

    def visit_If(self, node: ast.If):  # noqa: N802
        self.generic_visit(node)
        node.test = self._fold_test(node.test)
        node.body = self._strip_pass(node.body)
        node.orelse = self._strip_pass(node.orelse, allow_empty=True)
        return node

    def visit_While(self, node: ast.While):  # noqa: N802
        self.generic_visit(node)
        node.test = self._fold_test(node.test)
        node.body = self._strip_pass(node.body)
        node.orelse = self._strip_pass(node.orelse, allow_empty=True)
        return node

    def visit_For(self, node: ast.For):  # noqa: N802
        self.generic_visit(node)
        node.body = self._strip_pass(node.body)
        node.orelse = self._strip_pass(node.orelse, allow_empty=True)
        return node

    def visit_Assert(self, node: ast.Assert):  # noqa: N802
        self.generic_visit(node)
        node.test = self._fold_test(node.test)
        return node

    def visit_IfExp(self, node: ast.IfExp):  # noqa: N802
        self.generic_visit(node)
        node.test = self._fold_test(node.test)
        return node

    def visit_comprehension(self, node: ast.comprehension):  # noqa: N802
        self.generic_visit(node)
        node.ifs = [self._fold_test(test) for test in node.ifs]
        return node

    # -- integral identity folds ----------------------------------------

    def visit_BinOp(self, node: ast.BinOp):  # noqa: N802
        self.generic_visit(node)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if self._is_int_const(node.right, 0) and self._integral_expr(node.left):
                return node.left
            if (isinstance(node.op, ast.Add)
                    and self._is_int_const(node.left, 0)
                    and self._integral_expr(node.right)):
                return node.right
        if isinstance(node.op, ast.Mult):
            if self._is_int_const(node.right, 1) and self._integral_expr(node.left):
                return node.left
            if self._is_int_const(node.left, 1) and self._integral_expr(node.right):
                return node.right
        return node

    def visit_UnaryOp(self, node: ast.UnaryOp):  # noqa: N802
        self.generic_visit(node)
        operand = node.operand
        if isinstance(node.op, ast.UAdd) and self._integral_expr(operand):
            # +x is the identity on ints.
            return operand
        if (isinstance(node.op, (ast.Invert, ast.USub))
                and isinstance(operand, ast.UnaryOp)
                and type(operand.op) is type(node.op)
                and self._integral_expr(operand.operand)):
            # ~~x and --x are identities on (unbounded) Python ints.
            return operand.operand
        return node

    # -- helpers --------------------------------------------------------

    def _clean_body(self, body: List[ast.stmt]) -> List[ast.stmt]:
        if (body and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)):
            body = body[1:]
        return self._strip_pass(body)

    @staticmethod
    def _strip_pass(body: List[ast.stmt],
                    allow_empty: bool = False) -> List[ast.stmt]:
        """Remove ``pass`` padding, keeping one when the body would empty."""
        kept = [stmt for stmt in body if not isinstance(stmt, ast.Pass)]
        if kept or allow_empty:
            return kept
        return [ast.Pass()] if body else body

    def _fold_test(self, test: ast.expr) -> ast.expr:
        # not not E in a test position branches identically to E.
        while (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)
               and isinstance(test.operand, ast.UnaryOp)
               and isinstance(test.operand.op, ast.Not)):
            test = test.operand.operand
        return test

    def _integral_expr(self, expression: ast.expr) -> bool:
        """Is this expression provably integral under the type model?"""
        if isinstance(expression, ast.Name):
            return expression.id in self._integral
        if isinstance(expression, ast.Constant):
            return (isinstance(expression.value, int)
                    and not isinstance(expression.value, bool))
        return False

    @staticmethod
    def _is_int_const(expression: ast.expr, value: int) -> bool:
        return (isinstance(expression, ast.Constant)
                and isinstance(expression.value, int)
                and not isinstance(expression.value, bool)
                and expression.value == value)


def _integral_locals(source: str, type_model: Optional[TypeModel]) -> frozenset:
    """Locals of the *original* method whose inferred tag is integral.

    The folds run over both the original and the mutated source; inferring
    tags once, from the original, keeps the two sides normalized under the
    same assumptions (the operators replace uses, not definitions, so the
    original's assignments still govern each local's type).
    """
    if type_model is None:
        return frozenset()
    try:
        function = ast.parse(source).body[0]
    except (SyntaxError, IndexError):
        return frozenset()
    if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return frozenset()
    tags = infer_local_types(function, type_model)
    integral = {
        name for name, tag in tags.items() if tag in INTEGRAL_TAGS
    }
    # Typed parameters are integral too (they are never reassigned to a
    # different tag under the C++ fiction the model encodes).
    for argument in function.args.args:
        if type_model.parameter_types.get(argument.arg) in INTEGRAL_TAGS:
            integral.add(argument.arg)
    return frozenset(integral)


def normalize_method_source(source: str,
                            integral_locals: frozenset = frozenset(),
                            ) -> ast.Module:
    """Parse and normalize one method's source (see the module docstring)."""
    try:
        module = ast.parse(textwrap.dedent(source))
    except SyntaxError as error:
        raise MutationError(f"cannot parse method source: {error}") from error
    normalized = _Normalizer(integral_locals).visit(module)
    return ast.fix_missing_locations(normalized)


def normalized_source_text(source: str,
                           integral_locals: frozenset = frozenset()) -> str:
    """Check 1's canonical form: the normalized AST, unparsed."""
    return ast.unparse(normalize_method_source(source, integral_locals)).strip()


def _code_facets(code: types.CodeType) -> tuple:
    """The semantically relevant facets of a code object, recursively.

    Filenames, first line numbers and line tables are excluded — they
    never change what the interpreter does.  Constant values are rendered
    with their type name so ``1``, ``1.0`` and ``True`` stay distinct.
    """
    consts = tuple(
        _code_facets(const) if isinstance(const, types.CodeType)
        else (type(const).__name__, repr(const))
        for const in code.co_consts
    )
    return (
        "code",
        code.co_argcount,
        code.co_posonlyargcount,
        code.co_kwonlyargcount,
        code.co_nlocals,
        code.co_flags,
        code.co_code,
        consts,
        code.co_names,
        code.co_varnames,
        code.co_freevars,
        code.co_cellvars,
        getattr(code, "co_exceptiontable", b""),
    )


def normalized_bytecode_digest(source: str,
                               integral_locals: frozenset = frozenset(),
                               ) -> str:
    """Check 2's identity: a digest over the normalized method's code.

    The normalized module is *compiled but never executed* — CPython's own
    compiler supplies the genuine constant folding (``1 + 1`` meets ``2``
    here) and the comparison walks the resulting code objects.
    """
    module = normalize_method_source(source, integral_locals)
    with warnings.catch_warnings():
        # Injected faults like `0 is None` trip SyntaxWarning by design.
        warnings.simplefilter("ignore", SyntaxWarning)
        module_code = compile(module, "<triage>", "exec")
    facets = tuple(
        _code_facets(const) for const in module_code.co_consts
        if isinstance(const, types.CodeType)
    )
    return sha256_hex("triage-bytecode", repr(facets))


# ---------------------------------------------------------------------------
# The triage pass
# ---------------------------------------------------------------------------


def _original_method_source(owner: type, method_name: str) -> str:
    """The defining class's source for one method (dedented)."""
    for klass in owner.__mro__:
        function = klass.__dict__.get(method_name)
        if function is None:
            continue
        if isinstance(function, (staticmethod, classmethod)):
            function = function.__func__
        try:
            return textwrap.dedent(inspect.getsource(function))
        except (OSError, TypeError) as error:
            raise MutationError(
                f"cannot read source of {owner.__name__}.{method_name}: "
                f"{error}"
            ) from error
    raise MutationError(
        f"{owner.__name__} has no method {method_name!r} anywhere in its MRO"
    )


def triage_fingerprint(owner: type, method_source: str, mutated_source: str,
                       integral_locals: frozenset) -> str:
    """Content address of one mutant's static verdict.

    Everything the verdict depends on: both sources, the fold
    configuration (the integral-local set fully determines which folds can
    fire), and the cache *key* version — the fingerprint recipe version,
    which the v3→v4 store-layout rewrite deliberately did not bump, so
    v3-era verdicts stay addressable — so a verdict is only ever replayed
    for byte-identical inputs.
    """
    from .cache import CACHE_KEY_VERSION

    return sha256_hex(
        "triage",
        f"v{CACHE_KEY_VERSION}",
        f"{owner.__module__}.{owner.__qualname__}",
        method_source,
        mutated_source,
        ",".join(sorted(integral_locals)),
    )


def triage_mutants(original_class: type,
                   mutants: Sequence["CompiledMutant"],
                   type_model: Optional[TypeModel] = None,
                   cache: Optional["MutationOutcomeCache"] = None,
                   telemetry: Optional[Telemetry] = None) -> StaticTriage:
    """Run the three static checks over a battery, in submission order.

    ``type_model`` enables the integral identity folds (the experiments
    pass the same model the generation gate uses); without it only the
    universally sound normalizations apply.  ``cache`` replays
    content-addressed per-mutant verdicts (checks 1 and 2; the redundancy
    grouping is derived from the digests each run, because it depends on
    which *other* mutants are in the battery).  ``telemetry`` receives the
    ``triage.*`` counters and a ``triage.run`` span.
    """
    obs = coalesce(telemetry)
    entries: List[MutantTriage] = []
    original_cache: Dict[str, Tuple[str, str, frozenset]] = {}
    representatives: Dict[Tuple[str, str], str] = {}

    def original_forms(method_name: str) -> Tuple[str, str, frozenset]:
        """(normalized text, bytecode digest, integral locals) per method."""
        cached = original_cache.get(method_name)
        if cached is None:
            source = _original_method_source(original_class, method_name)
            integral = _integral_locals(source, type_model)
            cached = (
                normalized_source_text(source, integral),
                normalized_bytecode_digest(source, integral),
                integral,
            )
            original_cache[method_name] = cached
        return cached

    with obs.span("triage.run", component=original_class.__name__,
                  mutants=len(mutants)) as span:
        for mutant in mutants:
            record = mutant.record
            method_source = _original_method_source(
                original_class, record.method_name
            )
            original_text, original_digest, integral = original_forms(
                record.method_name
            )
            key = None
            verdict: Optional[Tuple[TriageStatus, str]] = None
            if cache is not None:
                key = triage_fingerprint(
                    mutant.owner, method_source, record.mutated_source,
                    integral,
                )
                stored = cache.lookup_triage(key)
                if stored is not None:
                    try:
                        verdict = (TriageStatus(stored[0]), stored[1])
                    except ValueError:
                        verdict = None  # unknown status string: recompute
            if verdict is None:
                try:
                    mutated_text = normalized_source_text(
                        record.mutated_source, integral
                    )
                    if mutated_text == original_text:
                        verdict = (TriageStatus.AST_EQUIVALENT,
                                   original_digest)
                    else:
                        digest = normalized_bytecode_digest(
                            record.mutated_source, integral
                        )
                        if digest == original_digest:
                            verdict = (TriageStatus.BYTECODE_EQUIVALENT,
                                       digest)
                        else:
                            verdict = (TriageStatus.UNDECIDED, digest)
                except MutationError:
                    # A source ast.unparse rendered in a way that does not
                    # re-parse (possible for untyped batteries, e.g. an
                    # attribute assignment on an int constant).  Nothing is
                    # proven: the mutant executes normally, and the empty
                    # digest below keeps it out of redundancy grouping.
                    verdict = (TriageStatus.UNDECIDED, "")
                if cache is not None and key is not None:
                    cache.store_triage(key, verdict[0].value, verdict[1])
            status, digest = verdict
            representative = ""
            if status is TriageStatus.UNDECIDED and digest:
                group = (record.method_name, digest)
                earlier = representatives.get(group)
                if earlier is not None:
                    status = TriageStatus.REDUNDANT
                    representative = earlier
                else:
                    representatives[group] = record.ident
            entries.append(MutantTriage(
                ident=record.ident,
                method_name=record.method_name,
                status=status,
                digest=digest,
                representative=representative,
            ))

        triage = StaticTriage(
            class_name=original_class.__name__,
            entries=tuple(entries),
            typed_folds=type_model is not None,
        )
        if triage.ast_equivalent:
            obs.count("triage.ast_equivalent", len(triage.ast_equivalent))
        if triage.bytecode_equivalent:
            obs.count("triage.bytecode_equivalent",
                      len(triage.bytecode_equivalent))
        if triage.redundant:
            obs.count("triage.redundant_grouped", len(triage.redundant))
        span.set("skipped", triage.skipped)
    return triage


# ---------------------------------------------------------------------------
# The findings report (text / JSON / SARIF via repro.analysis)
# ---------------------------------------------------------------------------


def triage_registry():
    """The triage rule set, in the shape the SARIF emitter expects."""
    from ..analysis.findings import Severity
    from ..analysis.registry import Rule, RuleRegistry

    class _TriageRule(Rule):
        severity = Severity.INFO

        def check(self, unit):  # pragma: no cover — findings built directly
            return ()

    class AstEquivalent(_TriageRule):
        id = "MT001"
        name = "ast-equivalent-mutant"
        summary = ("Mutant's normalized AST is identical to the original "
                   "method (proven equivalent; never executed)")

    class BytecodeEquivalent(_TriageRule):
        id = "MT002"
        name = "bytecode-equivalent-mutant"
        summary = ("Mutant's normalized bytecode is identical to the "
                   "original method (proven equivalent; never executed)")

    class RedundantClass(_TriageRule):
        id = "MT003"
        name = "redundant-mutant-class"
        summary = ("Mutants with pairwise-identical normalized bytecode; "
                   "one representative is executed per class")

    class TextualDuplicate(_TriageRule):
        id = "MT004"
        name = "textual-duplicate-dropped"
        summary = ("Mutation point dropped at generation time because it "
                   "produced an already-seen method source")

    return RuleRegistry(
        (AstEquivalent(), BytecodeEquivalent(), RedundantClass(),
         TextualDuplicate())
    )


def _method_line(owner: type, method_name: str, offset: int) -> int:
    """Best-effort absolute source line for a mutant (1-based)."""
    for klass in owner.__mro__:
        function = klass.__dict__.get(method_name)
        if function is None:
            continue
        if isinstance(function, (staticmethod, classmethod)):
            function = function.__func__
        code = getattr(function, "__code__", None)
        if code is not None:
            return code.co_firstlineno + max(0, offset - 1)
    return max(1, offset)


def build_triage_findings(original_class: type,
                          mutants: Sequence["CompiledMutant"],
                          triage: StaticTriage,
                          generation: Optional["GenerationReport"] = None):
    """Render a triage (plus optional generation accounting) as findings.

    The result plugs straight into the ``repro.analysis`` emitters; the
    generation report's dropped-duplicate records let the report show both
    dedup layers side by side — textual duplicates caught at generation
    time (MT004) against bytecode-redundancy classes caught here (MT003).
    """
    from ..analysis.findings import Finding, LintResult, Severity

    path = inspect.getsourcefile(original_class) or "<unknown>"
    records = {mutant.record.ident: mutant.record for mutant in mutants}
    findings: List[Finding] = []

    def finding(rule_id: str, rule_name: str, line: int, message: str):
        findings.append(Finding(
            rule_id=rule_id,
            rule_name=rule_name,
            severity=Severity.INFO,
            path=path,
            line=line,
            message=message,
            component=original_class.__name__,
        ))

    for entry in triage.entries:
        record = records.get(entry.ident)
        if record is None or entry.status is TriageStatus.UNDECIDED:
            continue
        line = _method_line(original_class, record.method_name, record.line)
        title = (f"{record.ident} [{record.operator}] "
                 f"{record.method_name}: {record.description}")
        if entry.status is TriageStatus.AST_EQUIVALENT:
            finding("MT001", "ast-equivalent-mutant", line,
                    f"{title} — normalized AST identical to the original; "
                    f"proven equivalent, excluded from the score denominator")
        elif entry.status is TriageStatus.BYTECODE_EQUIVALENT:
            finding("MT002", "bytecode-equivalent-mutant", line,
                    f"{title} — normalized bytecode identical to the "
                    f"original; proven equivalent, excluded from the score "
                    f"denominator")
        elif entry.status is TriageStatus.REDUNDANT:
            finding("MT003", "redundant-mutant-class", line,
                    f"{title} — bytecode-identical to {entry.representative}; "
                    f"verdict propagated from the representative")
    if generation is not None:
        for dropped in generation.dropped:
            line = _method_line(original_class, dropped.method, dropped.line)
            finding("MT004", "textual-duplicate-dropped", line,
                    f"[{dropped.operator}] {dropped.method}: replacing "
                    f"{dropped.variable!r} (occurrence {dropped.occurrence}) "
                    f"with {dropped.replacement} duplicated an already-"
                    f"generated source ({dropped.kind}); dropped before "
                    f"compilation")
    result = LintResult(findings=findings, components=1, files=1)
    return result


# ---------------------------------------------------------------------------
# CLI: python -m repro.mutation.triage
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Triage a table battery and emit the findings report."""
    import argparse

    from ..analysis.report import render_json, render_sarif, render_text

    parser = argparse.ArgumentParser(
        prog="python -m repro.mutation.triage",
        description="Static equivalent-mutant triage report "
                    "(normalized-AST / bytecode identity, redundancy "
                    "classes) over a table battery.",
    )
    parser.add_argument(
        "--target", choices=("table2", "table3"), default="table2",
        help="battery to triage: table2 = CSortableObList experiment-1 "
             "pool, table3 = CObList base-class pool (default: table2)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    parser.add_argument(
        "--no-type-folds", action="store_true",
        help="disable the type-model-gated integral folds (universally "
             "sound normalizations only)",
    )
    arguments = parser.parse_args(argv)

    from ..components import CObList, CSortableObList, OBLIST_TYPE_MODEL
    from ..experiments.config import TABLE2_METHODS, TABLE3_METHODS
    from .generate import generate_mutants

    if arguments.target == "table2":
        target, methods, prefix = CSortableObList, TABLE2_METHODS, "M"
    else:
        target, methods, prefix = CObList, TABLE3_METHODS, "B"
    mutants, generation = generate_mutants(
        target, methods, ident_prefix=prefix, type_model=OBLIST_TYPE_MODEL
    )
    type_model = None if arguments.no_type_folds else OBLIST_TYPE_MODEL
    triage = triage_mutants(target, mutants, type_model=type_model)
    result = build_triage_findings(target, mutants, triage,
                                   generation=generation)

    if arguments.format == "sarif":
        rendered = render_sarif(result, registry=triage_registry())
    elif arguments.format == "json":
        rendered = render_json(result)
    else:
        rendered = "\n".join((
            render_text(result),
            generation.summary(),
            triage.summary(),
        ))
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    else:
        print(rendered)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
