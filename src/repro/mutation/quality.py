"""Test-quality estimation and quality-driven suite selection.

Le Traon et al. (discussed in the paper's related work, sec. 5) attach a
*test quality estimate* to each self-testable component — a mutation-based
measure that can "guide in the choice of a component" — and drive test-case
selection "either by quality or by the maximum number of test cases
desired".  This module brings both ideas into the Concat-style pipeline:

* :func:`estimate_suite_quality` — sample the component's mutant pool, run
  the suite, and report the estimated mutation score with a Wilson
  confidence interval (sampling keeps the estimate cheap enough to ship
  with the component);
* :func:`select_by_quality` / :func:`select_by_budget` — greedy reduction
  of a suite to the smallest case set achieving a target fraction of the
  full suite's kill power, or the strongest case set within a size budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.rng import ReproRandom
from ..generator.suite import TestSuite
from ..harness.oracles import CompositeOracle
from .analysis import ClassBuilder, MutationAnalysis, MutationRun
from .generate import generate_mutants
from .mutant import CompiledMutant
from .operators.base import MutationOperator
from .typemodel import TypeModel


@dataclass(frozen=True)
class QualityEstimate:
    """A sampled mutation-score estimate with its confidence interval."""

    class_name: str
    suite_size: int
    pool_size: int          # total mutants available
    sampled: int            # mutants actually executed
    killed: int
    confidence: float       # e.g. 0.95
    low: float              # Wilson interval bounds
    high: float
    seed: int

    @property
    def estimate(self) -> float:
        return self.killed / self.sampled if self.sampled else 0.0

    def summary(self) -> str:
        return (
            f"quality of {self.class_name}'s suite ({self.suite_size} cases): "
            f"{self.estimate:.1%} "
            f"[{self.low:.1%}, {self.high:.1%}] at {self.confidence:.0%} "
            f"confidence ({self.killed}/{self.sampled} sampled of "
            f"{self.pool_size} mutants)"
        )


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> Tuple[float, float]:
    """The Wilson score interval for a binomial proportion.

    Chosen over the normal approximation because sampled mutation scores
    sit near 1.0, exactly where the normal interval misbehaves.
    """
    if trials == 0:
        return 0.0, 1.0
    z = _z_value(confidence)
    proportion = successes / trials
    denominator = 1 + z * z / trials
    centre = (proportion + z * z / (2 * trials)) / denominator
    margin = (
        z * math.sqrt(
            proportion * (1 - proportion) / trials
            + z * z / (4 * trials * trials)
        ) / denominator
    )
    return max(0.0, centre - margin), min(1.0, centre + margin)


def _z_value(confidence: float) -> float:
    table = {0.80: 1.2816, 0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
    if confidence in table:
        return table[confidence]
    raise ValueError(
        f"unsupported confidence {confidence!r}; choose from {sorted(table)}"
    )


def estimate_suite_quality(component: type,
                           suite: TestSuite,
                           method_names: Sequence[str],
                           sample_size: int = 100,
                           confidence: float = 0.95,
                           seed: Optional[int] = None,
                           oracle: Optional[CompositeOracle] = None,
                           operators: Optional[Sequence[MutationOperator]] = None,
                           type_model: Optional[TypeModel] = None,
                           class_builder: Optional[ClassBuilder] = None,
                           setup: Optional[Callable[[], None]] = None,
                           ) -> QualityEstimate:
    """Estimate the suite's mutation score from a random mutant sample."""
    mutants, _ = generate_mutants(
        component, method_names, operators=operators, type_model=type_model
    )
    rng = ReproRandom(seed)
    if sample_size < len(mutants):
        sample = rng.sample(mutants, sample_size)
    else:
        sample = list(mutants)

    analysis = MutationAnalysis(
        component, suite, oracle=oracle,
        class_builder=class_builder, setup=setup,
    )
    run = analysis.analyze(sample)
    low, high = wilson_interval(len(run.killed), len(sample), confidence)
    return QualityEstimate(
        class_name=component.__name__,
        suite_size=len(suite),
        pool_size=len(mutants),
        sampled=len(sample),
        killed=len(run.killed),
        confidence=confidence,
        low=low,
        high=high,
        seed=rng.seed,
    )


# ---------------------------------------------------------------------------
# Quality-driven suite reduction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReducedSuite:
    """The outcome of quality- or budget-driven case selection."""

    suite: TestSuite
    kill_power: int           # mutants the reduced suite kills
    full_kill_power: int      # mutants the full suite kills
    mutants_considered: int

    @property
    def quality_ratio(self) -> float:
        if self.full_kill_power == 0:
            return 1.0
        return self.kill_power / self.full_kill_power

    def summary(self) -> str:
        return (
            f"reduced suite: {len(self.suite)} cases keep "
            f"{self.kill_power}/{self.full_kill_power} kills "
            f"({self.quality_ratio:.1%} of full power) over "
            f"{self.mutants_considered} sampled mutants"
        )


def _kill_map(component: type, suite: TestSuite,
              mutants: Sequence[CompiledMutant],
              oracle: Optional[CompositeOracle],
              class_builder: Optional[ClassBuilder],
              setup: Optional[Callable[[], None]]) -> Dict[str, Set[str]]:
    """case ident → set of mutant idents that case kills."""
    analysis = MutationAnalysis(
        component, suite, oracle=oracle, class_builder=class_builder,
        setup=setup, stop_on_first_kill=False,
    )
    run: MutationRun = analysis.analyze(mutants)
    kills: Dict[str, Set[str]] = {case.ident: set() for case in suite.cases}
    for outcome in run.outcomes:
        for case_ident in outcome.killing_cases:
            kills[case_ident].add(outcome.mutant.ident)
    return kills


def _greedy_selection(suite: TestSuite, kills: Dict[str, Set[str]],
                      stop: Callable[[int, Set[str]], bool],
                      ) -> Tuple[List[str], Set[str]]:
    """Pick cases by marginal kill gain until ``stop(cases, covered)``."""
    covered: Set[str] = set()
    chosen: List[str] = []
    remaining = {case.ident for case in suite.cases}
    while remaining and not stop(len(chosen), covered):
        # Max marginal gain; ident as tie-break keeps selection deterministic.
        best = max(remaining,
                   key=lambda ident: (len(kills[ident] - covered), ident))
        gain = kills[best] - covered
        if not gain:
            break
        chosen.append(best)
        covered |= gain
        remaining.discard(best)
    return chosen, covered


def select_by_quality(component: type, suite: TestSuite,
                      mutants: Sequence[CompiledMutant],
                      target_quality: float = 0.95,
                      oracle: Optional[CompositeOracle] = None,
                      class_builder: Optional[ClassBuilder] = None,
                      setup: Optional[Callable[[], None]] = None,
                      ) -> ReducedSuite:
    """Smallest greedy case set reaching ``target_quality`` of full power."""
    if not 0.0 < target_quality <= 1.0:
        raise ValueError("target_quality must be in (0, 1]")
    kills = _kill_map(component, suite, mutants, oracle, class_builder, setup)
    full_power: Set[str] = set().union(*kills.values()) if kills else set()
    needed = math.ceil(target_quality * len(full_power))

    chosen, covered = _greedy_selection(
        suite, kills, stop=lambda count, done: len(done) >= needed
    )
    reduced = suite.filtered(lambda case: case.ident in set(chosen))
    return ReducedSuite(
        suite=reduced,
        kill_power=len(covered),
        full_kill_power=len(full_power),
        mutants_considered=len(mutants),
    )


def select_by_budget(component: type, suite: TestSuite,
                     mutants: Sequence[CompiledMutant],
                     max_cases: int,
                     oracle: Optional[CompositeOracle] = None,
                     class_builder: Optional[ClassBuilder] = None,
                     setup: Optional[Callable[[], None]] = None,
                     ) -> ReducedSuite:
    """Strongest greedy case set within a size budget."""
    if max_cases < 1:
        raise ValueError("max_cases must be positive")
    kills = _kill_map(component, suite, mutants, oracle, class_builder, setup)
    full_power: Set[str] = set().union(*kills.values()) if kills else set()

    chosen, covered = _greedy_selection(
        suite, kills, stop=lambda count, done: count >= max_cases
    )
    reduced = suite.filtered(lambda case: case.ident in set(chosen))
    return ReducedSuite(
        suite=reduced,
        kill_power=len(covered),
        full_kill_power=len(full_power),
        mutants_considered=len(mutants),
    )
