"""Mutant generation pipeline.

For each target method of a class, apply every operator of the registry to
every applicable mutation point, compile the result, and keep the mutants
that compile cleanly (sec. 4).  Duplicates — distinct points that produce
textually identical method sources — are dropped, and every drop is counted
in the :class:`GenerationReport` (never silent).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.errors import MutationError
from ..obs import Telemetry, coalesce
from .mutant import CompiledMutant, Mutant
from .operators import ALL_OPERATORS
from .operators.base import (
    MethodContext,
    MutationOperator,
    MutationPoint,
    infer_attribute_universe,
    render_expr,
)
from .typemodel import (
    TypeModel,
    compatible,
    expression_tag,
    infer_local_types,
    negatable,
)


@dataclass(frozen=True)
class DroppedDuplicate:
    """One mutation point dropped at generation time, and why.

    ``kind`` is ``"duplicate-source"`` when the point produced a method
    source an earlier point already generated (same fault, different
    derivation — the textual analogue of the bytecode redundancy classes
    :mod:`repro.mutation.triage` groups), or ``"textual-noop"`` when it
    reproduced the original method verbatim (not a mutant at all).
    """

    method: str
    operator: str
    variable: str
    occurrence: int
    line: int
    replacement: str
    kind: str

    def title(self) -> str:
        return (
            f"[{self.operator}] {self.method}: {self.variable!r}"
            f"#{self.occurrence} -> {self.replacement} ({self.kind})"
        )


@dataclass
class GenerationReport:
    """Accounting of one generation run."""

    class_name: str
    methods: Tuple[str, ...]
    generated: int = 0
    compile_failures: int = 0
    duplicates: int = 0
    type_incompatible: int = 0  # rejected by the C++-typing gate
    per_method_operator: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: WHICH (point, operator) pairs the ``duplicates`` counter covers —
    #: one record per drop, in drop order, so the triage report can
    #: cross-check textual-dup drops against bytecode-redundancy classes.
    dropped: List[DroppedDuplicate] = field(default_factory=list)

    def count(self, method: str, operator: str) -> None:
        key = (method, operator)
        self.per_method_operator[key] = self.per_method_operator.get(key, 0) + 1
        self.generated += 1

    def drop_duplicate(self, method: str, operator: str, point,
                       kind: str) -> None:
        """Count one duplicate drop and record which point it was."""
        self.duplicates += 1
        self.dropped.append(DroppedDuplicate(
            method=method,
            operator=operator,
            variable=point.site.variable,
            occurrence=point.site.occurrence,
            line=point.site.line,
            replacement=render_expr(point.replacement),
            kind=kind,
        ))

    def summary(self) -> str:
        return (
            f"{self.class_name}: {self.generated} mutants over "
            f"{len(self.methods)} methods "
            f"({self.compile_failures} compile failures, "
            f"{self.duplicates} duplicates dropped, "
            f"{self.type_incompatible} type-incompatible rejected)"
        )


class MutantGenerator:
    """Generates compiled mutants for chosen methods of one class.

    With a :class:`~repro.mutation.typemodel.TypeModel`, replacements that
    would not have compiled under C++ typing are rejected — reproducing the
    paper's compile gate.  Without one, generation is unrestricted.
    """

    def __init__(self, target: type,
                 operators: Sequence[MutationOperator] = ALL_OPERATORS,
                 ident_prefix: str = "M",
                 type_model: Optional[TypeModel] = None,
                 telemetry: Optional[Telemetry] = None):
        self._target = target
        self._operators = tuple(operators)
        self._prefix = ident_prefix
        self._universe = infer_attribute_universe(target)
        self._type_model = type_model
        # Per-(method, operator) generation spans; the default null
        # session records nothing.
        self._obs = coalesce(telemetry)

    @property
    def target(self) -> type:
        return self._target

    def generate(self, method_names: Sequence[str],
                 ) -> Tuple[List[CompiledMutant], GenerationReport]:
        """All compiled mutants for the given methods, plus the accounting."""
        report = GenerationReport(
            class_name=self._target.__name__, methods=tuple(method_names)
        )
        mutants: List[CompiledMutant] = []
        seen_sources: Set[Tuple[str, str]] = set()
        number = 0
        original_sources = {
            name: self._context(name).source for name in method_names
        }
        # The no-op check compares against the *normalized* original (parsed
        # and unparsed, so formatting differences don't count as mutations).
        # Normalizing is O(method source) — hoisted out of the per-point loop,
        # which runs operators x points times per method.
        normalized_originals = {
            name: ast.unparse(ast.parse(source)).strip()
            for name, source in original_sources.items()
        }
        for method_name in method_names:
            context = self._context(method_name)
            local_types = (
                infer_local_types(context.function, self._type_model)
                if self._type_model is not None else {}
            )
            for operator in self._operators:
                with self._obs.span("generate.operator",
                                    method=method_name,
                                    operator=operator.name) as span:
                    produced_before = report.generated
                    for point in operator.points(context):
                        if not self._type_compatible(point, local_types):
                            report.type_incompatible += 1
                            continue
                        try:
                            module = context.mutate_use(
                                point.site, point.replacement
                            )
                            mutated_source = ast.unparse(module)
                        except MutationError:
                            report.compile_failures += 1
                            continue
                        key = (method_name, mutated_source)
                        if key in seen_sources:
                            report.drop_duplicate(
                                method_name, operator.name, point,
                                kind="duplicate-source",
                            )
                            continue
                        if (mutated_source.strip()
                                == normalized_originals[method_name]):
                            # Textual no-op: not a mutant at all.
                            report.drop_duplicate(
                                method_name, operator.name, point,
                                kind="textual-noop",
                            )
                            continue
                        seen_sources.add(key)
                        try:
                            function = context.compile_mutant(module)
                        except (MutationError, SyntaxError):
                            report.compile_failures += 1
                            continue
                        number += 1
                        record = Mutant(
                            ident=f"{self._prefix}{number:04d}",
                            operator=operator.name,
                            class_name=self._target.__name__,
                            method_name=method_name,
                            variable=point.site.variable,
                            occurrence=point.site.occurrence,
                            line=point.site.line,
                            replacement=render_expr(point.replacement),
                            description=point.description,
                            mutated_source=mutated_source,
                        )
                        mutants.append(
                            CompiledMutant(record, self._target, function)
                        )
                        report.count(method_name, operator.name)
                    span.set("mutants", report.generated - produced_before)
        return mutants, report

    def _context(self, method_name: str) -> MethodContext:
        return MethodContext(
            self._target, method_name, attribute_universe=set(self._universe)
        )

    def _type_compatible(self, point: MutationPoint,
                         local_types: Dict[str, Optional[str]]) -> bool:
        """Would this replacement have compiled under C++ typing?"""
        if self._type_model is None:
            return True
        variable_tag = local_types.get(point.site.variable)
        import ast as _ast

        replacement = point.replacement
        if (isinstance(replacement, _ast.UnaryOp)
                and isinstance(replacement.op, _ast.Invert)):
            # IndVarBitNeg: negation compiles on integral operands only.
            return negatable(variable_tag)
        replacement_tag = expression_tag(
            replacement, self._type_model, local_types
        )
        return compatible(variable_tag, replacement_tag)


def build_battery(target: type, method_names: Sequence[str],
                  operator_names: Optional[Sequence[str]] = None,
                  type_model: Optional[TypeModel] = None,
                  max_mutants: int = 0,
                  ident_prefix: str = "M",
                  telemetry: Optional[Telemetry] = None,
                  ) -> Tuple[List[CompiledMutant], GenerationReport, bool]:
    """A mutant battery from declarative inputs (registry entries).

    Unlike :func:`generate_mutants`, operators are selected by *name*
    (strict resolution, Table-1 order preserved) and the battery can be
    bounded: ``max_mutants > 0`` keeps the first N mutants in generation
    order — a deterministic prefix, so a budgeted scenario is a prefix of
    its unbudgeted self.  Returns ``(mutants, report, truncated)``.
    """
    from .operators import select_operators

    operators = (select_operators(operator_names)
                 if operator_names is not None else ALL_OPERATORS)
    mutants, report = generate_mutants(
        target, method_names,
        operators=operators,
        ident_prefix=ident_prefix,
        type_model=type_model,
        telemetry=telemetry,
    )
    truncated = bool(max_mutants) and len(mutants) > max_mutants
    if truncated:
        mutants = mutants[:max_mutants]
    return mutants, report, truncated


def generate_mutants(target: type, method_names: Sequence[str],
                     operators: Optional[Sequence[MutationOperator]] = None,
                     ident_prefix: str = "M",
                     type_model: Optional[TypeModel] = None,
                     telemetry: Optional[Telemetry] = None,
                     ) -> Tuple[List[CompiledMutant], GenerationReport]:
    """One-call convenience over :class:`MutantGenerator`."""
    generator = MutantGenerator(
        target,
        operators=operators if operators is not None else ALL_OPERATORS,
        ident_prefix=ident_prefix,
        type_model=type_model,
        telemetry=telemetry,
    )
    return generator.generate(method_names)
