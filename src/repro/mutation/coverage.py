"""Coverage-guided mutant×case pruning: who can possibly kill whom.

A mutant injected into method ``m`` differs from the original class in
``m``'s body and nowhere else.  A test case whose execution never enters
``m`` therefore runs **byte-identical code** on the mutant and on the
original — it deterministically replays the reference outcome and cannot
kill.  The paper's evaluation (sec. 4) runs every suite case over every
mutant anyway; this module records which CUT methods each case *actually*
executes — once, during the reference run — so the analysis engines can
skip the provably irrelevant (mutant, case) pairs while producing verdicts
bit-identical to the exhaustive run.

Coverage is **dynamic**, not static: the recorder is a ``sys.setprofile``
hook installed around each case by :class:`~repro.harness.executor.\
TestExecutor`'s ``case_tracer`` seam, mapping every entered frame back to a
CUT method by code object.  That makes indirect intra-class calls visible —
``Sort1`` calling ``IsSorted`` through a postcondition check marks
``IsSorted`` covered even though no test step names it — which is exactly
what the soundness argument needs (a case is skipped only when the mutated
method's code never ran, directly *or* transitively).  Static step
inspection would miss those edges and prune unsoundly.

The recorded :class:`CoverageMatrix` is pure data (case ident → frozen set
of method names): it pickles to parallel workers, and its content
fingerprint feeds the outcome-cache experiment key so pruned and unpruned
entries can never cross-contaminate.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..core.fingerprint import canonical, sha256_hex

if TYPE_CHECKING:  # imported lazily to keep coverage <- harness acyclic
    from ..generator.suite import TestSuite
    from ..generator.testcase import TestCase
    from ..harness.outcomes import SuiteResult


def _method_code_map(cut_class: type) -> Dict[object, str]:
    """Code object → method name, over the whole MRO of the class.

    Walking the MRO matters for experiment 2: the reference run executes
    ``CSortableObList``, but the mutants live in inherited ``CObList``
    methods, whose frames carry the base class's code objects.  Properties
    and static/class methods are unwrapped so their bodies map too.  When
    several classes define the same method name the *name* is what
    coverage records — pruning keys on the mutant's ``method_name``, so a
    subclass override executing still (conservatively) marks the name
    covered.
    """
    mapping: Dict[object, str] = {}
    for klass in cut_class.__mro__:
        if klass is object:
            continue
        for name, attribute in vars(klass).items():
            if isinstance(attribute, property):
                functions = (attribute.fget, attribute.fset, attribute.fdel)
            elif isinstance(attribute, (staticmethod, classmethod)):
                functions = (attribute.__func__,)
            else:
                functions = (attribute,)
            for function in functions:
                code = getattr(function, "__code__", None)
                if code is not None:
                    mapping.setdefault(code, name)
    return mapping


@dataclass(frozen=True)
class CoverageMatrix:
    """Per test case, the CUT methods its reference run dynamically executed.

    Pure value object: picklable to workers, canonicalisable for the
    outcome-cache fingerprint.  ``covers`` errs on the safe side — a case
    the matrix has never seen is reported as covering everything, so it is
    executed rather than skipped.
    """

    class_name: str
    methods_by_case: Mapping[str, FrozenSet[str]] = field(default_factory=dict)

    def covers(self, case_ident: str, method_name: str) -> bool:
        """May this case's execution reach ``method_name``?

        ``True`` for unknown cases (never recorded → never prune them);
        ``False`` only when the case was recorded and the method's code
        provably did not run.
        """
        covered = self.methods_by_case.get(case_ident)
        if covered is None:
            return True
        return method_name in covered

    def cases_covering(self, method_name: str) -> Tuple[str, ...]:
        return tuple(
            ident for ident, covered in self.methods_by_case.items()
            if method_name in covered
        )

    def methods_of(self, case_ident: str) -> FrozenSet[str]:
        return self.methods_by_case.get(case_ident, frozenset())

    def fingerprint(self) -> str:
        """Content hash — part of the outcome-cache experiment key, so a
        pruned entry can only ever be replayed under the exact matrix that
        justified its skips."""
        return sha256_hex("coverage-matrix", canonical(self))

    def density(self, method_name: str) -> float:
        """Fraction of recorded cases covering the method (observability)."""
        if not self.methods_by_case:
            return 1.0
        return len(self.cases_covering(method_name)) / len(self.methods_by_case)

    def __len__(self) -> int:
        return len(self.methods_by_case)


class MethodCoverageTracer:
    """Records a :class:`CoverageMatrix` through the executor's case seam.

    Pass :meth:`tracing` as ``TestExecutor(case_tracer=…)``: around each
    complete case the tracer installs a ``sys.setprofile`` hook that maps
    every Python ``call`` event back to a CUT method via the code-object
    table.  The profile hook only *observes* — the reference results are
    bit-identical to an untraced run — and it sees every activation in the
    case's dynamic extent: direct test steps, intra-class sibling calls,
    invariant checks, teardown, and final-state capture.
    """

    def __init__(self, cut_class: type):
        self._class_name = cut_class.__name__
        self._method_by_code = _method_code_map(cut_class)
        self._covered: Dict[str, Set[str]] = {}

    @contextmanager
    def tracing(self, case: "TestCase") -> Iterator[None]:
        hit = self._covered.setdefault(case.ident, set())
        method_by_code = self._method_by_code

        def profiler(frame, event, arg):  # noqa: ARG001 — sys.setprofile API
            if event == "call":
                name = method_by_code.get(frame.f_code)
                if name is not None:
                    hit.add(name)

        previous = sys.getprofile()
        sys.setprofile(profiler)
        try:
            yield
        finally:
            sys.setprofile(previous)

    def matrix(self) -> CoverageMatrix:
        return CoverageMatrix(
            class_name=self._class_name,
            methods_by_case={
                ident: frozenset(methods)
                for ident, methods in self._covered.items()
            },
        )


def record_coverage(cut_class: type, suite: "TestSuite",
                    check_invariants: bool = True,
                    setup: Optional[Callable[[], None]] = None,
                    telemetry=None,
                    ) -> Tuple["SuiteResult", CoverageMatrix]:
    """One instrumented pass: the reference results *and* their coverage.

    This is the single extra-cost operation of pruning — the suite runs
    once on the original class under the profile hook, yielding both the
    golden :class:`~repro.harness.outcomes.SuiteResult` the oracles judge
    against and the matrix that licenses every later skip.  ``telemetry``
    (a :class:`repro.obs.Telemetry`) gives the pass per-case timing spans;
    observation only.
    """
    from ..harness.executor import TestExecutor

    if setup is not None:
        setup()
    tracer = MethodCoverageTracer(cut_class)
    executor = TestExecutor(
        cut_class,
        check_invariants=check_invariants,
        case_tracer=tracer.tracing,
        telemetry=telemetry,
    )
    reference = executor.run_suite(suite)
    return reference, tracer.matrix()
