"""Mutant records and mutant class construction.

"Each mutant was created as a separate class, and they were individually
compiled, to assure that all faulty classes compiled cleanly" (sec. 4).

A :class:`Mutant` is the immutable record of one injected fault (operator,
method, location, what replaced what, the mutated source).  The companion
:class:`CompiledMutant` additionally carries the compiled function object
and knows how to **materialise** itself as a separate class:

* :meth:`CompiledMutant.build_class` — a fresh copy of the defining class
  with the mutated method installed (experiment 1's shape);
* :func:`rebuild_subclass` — re-derives a subclass on top of a mutated base
  (experiment 2: faults in ``CObList``, tests through ``CSortableObList``).

Compiled function objects do not pickle, but the :class:`Mutant` record is
pure data and the owner class is importable, so a ``CompiledMutant``
pickles by shipping ``(record, owner)`` and **recompiling the mutated
source on arrival** (:func:`rebuild_compiled_mutant`).  That is what lets
the parallel engine fan mutants out to worker processes: each worker
rebuilds the exact mutant class from its source payload, the in-process
analogue of the paper's "individually compiled" separate programs.
"""

from __future__ import annotations

import ast
import inspect
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.errors import MutationError


@dataclass(frozen=True)
class Mutant:
    """One injected fault, as data."""

    ident: str            # "M0001", …
    operator: str         # Table-1 operator name
    class_name: str
    method_name: str
    variable: str         # the non-interface variable whose use was mutated
    occurrence: int       # which load use of that variable
    line: int             # line within the method source
    replacement: str      # rendered replacement expression
    description: str
    mutated_source: str   # full mutated method source (ast.unparse)

    def title(self) -> str:
        return (
            f"{self.ident} [{self.operator}] {self.class_name}."
            f"{self.method_name}: {self.description}"
        )


class CompiledMutant:
    """A mutant plus its compiled method, able to materialise mutant classes."""

    def __init__(self, record: Mutant, owner: type, function: Callable):
        self.record = record
        self.owner = owner
        self.function = function
        self._class_cache: Optional[type] = None

    @property
    def ident(self) -> str:
        return self.record.ident

    @property
    def operator(self) -> str:
        return self.record.operator

    @property
    def method_name(self) -> str:
        return self.record.method_name

    def build_class(self) -> type:
        """A separate class: copy of the owner with the mutated method."""
        if self._class_cache is None:
            namespace = dict(self.owner.__dict__)
            namespace[self.record.method_name] = self.function
            namespace.pop("__dict__", None)
            namespace.pop("__weakref__", None)
            mutant_class = type(self.owner.__name__, self.owner.__bases__, namespace)
            mutant_class.__module__ = self.owner.__module__
            self._class_cache = mutant_class
        return self._class_cache

    def __repr__(self) -> str:
        return f"CompiledMutant({self.record.title()})"

    def __reduce__(self):
        # Function objects do not pickle; ship the source-bearing record and
        # the (importable) owner, and recompile on the receiving side.
        return (rebuild_compiled_mutant, (self.record, self.owner))


def compile_mutant_function(record: Mutant, owner: type) -> Callable:
    """Recompile a mutant's method from its recorded source.

    The mutated source is executed in the owner's defining-module globals so
    imported helpers (contract checks, node classes) resolve exactly as they
    did when the mutant was first generated.
    """
    try:
        module = ast.parse(record.mutated_source)
    except SyntaxError as error:
        raise MutationError(
            f"cannot re-parse mutated source of {record.ident}: {error}"
        ) from error
    with warnings.catch_warnings():
        # Injected faults like `0 is None` trip SyntaxWarning by design.
        warnings.simplefilter("ignore", SyntaxWarning)
        code = compile(module, filename=f"<mutant {record.ident}>", mode="exec")
    defining_module = inspect.getmodule(owner)
    globals_dict: Dict = dict(vars(defining_module)) if defining_module else {}
    namespace: Dict = {}
    exec(code, globals_dict, namespace)  # noqa: S102 — mutant reconstruction
    try:
        return namespace[record.method_name]
    except KeyError:
        raise MutationError(
            f"mutated source of {record.ident} did not define "
            f"{record.method_name!r}"
        ) from None


def rebuild_compiled_mutant(record: Mutant, owner: type) -> CompiledMutant:
    """Reconstruct a :class:`CompiledMutant` from its picklable payload."""
    return CompiledMutant(record, owner, compile_mutant_function(record, owner))


def rebuild_subclass(subclass: type, original_base: type,
                     mutant_base: type) -> type:
    """Re-derive ``subclass`` with ``original_base`` swapped for the mutant.

    Walks the subclass's bases, substituting the mutated base, and rebuilds
    the class with an identical namespace — the Python analogue of
    re-linking ``CSortableObList`` against a faulty ``CObList``.
    """
    new_bases: Tuple[type, ...] = tuple(
        mutant_base if base is original_base else base
        for base in subclass.__bases__
    )
    if original_base not in subclass.__bases__:
        raise ValueError(
            f"{subclass.__name__} does not directly inherit from "
            f"{original_base.__name__}"
        )
    namespace = dict(subclass.__dict__)
    namespace.pop("__dict__", None)
    namespace.pop("__weakref__", None)
    rebuilt = type(subclass.__name__, new_bases, namespace)
    rebuilt.__module__ = subclass.__module__
    return rebuilt
