"""Mutant records and mutant class construction.

"Each mutant was created as a separate class, and they were individually
compiled, to assure that all faulty classes compiled cleanly" (sec. 4).

A :class:`Mutant` is the immutable record of one injected fault (operator,
method, location, what replaced what, the mutated source).  The companion
:class:`CompiledMutant` additionally carries the compiled function object
and knows how to **materialise** itself as a separate class:

* :meth:`CompiledMutant.build_class` — a fresh copy of the defining class
  with the mutated method installed (experiment 1's shape);
* :func:`rebuild_subclass` — re-derives a subclass on top of a mutated base
  (experiment 2: faults in ``CObList``, tests through ``CSortableObList``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple


@dataclass(frozen=True)
class Mutant:
    """One injected fault, as data."""

    ident: str            # "M0001", …
    operator: str         # Table-1 operator name
    class_name: str
    method_name: str
    variable: str         # the non-interface variable whose use was mutated
    occurrence: int       # which load use of that variable
    line: int             # line within the method source
    replacement: str      # rendered replacement expression
    description: str
    mutated_source: str   # full mutated method source (ast.unparse)

    def title(self) -> str:
        return (
            f"{self.ident} [{self.operator}] {self.class_name}."
            f"{self.method_name}: {self.description}"
        )


class CompiledMutant:
    """A mutant plus its compiled method, able to materialise mutant classes."""

    def __init__(self, record: Mutant, owner: type, function: Callable):
        self.record = record
        self.owner = owner
        self.function = function
        self._class_cache: Optional[type] = None

    @property
    def ident(self) -> str:
        return self.record.ident

    @property
    def operator(self) -> str:
        return self.record.operator

    @property
    def method_name(self) -> str:
        return self.record.method_name

    def build_class(self) -> type:
        """A separate class: copy of the owner with the mutated method."""
        if self._class_cache is None:
            namespace = dict(self.owner.__dict__)
            namespace[self.record.method_name] = self.function
            namespace.pop("__dict__", None)
            namespace.pop("__weakref__", None)
            mutant_class = type(self.owner.__name__, self.owner.__bases__, namespace)
            mutant_class.__module__ = self.owner.__module__
            self._class_cache = mutant_class
        return self._class_cache

    def __repr__(self) -> str:
        return f"CompiledMutant({self.record.title()})"


def rebuild_subclass(subclass: type, original_base: type,
                     mutant_base: type) -> type:
    """Re-derive ``subclass`` with ``original_base`` swapped for the mutant.

    Walks the subclass's bases, substituting the mutated base, and rebuilds
    the class with an identical namespace — the Python analogue of
    re-linking ``CSortableObList`` against a faulty ``CObList``.
    """
    new_bases: Tuple[type, ...] = tuple(
        mutant_base if base is original_base else base
        for base in subclass.__bases__
    )
    if original_base not in subclass.__bases__:
        raise ValueError(
            f"{subclass.__name__} does not directly inherit from "
            f"{original_base.__name__}"
        )
    namespace = dict(subclass.__dict__)
    namespace.pop("__dict__", None)
    namespace.pop("__weakref__", None)
    rebuilt = type(subclass.__name__, new_bases, namespace)
    rebuilt.__module__ = subclass.__module__
    return rebuilt
