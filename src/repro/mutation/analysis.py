"""Mutation analysis: executing suites over mutants and classifying kills.

The paper's procedure (sec. 4): run the Concat-generated test sequence over
each mutant class; the mutant is **killed** when

  (i)  the program crashed while running the test cases;
  (ii) an exception was raised due to assertion violation, given that this
       was not the case with the original program; or
  (iii) the output differs from the (hand-validated) output of the original.

Here the original's suite run is recorded once as the *reference*; each
mutant's run is compared test case by test case through the composite
oracle (:func:`~repro.harness.oracles.paper_oracle`).  By default the
analysis stops at a mutant's first killing test case (what an experimenter
does in practice); ``stop_on_first_kill=False`` measures how many distinct
cases kill each mutant instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..generator.suite import TestSuite
from ..harness.executor import TestExecutor
from ..harness.oracles import CompositeOracle, KillReason, paper_oracle
from ..harness.outcomes import SuiteResult, Verdict
from .mutant import CompiledMutant, Mutant
from .sandbox import DEFAULT_STEP_BUDGET, StepBudgetGuard

#: Builds the runnable class for a mutant (experiment 2 swaps in a builder
#: that re-derives the subclass over the mutated base).
ClassBuilder = Callable[[CompiledMutant], type]


@dataclass(frozen=True)
class MutantOutcome:
    """What the suite did to one mutant."""

    mutant: Mutant
    killed: bool
    reason: KillReason
    killing_case: str = ""
    cases_run: int = 0
    killing_cases: Tuple[str, ...] = ()  # populated when not stopping early
    detail: str = ""

    @property
    def survived(self) -> bool:
        return not self.killed


@dataclass(frozen=True)
class MutationRun:
    """The complete result of one mutation-analysis session."""

    class_name: str
    suite_size: int
    outcomes: Tuple[MutantOutcome, ...]
    reference: SuiteResult
    elapsed_seconds: float

    # -- aggregates -----------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def killed(self) -> Tuple[MutantOutcome, ...]:
        return tuple(outcome for outcome in self.outcomes if outcome.killed)

    @property
    def survivors(self) -> Tuple[MutantOutcome, ...]:
        return tuple(outcome for outcome in self.outcomes if not outcome.killed)

    def kill_reason_counts(self) -> Dict[str, int]:
        """Kills by detector — the paper's "59 were due to assertion violation"."""
        counts: Dict[str, int] = {reason.value: 0 for reason in KillReason}
        for outcome in self.killed:
            counts[outcome.reason.value] += 1
        counts.pop(KillReason.NONE.value, None)
        return counts

    def outcomes_for_method(self, method_name: str) -> Tuple[MutantOutcome, ...]:
        return tuple(
            outcome for outcome in self.outcomes
            if outcome.mutant.method_name == method_name
        )

    def outcomes_for_operator(self, operator: str) -> Tuple[MutantOutcome, ...]:
        return tuple(
            outcome for outcome in self.outcomes
            if outcome.mutant.operator == operator
        )

    def summary(self) -> str:
        reasons = ", ".join(
            f"{name}={count}" for name, count in self.kill_reason_counts().items()
            if count
        )
        return (
            f"{self.class_name}: {len(self.killed)}/{self.total} mutants killed "
            f"by a {self.suite_size}-case suite in {self.elapsed_seconds:.1f}s "
            f"({reasons})"
        )


class MutationAnalysis:
    """Runs a test suite over a battery of mutants."""

    def __init__(self, original_class: type, suite: TestSuite,
                 oracle: Optional[CompositeOracle] = None,
                 class_builder: Optional[ClassBuilder] = None,
                 step_budget: int = DEFAULT_STEP_BUDGET,
                 stop_on_first_kill: bool = True,
                 check_invariants: bool = True,
                 setup: Optional[Callable[[], None]] = None):
        """``setup`` runs before every suite execution (e.g. resetting an
        ambient database) so runs are independent."""
        self._original = original_class
        self._suite = suite
        self._oracle = oracle or paper_oracle()
        self._builder: ClassBuilder = class_builder or (
            lambda mutant: mutant.build_class()
        )
        self._budget = step_budget
        self._stop_on_first_kill = stop_on_first_kill
        self._check_invariants = check_invariants
        self._setup = setup
        self._reference: Optional[SuiteResult] = None

    # ------------------------------------------------------------------

    @property
    def suite(self) -> TestSuite:
        return self._suite

    def reference_results(self) -> SuiteResult:
        """The original class's run (computed once, then cached)."""
        if self._reference is None:
            if self._setup is not None:
                self._setup()
            executor = TestExecutor(
                self._original, check_invariants=self._check_invariants
            )
            self._reference = executor.run_suite(self._suite)
        return self._reference

    # ------------------------------------------------------------------

    def analyze(self, mutants: Sequence[CompiledMutant]) -> MutationRun:
        """Run the suite over every mutant."""
        reference = self.reference_results()
        reference_by_ident = {
            result.case_ident: result for result in reference.results
        }
        started = time.perf_counter()
        outcomes = tuple(
            self._analyze_one(mutant, reference_by_ident) for mutant in mutants
        )
        elapsed = time.perf_counter() - started
        return MutationRun(
            class_name=self._original.__name__,
            suite_size=len(self._suite),
            outcomes=outcomes,
            reference=reference,
            elapsed_seconds=elapsed,
        )

    def _analyze_one(self, mutant: CompiledMutant,
                     reference_by_ident: Dict[str, object]) -> MutantOutcome:
        mutant_class = self._builder(mutant)
        guard = StepBudgetGuard(self._budget)
        executor = TestExecutor(
            mutant_class,
            check_invariants=self._check_invariants,
            step_guard=guard,
        )
        if self._setup is not None:
            self._setup()

        first_reason = KillReason.NONE
        first_case = ""
        first_detail = ""
        killing_cases: List[str] = []
        cases_run = 0

        for case in self._suite.cases:
            cases_run += 1
            observed = executor.run_case(case)
            if observed.verdict is Verdict.INCOMPLETE:
                continue
            reference_result = reference_by_ident.get(case.ident)
            judgement = self._oracle.judge(observed, reference_result)
            if judgement.detected:
                if first_reason is KillReason.NONE:
                    first_reason = judgement.reason
                    first_case = case.ident
                    first_detail = judgement.detail
                killing_cases.append(case.ident)
                if self._stop_on_first_kill:
                    break

        killed = first_reason is not KillReason.NONE
        return MutantOutcome(
            mutant=mutant.record,
            killed=killed,
            reason=first_reason,
            killing_case=first_case,
            cases_run=cases_run,
            killing_cases=tuple(killing_cases),
            detail=first_detail,
        )


def analyze_mutants(original_class: type, suite: TestSuite,
                    mutants: Sequence[CompiledMutant],
                    **options) -> MutationRun:
    """One-call convenience over :class:`MutationAnalysis`."""
    return MutationAnalysis(original_class, suite, **options).analyze(mutants)
