"""Mutation analysis: executing suites over mutants and classifying kills.

The paper's procedure (sec. 4): run the Concat-generated test sequence over
each mutant class; the mutant is **killed** when

  (i)  the program crashed while running the test cases;
  (ii) an exception was raised due to assertion violation, given that this
       was not the case with the original program; or
  (iii) the output differs from the (hand-validated) output of the original.

Here the original's suite run is recorded once as the *reference*; each
mutant's run is compared test case by test case through the composite
oracle (:func:`~repro.harness.oracles.paper_oracle`).  By default the
analysis stops at a mutant's first killing test case (what an experimenter
does in practice); ``stop_on_first_kill=False`` measures how many distinct
cases kill each mutant instead.

**Coverage-guided pruning** (on by default, ``prune=False`` for the
exhaustive run): the reference pass additionally records, per test case,
the set of CUT methods its execution dynamically reaches
(:mod:`repro.mutation.coverage`).  A case whose coverage set does not
contain a mutant's ``method_name`` executes code identical to the original
and deterministically replays the reference outcome, so the analysis skips
it and synthesizes that replay instead of executing it — verdicts, kill
reasons, killing cases and details are bit-identical to the unpruned run;
only the executed/skipped case counters differ (which is why
:meth:`MutationRun.same_results` compares outcomes modulo those counters).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import RunCancelled
from ..generator.suite import TestSuite
from ..harness.executor import TestExecutor
from ..harness.oracles import CompositeOracle, KillReason, paper_oracle
from ..harness.outcomes import SuiteResult, Verdict
from ..obs import Telemetry, coalesce
from .cache import CacheStats, MutationOutcomeCache, experiment_fingerprint
from .coverage import CoverageMatrix, record_coverage
from .mutant import CompiledMutant, Mutant
from .sandbox import DEFAULT_STEP_BUDGET, StepBudgetGuard
from .triage import (
    EQUIVALENT_STATUSES,
    StaticTriage,
    TriageStatus,
    triage_mutants,
)
from .typemodel import TypeModel

#: Builds the runnable class for a mutant (experiment 2 swaps in a builder
#: that re-derives the subclass over the mutated base).
ClassBuilder = Callable[[CompiledMutant], type]


@dataclass(frozen=True)
class MutantOutcome:
    """What the suite did to one mutant."""

    mutant: Mutant
    killed: bool
    reason: KillReason
    killing_case: str = ""
    cases_run: int = 0
    killing_cases: Tuple[str, ...] = ()  # populated when not stopping early
    detail: str = ""
    #: Cases skipped by coverage-guided pruning (their reference outcome was
    #: synthesized instead of executed).  Observability only: together with
    #: ``cases_run`` it accounts for every case the analysis considered.
    cases_skipped: int = 0
    #: Static-triage provenance (:mod:`repro.mutation.triage`): ``""`` for a
    #: normally executed mutant, ``"ast_equivalent"``/``"bytecode_equivalent"``
    #: for a proven-equivalent mutant whose survivor outcome was synthesized
    #: without dispatch, and ``"redundant:<ident>"`` for a mutant whose
    #: verdict was propagated from its executed group representative.
    static_status: str = ""

    @property
    def survived(self) -> bool:
        return not self.killed

    @property
    def statically_equivalent(self) -> bool:
        """Proven equivalent by the static triage pass (never executed)."""
        return self.static_status in (
            status.value for status in EQUIVALENT_STATUSES
        )

    @property
    def dispatched(self) -> bool:
        """Whether the suite was actually run over this mutant (in-process
        or in a worker) rather than its outcome being synthesized or
        propagated by the static triage pass."""
        return self.static_status == ""

    def comparable(self) -> "MutantOutcome":
        """This outcome with the executed-case counters zeroed.

        The projection :meth:`MutationRun.same_results` compares on: a
        pruned and an unpruned run agree on every verdict-bearing field
        but legitimately differ in how many cases they physically ran.
        """
        return replace(self, cases_run=0, cases_skipped=0)

    def triage_projected(self) -> "MutantOutcome":
        """The :meth:`comparable` projection with triage provenance erased.

        The projection :meth:`MutationRun.same_verdicts` compares on: a
        triage-on and a triage-off run agree on every verdict (triage is
        *sound*, so a proven-equivalent mutant survives execution too, and
        a redundant mutant's propagated verdict equals what executing it
        would have produced) but differ in which outcomes carry triage
        provenance.
        """
        return replace(self.comparable(), static_status="")


@dataclass(frozen=True)
class MutationRun:
    """The complete result of one mutation-analysis session."""

    class_name: str
    suite_size: int
    outcomes: Tuple[MutantOutcome, ...]
    reference: SuiteResult
    elapsed_seconds: float
    #: Total StepBudgetGuard cuts across every mutant (observability: how
    #: often the sandbox had to bound a runaway mutant).  Aggregated across
    #: workers by the parallel engine.
    step_timeouts: int = 0
    #: Outcome-cache lookup counters for this run (``None`` when the run
    #: was executed without a cache).  Excluded from ``same_results``: a
    #: warm run differs from a cold run only here and in wall-clock.
    cache_stats: Optional[CacheStats] = None
    #: The static-triage verdicts this run was executed under (``None``
    #: when triage was disabled).  Excluded from ``same_results``, which
    #: already sees triage through each outcome's ``static_status``.
    triage: Optional[StaticTriage] = None

    def same_results(self, other: "MutationRun") -> bool:
        """Field-for-field equality, wall-clock, cache and executed-case
        counters excluded.

        This is the serial-equivalence contract of the parallel engine, the
        cached≡fresh contract of the outcome cache, *and* the pruned≡
        unpruned contract of coverage-guided pruning: any two runs over the
        same mutants must agree on every verdict-bearing field of every
        outcome (killed, reason, killing case(s), detail), the reference,
        and the aggregated sandbox-timeout count.  Only ``elapsed_seconds``,
        ``cache_stats`` and the per-outcome ``cases_run``/``cases_skipped``
        counters may differ — the last pair because a pruned run executes
        fewer cases while synthesizing identical verdicts.
        """
        return (
            self.class_name == other.class_name
            and self.suite_size == other.suite_size
            and self._comparable_outcomes() == other._comparable_outcomes()
            and self.reference == other.reference
            and self.step_timeouts == other.step_timeouts
        )

    def same_verdicts(self, other: "MutationRun") -> bool:
        """:meth:`same_results` modulo the triage projection.

        The triage-on ≡ triage-off contract: runs over the same mutants
        with static triage enabled and disabled must agree on every
        verdict-bearing field of every outcome — triage only *proves*
        verdicts execution would have produced, it never changes one.
        Beyond ``same_results``' exclusions this also ignores each
        outcome's ``static_status`` (provenance, set only under triage)
        and ``step_timeouts`` (a triage-off run executes the skipped
        mutants and accrues their sandbox timeouts; a triage-on run never
        runs them).
        """
        projected = tuple(
            outcome.triage_projected() for outcome in self.outcomes
        )
        other_projected = tuple(
            outcome.triage_projected() for outcome in other.outcomes
        )
        return (
            self.class_name == other.class_name
            and self.suite_size == other.suite_size
            and projected == other_projected
            and self.reference == other.reference
        )

    def _comparable_outcomes(self) -> Tuple[MutantOutcome, ...]:
        return tuple(outcome.comparable() for outcome in self.outcomes)

    # -- aggregates -----------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def cases_executed(self) -> int:
        """Total test-case executions across the battery (the cost metric
        coverage-guided pruning reduces)."""
        return sum(outcome.cases_run for outcome in self.outcomes)

    @property
    def cases_skipped(self) -> int:
        """Total (mutant, case) pairs skipped by coverage-guided pruning."""
        return sum(outcome.cases_skipped for outcome in self.outcomes)

    @property
    def killed(self) -> Tuple[MutantOutcome, ...]:
        return tuple(outcome for outcome in self.outcomes if outcome.killed)

    @property
    def survivors(self) -> Tuple[MutantOutcome, ...]:
        return tuple(outcome for outcome in self.outcomes if not outcome.killed)

    @property
    def statically_equivalent(self) -> Tuple[MutantOutcome, ...]:
        """Outcomes proven equivalent by static triage (never dispatched)."""
        return tuple(
            outcome for outcome in self.outcomes
            if outcome.statically_equivalent
        )

    @property
    def dispatched_count(self) -> int:
        """How many mutants were actually run (executions the static
        triage pass did not avoid)."""
        return sum(1 for outcome in self.outcomes if outcome.dispatched)

    def kill_reason_counts(self) -> Dict[str, int]:
        """Kills by detector — the paper's "59 were due to assertion violation"."""
        counts: Dict[str, int] = {reason.value: 0 for reason in KillReason}
        for outcome in self.killed:
            counts[outcome.reason.value] += 1
        counts.pop(KillReason.NONE.value, None)
        return counts

    def outcomes_for_method(self, method_name: str) -> Tuple[MutantOutcome, ...]:
        return tuple(
            outcome for outcome in self.outcomes
            if outcome.mutant.method_name == method_name
        )

    def outcomes_for_operator(self, operator: str) -> Tuple[MutantOutcome, ...]:
        return tuple(
            outcome for outcome in self.outcomes
            if outcome.mutant.operator == operator
        )

    def summary(self) -> str:
        reasons = ", ".join(
            f"{name}={count}" for name, count in self.kill_reason_counts().items()
            if count
        )
        return (
            f"{self.class_name}: {len(self.killed)}/{self.total} mutants killed "
            f"by a {self.suite_size}-case suite in {self.elapsed_seconds:.1f}s "
            f"({reasons})"
        )


def triaged_outcome(mutant: CompiledMutant, triage: StaticTriage,
                    by_ident: Dict[str, MutantOutcome]) -> MutantOutcome:
    """The outcome of a statically-triaged mutant, without dispatching it.

    A proven-equivalent mutant survives by construction — the suite would
    execute the very same program as the original — so its survivor
    outcome is synthesized with zero executed cases.  A redundant mutant
    behaves identically to its executed group representative under every
    input, so the representative's verdict (kill flag, reason, killing
    case(s), detail) is propagated verbatim; only the provenance marker
    and the per-mutant case counters differ.  Both engines build skipped
    outcomes through this one helper, which is what keeps them identical.
    """
    status = triage.status_of(mutant.ident)
    if status is TriageStatus.REDUNDANT:
        representative = triage.representative_of(mutant.ident)
        rep_outcome = by_ident[representative]
        return replace(
            rep_outcome,
            mutant=mutant.record,
            cases_run=0,
            cases_skipped=0,
            static_status=f"redundant:{representative}",
        )
    return MutantOutcome(
        mutant=mutant.record,
        killed=False,
        reason=KillReason.NONE,
        static_status=status.value,
    )


class MutationAnalysis:
    """Runs a test suite over a battery of mutants."""

    def __init__(self, original_class: type, suite: TestSuite,
                 oracle: Optional[CompositeOracle] = None,
                 class_builder: Optional[ClassBuilder] = None,
                 step_budget: int = DEFAULT_STEP_BUDGET,
                 stop_on_first_kill: bool = True,
                 check_invariants: bool = True,
                 setup: Optional[Callable[[], None]] = None,
                 reference: Optional[SuiteResult] = None,
                 cache: Optional[MutationOutcomeCache] = None,
                 prune: bool = True,
                 coverage: Optional[CoverageMatrix] = None,
                 telemetry: Optional[Telemetry] = None,
                 static_triage: bool = True,
                 triage_type_model: Optional[TypeModel] = None,
                 cancel_event: Optional[threading.Event] = None):
        """``setup`` runs before every suite execution (e.g. resetting an
        ambient database) so runs are independent.

        ``reference`` seeds the original class's recorded run: a parallel
        worker receives the parent's reference instead of re-executing the
        suite, so every worker judges against bit-identical golden results.

        ``cache`` replays previously computed outcomes whose content
        fingerprint (mutant source, suite, oracle, budget, builder, flags)
        is unchanged; see :mod:`repro.mutation.cache`.

        ``prune`` enables coverage-guided mutant×case pruning (the
        default): only cases whose reference-run coverage reaches the
        mutant's method are executed; the rest provably replay the
        reference outcome, which is synthesized instead.  ``coverage``
        seeds the recorded matrix the same way ``reference`` seeds the
        golden run (the parallel engine ships both to its workers).

        ``telemetry`` attaches a run-telemetry session
        (:mod:`repro.obs`): the reference pass and every mutant get
        spans carrying kill reason, case counters and cache hit/miss.
        Purely observational — verdicts are identical with or without
        it; the default null session records nothing.

        ``cancel_event`` enables cooperative cancellation (service jobs,
        sweep Ctrl-C): the analysis loop checks it between mutants and
        raises :class:`~repro.core.errors.RunCancelled` when set, so a
        serial battery unwinds within one mutant's execution time.  It is
        deliberately excluded from the experiment fingerprint — it never
        influences verdicts, only whether they are produced.

        ``static_triage`` (the default) runs the static equivalent-mutant
        triage pass (:mod:`repro.mutation.triage`) over the battery
        before execution: proven-equivalent mutants get synthesized
        survivor outcomes without ever being dispatched, and redundant
        mutants (bytecode-identical to an earlier one) get their group
        representative's verdict propagated.  Verdicts are identical
        with triage on or off (see :meth:`MutationRun.same_verdicts`);
        only execution cost changes.  ``triage_type_model`` additionally
        enables the type-gated integral folds (the experiments pass the
        same model the generation gate uses).
        """
        self._original = original_class
        self._suite = suite
        self._oracle = oracle or paper_oracle()
        self._builder: ClassBuilder = class_builder or (
            lambda mutant: mutant.build_class()
        )
        #: The raw ``class_builder`` argument (``None`` = default
        #: ``build_class``) — what the cache fingerprints, since the
        #: per-instance default lambda has no stable identity.
        self._builder_spec = class_builder
        self._budget = step_budget
        self._stop_on_first_kill = stop_on_first_kill
        self._check_invariants = check_invariants
        self._setup = setup
        self._cache = cache
        self._prune = prune
        self._static_triage = static_triage
        self._triage_type_model = triage_type_model
        self._obs = coalesce(telemetry)
        self._cancel = cancel_event
        self._coverage: Optional[CoverageMatrix] = coverage if prune else None
        self._reference: Optional[SuiteResult] = reference
        self._reference_by_ident: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------

    @property
    def suite(self) -> TestSuite:
        return self._suite

    def reference_results(self) -> SuiteResult:
        """The original class's run (computed once, then cached).

        With pruning enabled this is the *one instrumented pass*: the same
        execution that records the golden results also records the
        per-case method-coverage matrix, so pruning never costs an extra
        suite run.
        """
        if self._reference is None:
            with self._obs.span("analysis.reference",
                                component=self._original.__name__,
                                cases=len(self._suite),
                                prune=self._prune):
                if self._prune:
                    self._reference, recorded = record_coverage(
                        self._original, self._suite,
                        check_invariants=self._check_invariants,
                        setup=self._setup,
                        telemetry=self._obs,
                    )
                    if self._coverage is None:
                        self._coverage = recorded
                else:
                    if self._setup is not None:
                        self._setup()
                    executor = TestExecutor(
                        self._original,
                        check_invariants=self._check_invariants,
                        telemetry=self._obs,
                    )
                    self._reference = executor.run_suite(self._suite)
        return self._reference

    def coverage_matrix(self) -> Optional[CoverageMatrix]:
        """The recorded (or seeded) coverage matrix; ``None`` when pruning
        is off.  Recording happens alongside the reference run; when the
        reference was seeded externally without a matrix, one dedicated
        instrumented pass over the original records it."""
        if not self._prune:
            return None
        if self._coverage is None:
            self.reference_results()
        if self._coverage is None:
            _, self._coverage = record_coverage(
                self._original, self._suite,
                check_invariants=self._check_invariants,
                setup=self._setup,
                telemetry=self._obs,
            )
        return self._coverage

    def _reference_map(self) -> Dict[str, object]:
        if self._reference_by_ident is None:
            self._reference_by_ident = {
                result.case_ident: result
                for result in self.reference_results().results
            }
        return self._reference_by_ident

    # ------------------------------------------------------------------

    def analyze(self, mutants: Sequence[CompiledMutant]) -> MutationRun:
        """Run the suite over every mutant (replaying cached outcomes).

        With static triage enabled (the default), proven-equivalent and
        redundant mutants are resolved *without dispatch*: no suite
        execution, no outcome-cache traffic — their outcomes are
        synthesized (equivalents) or propagated from the executed group
        representative (redundant mutants, whose representative always
        precedes them in submission order).
        """
        reference = self.reference_results()
        started = time.perf_counter()
        cache = self._cache
        triage = self.static_triage_for(mutants)
        keys = None
        stats_before = None
        if cache is not None:
            experiment = self.experiment_fingerprint()
            keys = [cache.key_for(experiment, mutant) for mutant in mutants]
            stats_before = cache.snapshot()
        outcomes: List[MutantOutcome] = []
        by_ident: Dict[str, MutantOutcome] = {}
        step_timeouts = 0
        for index, mutant in enumerate(mutants):
            if self._cancel is not None and self._cancel.is_set():
                raise RunCancelled(
                    f"analysis cancelled after {index} of "
                    f"{len(mutants)} mutant(s)"
                )
            with self._obs.span("analysis.mutant",
                                mutant=mutant.record.ident,
                                operator=mutant.record.operator,
                                method=mutant.record.method_name) as span:
                if (triage is not None
                        and triage.is_skipped(mutant.ident)):
                    outcome = triaged_outcome(mutant, triage, by_ident)
                    timeouts = 0
                    span.set("triage", outcome.static_status)
                else:
                    entry = (cache.lookup(keys[index])
                             if cache is not None else None)
                    if entry is not None:
                        outcome, timeouts = entry.outcome, entry.step_timeouts
                        span.set("cache", "hit")
                    else:
                        if cache is not None:
                            span.set("cache", "miss")
                        outcome, timeouts = self.analyze_single(mutant)
                        if cache is not None:
                            cache.store(keys[index], outcome, timeouts)
                span.set("killed", outcome.killed)
                span.set("reason", outcome.reason.value)
                span.set("cases_run", outcome.cases_run)
                span.set("cases_skipped", outcome.cases_skipped)
            outcomes.append(outcome)
            by_ident[mutant.ident] = outcome
            step_timeouts += timeouts
        elapsed = time.perf_counter() - started
        return MutationRun(
            class_name=self._original.__name__,
            suite_size=len(self._suite),
            outcomes=tuple(outcomes),
            reference=reference,
            elapsed_seconds=elapsed,
            step_timeouts=step_timeouts,
            cache_stats=(cache.snapshot().since(stats_before)
                         if cache is not None else None),
            triage=triage,
        )

    def static_triage_for(self, mutants: Sequence[CompiledMutant]
                          ) -> Optional[StaticTriage]:
        """The battery's static-triage verdicts (``None`` when disabled)."""
        if not self._static_triage:
            return None
        return triage_mutants(
            self._original, mutants,
            type_model=self._triage_type_model,
            cache=self._cache,
            telemetry=self._obs,
        )

    def experiment_fingerprint(self) -> str:
        """The cache fingerprint of this configuration (mutants excluded).

        Incorporates the pruning flag and the coverage matrix's content
        hash, so outcomes computed under pruning can only be replayed
        under the exact matrix that justified their skips — pruned and
        unpruned cache entries never cross-contaminate.
        """
        coverage = self.coverage_matrix()
        return experiment_fingerprint(
            self._original,
            self._suite,
            self._oracle,
            self._builder_spec,
            self._budget,
            self._stop_on_first_kill,
            self._check_invariants,
            self._setup,
            prune=self._prune,
            coverage_fingerprint=(
                coverage.fingerprint() if coverage is not None else ""
            ),
        )

    def analyze_single(self, mutant: CompiledMutant
                       ) -> Tuple[MutantOutcome, int]:
        """Run the suite over one mutant.

        Returns the outcome plus the number of step-budget timeouts the
        sandbox recorded for this mutant (the unit the parallel engine
        aggregates across workers).
        """
        return self._analyze_one(mutant, self._reference_map())

    def _analyze_one(self, mutant: CompiledMutant,
                     reference_by_ident: Dict[str, object]
                     ) -> Tuple[MutantOutcome, int]:
        coverage = self.coverage_matrix()
        target_method = mutant.record.method_name
        mutant_class = self._builder(mutant)
        guard = StepBudgetGuard(self._budget)
        executor = TestExecutor(
            mutant_class,
            check_invariants=self._check_invariants,
            step_guard=guard,
            telemetry=self._obs,
        )
        if self._setup is not None:
            self._setup()

        first_reason = KillReason.NONE
        first_case = ""
        first_detail = ""
        killing_cases: List[str] = []
        cases_run = 0
        cases_skipped = 0

        for case in self._suite.cases:
            if (coverage is not None
                    and not coverage.covers(case.ident, target_method)):
                # The case's reference run never entered the mutated method,
                # so the mutant run executes identical code and replays the
                # reference outcome — synthesize that replay (no kill, no
                # detail) instead of executing it.
                cases_skipped += 1
                continue
            cases_run += 1
            observed = executor.run_case(case)
            if observed.verdict is Verdict.INCOMPLETE:
                continue
            reference_result = reference_by_ident.get(case.ident)
            judgement = self._oracle.judge(observed, reference_result)
            if judgement.detected:
                if first_reason is KillReason.NONE:
                    first_reason = judgement.reason
                    first_case = case.ident
                    first_detail = judgement.detail
                killing_cases.append(case.ident)
                if self._stop_on_first_kill:
                    break

        killed = first_reason is not KillReason.NONE
        outcome = MutantOutcome(
            mutant=mutant.record,
            killed=killed,
            reason=first_reason,
            killing_case=first_case,
            cases_run=cases_run,
            killing_cases=tuple(killing_cases),
            detail=first_detail,
            cases_skipped=cases_skipped,
        )
        return outcome, guard.timeouts


def analyze_mutants(original_class: type, suite: TestSuite,
                    mutants: Sequence[CompiledMutant],
                    workers: int = 1,
                    batch_size: Optional[int] = None,
                    **options) -> MutationRun:
    """One-call convenience over :class:`MutationAnalysis`.

    ``workers > 1`` dispatches to the process-pool engine
    (:class:`~repro.mutation.parallel.ParallelMutationAnalysis`), whose
    result is field-for-field identical to the serial run; ``batch_size``
    shapes its dispatch chunking (default adaptive) and is meaningless —
    and therefore ignored — for the serial engine.
    """
    if workers > 1:
        from .parallel import ParallelMutationAnalysis

        return ParallelMutationAnalysis(
            original_class, suite, workers=workers, batch_size=batch_size,
            **options
        ).analyze(mutants)
    return MutationAnalysis(original_class, suite, **options).analyze(mutants)
