"""Process-pool mutation analysis with serial-equivalent results.

The paper ran every mutant "as a separate class … individually compiled"
(sec. 4) — each mutant execution is an independent program, which is
exactly the independence that makes per-mutant fan-out safe.  This module
exploits it: mutants are distributed over N worker processes, each worker
**recompiles the mutant from its source payload** (the pickle protocol of
:class:`~repro.mutation.mutant.CompiledMutant`), runs the suite under a
fresh :class:`~repro.mutation.sandbox.StepBudgetGuard`, and ships the
outcome back to the parent.

Three throughput mechanisms keep orchestration from swamping the win:

* **Batched dispatch.**  Mutants ship to workers in chunks — by default
  ``max(1, dispatched // (8 × workers))`` per batch (``batch_size``
  overrides) — so the per-task pipe round-trip amortizes over the batch.
  Workers still stream one ``done`` message per mutant, in submission
  order, so results merge exactly as before.

* **Persistent warm workers.**  The pool outlives a single ``analyze``
  call: a process-wide shared :class:`WorkerPool` (or an explicit one
  passed as ``pool=``) keeps workers alive across mutants *and* across
  batteries (table2/table3 run several back-to-back).  Each battery ships
  its :class:`WorkerSpec` once per worker under an epoch token — the
  compiled original class, suite fixtures, reference run and coverage
  matrix are cached worker-side until the token ages out of a small
  per-worker battery LRU (:data:`WORKER_BATTERY_LRU` entries).  Stale
  messages from a previous battery are discarded by run id.

* **Multi-tenant dispatch.**  The pool is a resident executor: a single
  dispatcher thread owns every worker pipe and interleaves batches from
  however many concurrent runs are registered (the pipelined scenario
  sweep keeps several in flight; service mode will submit jobs the same
  way).  Each ``analyze`` call registers a run-id-fenced
  :class:`_RunHandle` and blocks until its verdicts are complete; the
  dispatcher round-robins ready batches across runs, enforcing a per-run
  **in-flight batch budget** equal to the run's ``workers`` request
  (back-pressure: a run at budget yields the pool to its neighbours),
  and the battery LRU keeps interleaving from thrashing spec re-ships.
  Because every run's batch carries its own run id and epoch token, one
  run's crashes, hangs and re-dispatches never touch another run's
  verdicts.

Two contracts, both tested differentially against the serial engine:

* **Determinism.**  Outcomes are merged back *in submission order*, every
  worker judges against the parent's single recorded reference run, and the
  step-budget sandbox makes each mutant's verdict schedule-independent — so
  the parallel :class:`~repro.mutation.analysis.MutationRun` is
  field-for-field identical to the serial one (wall-clock aside; see
  :meth:`~repro.mutation.analysis.MutationRun.same_results`), at every
  batch size, worker count, and degree of cross-run interleaving.

* **Robustness.**  The paper's kill rule (i) is "the program crashed while
  running the test cases".  In-process, the step budget already converts
  runaway loops into deterministic ``TIMEOUT`` verdicts; what it cannot
  catch is a mutant that takes the whole process down (``os._exit``, a
  segfaulting extension, an interpreter abort) or blocks without executing
  Python lines.  Those become the *worker boundary*'s problem — with one
  batch-aware refinement so a poisoned mutant can never take out its
  batchmates' verdicts:

  - a **dead worker** whose batch has exactly one unreported mutant marks
    it killed with :attr:`~repro.harness.oracles.KillReason.WORKER_CRASH`
    (the worker executes in order, so that mutant was running);
  - a dead worker with *several* unreported mutants re-dispatches each of
    them as a **solo batch** — the poisoned one crashes alone and is then
    classified, every innocent batchmate re-runs normally and keeps its
    serial-identical verdict;
  - a worker **silent past the wall-clock backstop** has provably hung on
    its first unreported mutant (execution is in-order and every verdict
    streams back immediately), which is killed with
    :attr:`~repro.harness.oracles.KillReason.WALL_TIMEOUT`; the batch's
    remaining never-started mutants are re-queued untouched.

  A replacement worker is spawned whenever work remains, so every mutant
  still runs; the engine never wedges on a hostile mutant.  All of this
  is applied per run: a worker death inside run A's batch classifies and
  re-queues only run A's mutants.

Per-worker ``StepBudgetGuard.timeouts`` counters are aggregated into
``MutationRun.step_timeouts`` so sandbox activity stays observable across
process boundaries.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import multiprocessing
import os
import pickle
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from typing import (
    Callable,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.errors import RunCancelled
from ..generator.suite import TestSuite
from ..harness.oracles import CompositeOracle, KillReason
from ..harness.outcomes import SuiteResult
from ..obs import Telemetry, coalesce
from .analysis import (
    ClassBuilder,
    MutantOutcome,
    MutationAnalysis,
    MutationRun,
    triaged_outcome,
)
from .cache import CacheKey, MutationOutcomeCache
from .coverage import CoverageMatrix
from .mutant import CompiledMutant
from .sandbox import DEFAULT_STEP_BUDGET
from .triage import StaticTriage, triage_mutants
from .typemodel import TypeModel

#: Default wall-clock backstop per mutant, in seconds.  Generous: the step
#: budget catches ordinary runaway mutants deterministically within
#: milliseconds; the backstop only exists for mutants that block without
#: executing traceable Python lines, where only elapsed time is observable.
DEFAULT_WALL_CLOCK_BACKSTOP = 60.0

#: How long the dispatcher waits on worker pipes before running a health
#: pass while runs are active.
_POLL_INTERVAL = 0.05

#: The adaptive default aims for ~8 batches per worker: small enough that
#: a straggler batch cannot idle the rest of the pool for long, large
#: enough to amortize the pipe round-trip.
DEFAULT_BATCH_DIVISOR = 8

#: How many battery configurations each worker keeps warm at once.  One
#: was enough when a pool served one run at a time; interleaved runs
#: would thrash a single slot (A, B, A, B … re-ships every batch), so the
#: slot became a small keyed LRU, mirrored exactly on the parent side.
WORKER_BATTERY_LRU = 4

#: Run ids distinguish runs sharing one (persistent) pool, so a stale
#: message from a previous battery — or a *concurrent* one — can never
#: fill another run's slot.
_RUN_IDS = itertools.count(1)


def default_batch_size(dispatched: int, workers: int) -> int:
    """The adaptive chunk size: ``max(1, dispatched // (8 × workers))``."""
    return max(1, dispatched // (DEFAULT_BATCH_DIVISOR * max(1, workers)))


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild the serial analysis (picklable)."""

    original_class: type
    suite: TestSuite
    oracle: Optional[CompositeOracle]
    class_builder: Optional[ClassBuilder]
    step_budget: int
    stop_on_first_kill: bool
    check_invariants: bool
    setup: Optional[Callable[[], None]]
    reference: SuiteResult
    #: Coverage-guided pruning: the matrix is recorded once in the parent
    #: (alongside the reference) and shipped verbatim, so every worker
    #: skips exactly the (mutant, case) pairs the serial engine would.
    prune: bool = True
    coverage: Optional[CoverageMatrix] = None


@dataclass(frozen=True)
class BatchLimits:
    """Per-batch soft resource limits a worker applies around execution.

    Service mode's per-job CPU/memory knobs, expressed at the one
    boundary where they are enforceable: inside the worker process, via
    ``resource.setrlimit``, for exactly the duration of a batch.  CPU
    seconds are *incremental* (relative to the warm worker's usage so
    far); memory is an address-space ceiling.  A batch that exceeds its
    memory budget raises ``MemoryError`` in-process (reported as a
    worker-boundary kill, worker survives); a CPU overrun delivers
    ``SIGXCPU`` and the dead worker is classified and replaced by the
    pool's existing crash rule — the pool itself is never recycled.
    """

    cpu_seconds: Optional[float] = None
    memory_bytes: Optional[int] = None

    def __post_init__(self):
        if self.cpu_seconds is not None and self.cpu_seconds <= 0:
            raise ValueError("cpu_seconds must be positive")
        if self.memory_bytes is not None and self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")

    @property
    def empty(self) -> bool:
        return self.cpu_seconds is None and self.memory_bytes is None


def _apply_batch_limits(limits: Optional[BatchLimits]) -> Callable[[], None]:
    """Apply soft rlimits in the worker; returns the undo callable.

    Soft limits only — the hard limits stay untouched so the undo can
    always raise the soft limit back for the next (unlimited) batch.
    Platforms without ``resource`` (or with lower hard caps) degrade to
    whatever is enforceable, silently: limits are a protection, never a
    correctness input.
    """
    if limits is None or limits.empty:
        return lambda: None
    try:
        import resource
    except ImportError:  # pragma: no cover — POSIX-only module
        return lambda: None
    undo: List[Tuple[int, Tuple[int, int]]] = []
    try:
        if limits.cpu_seconds is not None:
            usage = resource.getrusage(resource.RUSAGE_SELF)
            spent = int(usage.ru_utime + usage.ru_stime)
            soft, hard = resource.getrlimit(resource.RLIMIT_CPU)
            budget = spent + max(1, int(limits.cpu_seconds))
            if hard != resource.RLIM_INFINITY:
                budget = min(budget, hard)
            resource.setrlimit(resource.RLIMIT_CPU, (budget, hard))
            undo.append((resource.RLIMIT_CPU, (soft, hard)))
        if limits.memory_bytes is not None:
            soft, hard = resource.getrlimit(resource.RLIMIT_AS)
            budget = int(limits.memory_bytes)
            if hard != resource.RLIM_INFINITY:
                budget = min(budget, hard)
            resource.setrlimit(resource.RLIMIT_AS, (budget, hard))
            undo.append((resource.RLIMIT_AS, (soft, hard)))
    except (ValueError, OSError):  # pragma: no cover — platform refusal
        pass

    def restore() -> None:
        for which, pair in reversed(undo):
            try:
                resource.setrlimit(which, pair)
            except (ValueError, OSError):  # pragma: no cover
                pass

    return restore


def _analysis_from_spec(spec: WorkerSpec) -> MutationAnalysis:
    """The plain serial analysis a worker judges every mutant with."""
    return MutationAnalysis(
        spec.original_class,
        spec.suite,
        oracle=spec.oracle,
        class_builder=spec.class_builder,
        step_budget=spec.step_budget,
        stop_on_first_kill=spec.stop_on_first_kill,
        check_invariants=spec.check_invariants,
        setup=spec.setup,
        reference=spec.reference,
        prune=spec.prune,
        coverage=spec.coverage,
    )


def _worker_main(connection: Connection) -> None:
    """Worker loop: battery configs and mutant batches in, verdicts out.

    Messages: ``("battery", token, spec)`` installs one analysis in the
    worker's battery LRU — the rebuilt serial engine, with its compiled
    original class, suite fixtures and coverage matrix, is cached under
    the token until :data:`WORKER_BATTERY_LRU` fresher batteries evict
    it, so a rerun of a recent battery ships no spec at all;
    ``("batch", run_id, token, ((index, mutant), …), limits)`` runs each
    mutant in order under the named battery — with the optional
    :class:`BatchLimits` soft rlimits applied for the batch's duration —
    streaming one ``("done", run_id, index, outcome, timeouts)`` per
    mutant (or ``("error", run_id, index, message)`` for a harness-level
    failure); ``None`` exits.  The parent mirrors the LRU's insert/touch/evict
    sequence over the same FIFO pipe, so it always knows which batteries
    a worker still holds.  The worker is a plain serial
    :class:`MutationAnalysis` seeded with the parent's reference run;
    parallelism changes *where* a mutant runs, never *how*.
    """
    analyses: "OrderedDict[str, MutationAnalysis]" = OrderedDict()
    try:
        while True:
            message = connection.recv()
            if message is None:
                break
            kind = message[0]
            if kind == "battery":
                token, spec = message[1], message[2]
                if token in analyses:
                    analyses.move_to_end(token)
                else:
                    analyses[token] = _analysis_from_spec(spec)
                    while len(analyses) > WORKER_BATTERY_LRU:
                        analyses.popitem(last=False)
                continue
            run_id, token, tasks = message[1], message[2], message[3]
            limits = message[4] if len(message) > 4 else None
            analysis = analyses.get(token)
            if analysis is not None:
                analyses.move_to_end(token)
            restore_limits = _apply_batch_limits(limits)
            try:
                for index, mutant in tasks:
                    try:
                        if analysis is None:
                            raise RuntimeError("batch received before battery")
                        outcome, timeouts = analysis.analyze_single(mutant)
                        connection.send(
                            ("done", run_id, index, outcome, timeouts)
                        )
                    except KeyboardInterrupt:
                        raise
                    except BaseException as error:  # noqa: BLE001 — must not die
                        # A harness-level failure (builder blew up, SystemExit
                        # from mutated code, a MemoryError against the batch's
                        # rlimit, …).  Report it instead of taking the worker
                        # down; the parent classifies it as a worker-boundary
                        # kill.
                        connection.send(
                            ("error", run_id, index,
                             f"{type(error).__name__}: {error}")
                        )
            finally:
                restore_limits()
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away or shut us down; nothing to clean up
    finally:
        connection.close()


class _Worker:
    """Parent-side handle for one worker process."""

    __slots__ = ("process", "connection", "assigned", "batch_len",
                 "batch_started", "last_heard", "epochs", "run")

    def __init__(self, process, connection: Connection):
        self.process = process
        self.connection = connection
        #: Batch tasks not yet resolved, in execution order.
        self.assigned: Deque[Tuple[int, CompiledMutant]] = deque()
        self.batch_len = 0
        self.batch_started = 0.0
        self.last_heard = 0.0
        #: Parent-side mirror of the worker's battery LRU (token →
        #: None, insertion-ordered).  Updated with exactly the same
        #: insert/touch/evict sequence the worker applies, over the same
        #: FIFO pipe, so membership here is authoritative.
        self.epochs: "OrderedDict[str, None]" = OrderedDict()
        #: The run whose batch this worker is currently executing.
        self.run: Optional["_RunHandle"] = None


class _Wakeup:
    """A self-pipe the dispatcher waits on alongside worker connections,
    so a newly registered run (or a close) is noticed immediately rather
    than at the next poll tick."""

    __slots__ = ("_reader", "_writer", "_closed")

    def __init__(self):
        self._reader, self._writer = os.pipe()
        os.set_blocking(self._reader, False)
        os.set_blocking(self._writer, False)
        self._closed = False

    def fileno(self) -> int:
        return self._reader

    def set(self) -> None:
        try:
            os.write(self._writer, b"x")
        except (BlockingIOError, OSError):
            pass  # already signalled (pipe full) or closed

    def drain(self) -> None:
        try:
            while os.read(self._reader, 4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            os.close(self._reader)
            os.close(self._writer)


@dataclass
class _RunHandle:
    """One registered ``analyze`` call, as the dispatcher sees it.

    The submitting thread blocks on ``done``; the dispatcher fills
    ``state`` and records telemetry on the run's own session.  The
    in-flight budget (``workers``) is the back-pressure knob: a run never
    holds more concurrent batches than workers it asked for, so K
    interleaved runs share the pool instead of one monopolizing it.
    """

    state: "_PoolState"
    obs: Telemetry
    workers: int
    backstop: float
    #: Cooperative cancellation: set by the submitter (service job
    #: cancel, sweep Ctrl-C); the dispatcher notices within one poll
    #: interval, kills the run's assigned workers, abandons its pending
    #: queue, and fails the run with :class:`RunCancelled`.
    cancel: Optional[threading.Event] = None
    #: Per-batch soft rlimits shipped with every one of this run's
    #: batches (service mode's per-job CPU/memory limits).
    limits: Optional[BatchLimits] = None
    inflight: int = 0
    submitted_at: float = 0.0
    first_dispatch_at: Optional[float] = None
    depth_peak: int = 0
    error: Optional[BaseException] = None
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def cancelled(self) -> bool:
        return self.cancel is not None and self.cancel.is_set()


class WorkerPool:
    """A multi-tenant pool of mutation workers persisting across runs.

    Engines draw workers from here instead of spawning their own; a pool
    survives battery boundaries, so table2/table3-style back-to-back runs
    reuse warm processes (and their worker-side battery LRUs) instead of
    paying fork + spec shipping every time.  One process-wide shared pool
    (:func:`shared_worker_pool`) is the default; tests and embedders can
    pass a private pool to the engine.

    Any number of runs may be in flight at once: each ``analyze`` call
    registers a :class:`_RunHandle` via :meth:`execute` and blocks until
    its verdicts are complete, while a single dispatcher thread owns
    every worker pipe, round-robins ready batches across the registered
    runs (respecting each run's in-flight budget), classifies crashes
    and hangs against the owning run only, and sizes the pool to the
    *largest* single run's worker request — concurrent runs share
    capacity, they do not multiply it.
    """

    def __init__(self, context=None):
        self._context = context if context is not None else _mp_context()
        self.workers: List[_Worker] = []
        self._closed = False
        self._lock = threading.RLock()
        #: run_id → handle, for message fencing.
        self._runs: Dict[int, _RunHandle] = {}
        #: Submission order, for round-robin fairness and deterministic
        #: spawn attribution.
        self._order: List[_RunHandle] = []
        self._rr = 0
        #: Workers lost mid-batch and not yet replaced; replacement
        #: spawns consume one casualty each and count as respawns.
        self._casualties = 0
        self._wakeup = _Wakeup()
        self._dispatcher: Optional[threading.Thread] = None

    @property
    def size(self) -> int:
        return len(self.workers)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def active_runs(self) -> int:
        with self._lock:
            return len(self._runs)

    # -- run execution ---------------------------------------------------

    def execute(self, handle: _RunHandle) -> None:
        """Register one run and block until every verdict is recorded.

        Thread-safe: concurrent callers interleave on the pool.  Raises
        whatever error the dispatcher attributed to the run.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            handle.submitted_at = time.perf_counter()
            self._runs[handle.state.run_id] = handle
            self._order.append(handle)
            if self._dispatcher is None or not self._dispatcher.is_alive():
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    name="repro-pool-dispatcher",
                    daemon=True,
                )
                self._dispatcher.start()
        self._wakeup.set()
        handle.done.wait()
        if handle.error is not None:
            raise handle.error

    # -- dispatcher ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    self._fail_all(RuntimeError("worker pool closed mid-run"))
                    return
                active = bool(self._runs)
                watched = [worker.connection for worker in self.workers
                           if worker.assigned]
            try:
                ready = connection_wait(
                    [self._wakeup, *watched],
                    timeout=_POLL_INTERVAL if active else None,
                )
            except OSError:
                ready = []  # a pipe vanished mid-wait; the tick classifies
            with self._lock:
                if self._closed:
                    self._fail_all(RuntimeError("worker pool closed mid-run"))
                    return
                try:
                    self._wakeup.drain()
                    for source in ready:
                        if source is self._wakeup:
                            continue
                        worker = self._worker_for(source)
                        if worker is not None:
                            self._drain_worker(worker)
                    if self._runs:
                        self._tick()
                except Exception as error:  # noqa: BLE001 — never die silent
                    # A dispatcher bug must not strand blocked submitters:
                    # fail every active run loudly and keep serving.
                    self._fail_all(error)

    def _tick(self) -> None:
        """One scheduling pass: cancel → health → sizing → dispatch →
        finalize."""
        now = time.perf_counter()
        for handle in [h for h in self._order if h.cancelled]:
            self._cancel_run(handle)
        for worker in list(self.workers):
            if not worker.process.is_alive():
                self._retire_dead(worker)
            elif (worker.run is not None and worker.assigned
                    and now - worker.last_heard > worker.run.backstop):
                self._retire_hung(worker)
        self._resize()
        idle = [worker for worker in self.workers if worker.run is None]
        for worker in idle:
            handle = self._next_runnable()
            if handle is None:
                break
            self._dispatch(worker, handle)
        for handle in [h for h in self._order if h.state.remaining <= 0]:
            self._order.remove(handle)
            self._runs.pop(handle.state.run_id, None)
            handle.obs.count_max("pool.queue_depth", handle.depth_peak)
            handle.done.set()
        if not self._runs:
            self._rr = 0
            self._casualties = 0

    def _cancel_run(self, handle: _RunHandle) -> None:
        """Abandon one run at its submitter's request.

        Workers currently executing the run's batches are killed, not
        detached: a detached-but-busy worker would accept a neighbour's
        batch into its pipe and then look hung on it.  Casualties are
        respawned by the normal resize pass, so the pool itself is never
        recycled and neighbouring runs keep their warm workers.  Verdicts
        already recorded are discarded with the run; the submitter gets
        :class:`RunCancelled`.
        """
        state, obs = handle.state, handle.obs
        for worker in list(self.workers):
            if worker.run is not handle:
                continue
            worker.assigned.clear()
            worker.batch_len = 0
            self._finish_batch(worker)
            self._casualties += 1
            try:
                worker.process.kill()
                worker.process.join()
            except (OSError, AssertionError):
                pass  # already gone
            self.discard(worker)
        abandoned = len(state.pending)
        state.pending.clear()
        obs.event("pool.run_cancelled", run=state.run_id,
                  pending=abandoned, outstanding=state.remaining)
        obs.count("pool.runs_cancelled")
        if handle in self._order:
            self._order.remove(handle)
        self._runs.pop(state.run_id, None)
        handle.error = RunCancelled(
            f"analysis cancelled with {state.remaining} verdict(s) "
            f"outstanding"
        )
        handle.done.set()

    def _next_runnable(self) -> Optional[_RunHandle]:
        """Round-robin over runs with pending work and budget headroom."""
        count = len(self._order)
        for step in range(count):
            handle = self._order[(self._rr + step) % count]
            if handle.state.pending and handle.inflight < handle.workers:
                self._rr = (self._rr + step + 1) % count
                return handle
        return None

    def _resize(self) -> None:
        """Size the pool to the largest single run's usable worker count.

        Capacity is shared, not multiplied: with runs A and B both asking
        for 2 workers, the pool holds 2 and the round-robin interleaves
        their batches.  A replacement for a worker lost mid-batch counts
        as a respawn on the telemetry of the run it is spawned for.
        """
        target = 0
        spawn_for: Optional[_RunHandle] = None
        for handle in self._order:
            usable = min(handle.workers,
                         handle.inflight + len(handle.state.pending))
            if usable > target:
                target = usable
            if (spawn_for is None and handle.state.pending
                    and handle.inflight < handle.workers):
                spawn_for = handle
        while len(self.workers) < target and spawn_for is not None:
            self.spawn_one(spawn_for.obs)
            if self._casualties > 0:
                self._casualties -= 1
                spawn_for.obs.count("parallel.respawns")

    # -- message handling ------------------------------------------------

    def _drain_worker(self, worker: _Worker) -> None:
        """Apply every message currently sitting in one worker's pipe."""
        try:
            while worker.connection.poll(0):
                self._apply_message(worker, worker.connection.recv())
        except (EOFError, OSError):
            pass  # pipe closed mid-batch: the next tick classifies it

    def _apply_message(self, worker: _Worker, message: Tuple) -> None:
        kind = message[0]
        if kind not in ("done", "error"):
            return
        run_id, index = message[1], message[2]
        previously_heard = worker.last_heard
        worker.last_heard = time.perf_counter()
        handle = self._runs.get(run_id)
        if handle is None or handle is not worker.run:
            return  # residue of a previous run on this persistent worker
        state, obs = handle.state, handle.obs
        task: Optional[Tuple[int, CompiledMutant]] = None
        for assigned in worker.assigned:
            if assigned[0] == index:
                task = assigned
                break
        if task is not None:
            worker.assigned.remove(task)
        if kind == "done":
            state.record(index, message[3], message[4])
            obs.event(
                "parallel.task", index=index,
                mutant=state.mutants[index].record.ident,
                seconds=round(worker.last_heard - previously_heard, 6),
            )
            if state.cache is not None and state.keys is not None:
                # Write-back happens in the parent so workers never touch
                # the store; identical keys carry identical payloads, so a
                # duplicate store (e.g. during salvage) is a harmless
                # append the next compaction folds away.
                state.cache.store(state.keys[index], message[3], message[4])
        else:
            obs.count("parallel.worker_errors")
            state.record(index, _boundary_outcome(
                state.mutants[index].record,
                KillReason.WORKER_CRASH,
                f"worker failed to run mutant: {message[3]}",
            ))
        if not worker.assigned and worker.batch_len:
            obs.event(
                "parallel.batch", size=worker.batch_len,
                seconds=round(worker.last_heard - worker.batch_started, 6),
            )
            worker.batch_len = 0
            self._finish_batch(worker)

    def _finish_batch(self, worker: _Worker) -> None:
        """Release the worker's batch slot back to its run's budget."""
        if worker.run is not None:
            worker.run.inflight -= 1
            worker.run = None

    # -- health ----------------------------------------------------------

    def _retire_dead(self, worker: _Worker) -> None:
        # Salvage results the worker sent before dying, then apply the
        # batch crash rule *against the owning run only*: a single
        # unreported mutant was provably executing and is classified as a
        # process-boundary crash kill; a multi-mutant remainder is
        # re-dispatched solo so one poisoned mutant cannot take out its
        # batchmates' verdicts.  An idle dead worker carries no state and
        # is simply pruned.
        worker.process.join()
        handle = worker.run
        if handle is not None:
            self._drain_worker(worker)
            handle = worker.run  # salvage may have completed the batch
        if handle is not None:
            state, obs = handle.state, handle.obs
            unreported = [task for task in worker.assigned
                          if state.results[task[0]] is None]
            worker.assigned.clear()
            worker.batch_len = 0
            self._finish_batch(worker)
            self._casualties += 1
            if len(unreported) == 1:
                index, mutant = unreported[0]
                obs.event("parallel.worker_crash", index=index,
                          mutant=mutant.record.ident,
                          exitcode=worker.process.exitcode)
                obs.count("parallel.worker_crashes")
                state.record(index, _boundary_outcome(
                    mutant.record, KillReason.WORKER_CRASH,
                    f"worker process died (exitcode {worker.process.exitcode}) "
                    f"while running the suite",
                ))
            elif unreported:
                obs.event("parallel.batch_failed", size=len(unreported),
                          reason="crash",
                          exitcode=worker.process.exitcode)
                obs.count("parallel.batch_redispatches")
                for task in reversed(unreported):
                    state.solo.add(task[0])
                    state.pending.appendleft(task)
        self.discard(worker)

    def _retire_hung(self, worker: _Worker) -> None:
        # The verdict may have landed in the pipe while we were not
        # looking; salvage it first — only a genuinely silent worker is a
        # hang.
        handle = worker.run
        if handle is None:
            return
        self._drain_worker(worker)
        if worker.run is None:
            return  # salvage completed the batch; the worker is fine
        state, obs = handle.state, handle.obs
        unreported = [task for task in worker.assigned
                      if state.results[task[0]] is None]
        worker.assigned.clear()
        worker.batch_len = 0
        if not unreported:
            self._finish_batch(worker)
            return
        # Execution is in-order and every verdict streams back the moment
        # it exists, so a silent worker is provably stuck on its *first*
        # unreported mutant; the rest of the batch never started and is
        # re-queued untouched.
        self._finish_batch(worker)
        self._casualties += 1
        index, mutant = unreported[0]
        worker.process.kill()
        worker.process.join()
        self.discard(worker)
        obs.event("parallel.wall_timeout", index=index,
                  mutant=mutant.record.ident,
                  backstop=handle.backstop)
        obs.count("parallel.wall_timeouts")
        state.record(index, _boundary_outcome(
            mutant.record, KillReason.WALL_TIMEOUT,
            f"no verdict within the {handle.backstop:.1f}s wall-clock "
            f"backstop; worker killed",
        ))
        rest = unreported[1:]
        if rest:
            obs.event("parallel.batch_failed", size=len(rest),
                      reason="hang")
            obs.count("parallel.batch_redispatches")
            for task in reversed(rest):
                state.pending.appendleft(task)

    # -- dispatch --------------------------------------------------------

    def _dispatch(self, worker: _Worker, handle: _RunHandle) -> None:
        """Hand the worker its next batch for ``handle``'s run."""
        state, obs = handle.state, handle.obs
        if worker.assigned or not state.pending:
            return
        now = time.perf_counter()
        token = state.token
        if token not in worker.epochs:
            try:
                worker.connection.send(("battery", token, state.spec))
            except (BrokenPipeError, OSError):
                return  # dead worker: the next tick prunes and respawns
            worker.epochs[token] = None
            obs.count("parallel.battery_shipped")
            while len(worker.epochs) > WORKER_BATTERY_LRU:
                worker.epochs.popitem(last=False)
                obs.count("pool.battery_evictions")
        else:
            worker.epochs.move_to_end(token)
        batch: List[Tuple[int, CompiledMutant]] = []
        while state.pending and len(batch) < state.batch_size:
            index = state.pending[0][0]
            if index in state.solo and batch:
                break  # a solo task never joins a batch already in hand
            batch.append(state.pending.popleft())
            if index in state.solo:
                break  # …and never takes batchmates of its own
        #: Tasks still queued pool-wide after this batch left — the
        #: executor's backlog, reported per dispatch and peak-tracked.
        depth = sum(len(h.state.pending) for h in self._order)
        if depth > handle.depth_peak:
            handle.depth_peak = depth
        for index, mutant in batch:
            obs.event(
                "parallel.dispatch", index=index,
                mutant=mutant.record.ident,
                waited=round(now - state.enqueued_at, 6),
                batch=len(batch),
                depth=depth,
            )
        obs.count("parallel.batches")
        if handle.first_dispatch_at is None:
            handle.first_dispatch_at = now
            queue_wait = now - handle.submitted_at
            obs.event("pool.queue_wait", run=state.run_id,
                      seconds=round(queue_wait, 6))
            obs.count("pool.queue_wait_ms", int(queue_wait * 1000))
        worker.assigned = deque(batch)
        worker.batch_len = len(batch)
        worker.batch_started = worker.last_heard = now
        worker.run = handle
        handle.inflight += 1
        try:
            worker.connection.send(("batch", state.run_id, token,
                                    tuple(batch), handle.limits))
        except (BrokenPipeError, OSError):
            # Worker already dead; the next tick applies the batch crash
            # rule to the assigned tasks (classify one, re-dispatch many).
            pass

    # -- worker lifecycle ------------------------------------------------

    def prune_dead(self) -> None:
        """Drop workers that died while idle (no state to classify)."""
        with self._lock:
            for worker in list(self.workers):
                if not worker.process.is_alive() and worker.run is None:
                    self.discard(worker)

    def ensure(self, count: int, telemetry: Optional[Telemetry] = None) -> None:
        """Grow the pool to at least ``count`` live workers."""
        with self._lock:
            while len(self.workers) < count:
                self.spawn_one(telemetry)

    def spawn_one(self, telemetry: Optional[Telemetry] = None) -> _Worker:
        obs = coalesce(telemetry)
        parent_connection, child_connection = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main, args=(child_connection,), daemon=True,
        )
        process.start()
        child_connection.close()
        obs.event("parallel.worker_spawned", pid=process.pid)
        obs.count("parallel.workers_spawned")
        worker = _Worker(process, parent_connection)
        self.workers.append(worker)
        return worker

    def discard(self, worker: _Worker) -> None:
        """Forget one (already killed or dead) worker."""
        try:
            worker.connection.close()
        except OSError:
            pass
        if worker in self.workers:
            self.workers.remove(worker)

    def _worker_for(self, connection) -> Optional[_Worker]:
        for worker in self.workers:
            if worker.connection is connection:
                return worker
        return None

    def _fail_all(self, error: BaseException) -> None:
        for handle in self._order:
            handle.error = error
            handle.done.set()
        self._order.clear()
        self._runs.clear()

    def close(self) -> None:
        """Shut every worker down; the pool is unusable afterwards.

        Idempotent and exception-silent by contract: the ``atexit`` hook
        (:func:`shutdown_shared_pool`) may run after the interpreter has
        already torn down the dispatcher thread, reaped worker processes,
        or closed their pipes — every step here tolerates workers and
        pipes that are already gone, and a second call is a no-op.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            dispatcher = self._dispatcher
        try:
            self._wakeup.set()
        except Exception:  # noqa: BLE001 — pipe already closed
            pass
        if (dispatcher is not None and dispatcher.is_alive()
                and dispatcher is not threading.current_thread()):
            try:
                dispatcher.join(timeout=5.0)
            except Exception:  # noqa: BLE001 — interpreter tearing down
                pass
        with self._lock:
            if self._runs:
                self._fail_all(RuntimeError("worker pool closed mid-run"))
            for worker in self.workers:
                try:
                    worker.connection.send(None)
                except Exception:  # noqa: BLE001 — dead worker / closed pipe
                    pass
            for worker in self.workers:
                try:
                    worker.process.join(timeout=1.0)
                    if worker.process.is_alive():
                        worker.process.kill()
                        worker.process.join()
                except Exception:  # noqa: BLE001 — already reaped
                    pass
                try:
                    worker.connection.close()
                except Exception:  # noqa: BLE001
                    pass
            self.workers.clear()
        try:
            self._wakeup.close()
        except Exception:  # noqa: BLE001
            pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_SHARED_POOL: Optional[WorkerPool] = None
_SHARED_POOL_LOCK = threading.Lock()


def shared_worker_pool() -> WorkerPool:
    """The process-wide pool engines share by default.

    Created on first use and kept warm until :func:`shutdown_shared_pool`
    (registered ``atexit``) — this is what carries worker processes across
    batteries within one experiment process.  Concurrent engines register
    runs on it and interleave; nothing ever falls back to a private pool.
    """
    global _SHARED_POOL
    with _SHARED_POOL_LOCK:
        if _SHARED_POOL is None or _SHARED_POOL.closed:
            _SHARED_POOL = WorkerPool()
        return _SHARED_POOL


def shutdown_shared_pool() -> None:
    """Close the shared pool (safe to call when none exists).

    Registered ``atexit``, so it can run after the interpreter has begun
    tearing the process down — after daemon threads (including the pool
    dispatcher) have been stopped, worker processes reaped, and pipes
    closed.  It must therefore be idempotent and never raise: a shutdown
    race at exit is cosmetic, and an exception here would mask the
    program's real outcome.
    """
    global _SHARED_POOL
    with _SHARED_POOL_LOCK:
        pool, _SHARED_POOL = _SHARED_POOL, None
    if pool is not None:
        try:
            pool.close()
        except Exception:  # noqa: BLE001 — exit-time race; stay silent
            pass


atexit.register(shutdown_shared_pool)


def _mp_context():
    # fork keeps worker start cheap and inherits loaded modules; fall
    # back to the platform default where fork is unavailable.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _spec_token(spec: WorkerSpec) -> str:
    """The battery epoch token: content hash of the pickled spec.

    Workers cache their rebuilt analyses under this token, so re-running
    a recent battery (same class, suite, reference, coverage, flags)
    ships no spec at all; an unseen token configures on the next
    dispatch.
    """
    payload = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(payload).hexdigest()


def _boundary_outcome(record, reason: KillReason,
                      detail: str) -> MutantOutcome:
    """The paper's "program crashed" clause, applied at the process
    boundary: the mutant is killed, but no in-process case verdict
    exists, so ``killing_case`` stays empty and ``cases_run`` is 0."""
    return MutantOutcome(
        mutant=record,
        killed=True,
        reason=reason,
        killing_case="",
        cases_run=0,
        killing_cases=(),
        detail=detail,
    )


@dataclass
class _PoolState:
    """Mutable bookkeeping for one ``analyze`` call."""

    mutants: List[CompiledMutant]
    pending: Deque[Tuple[int, CompiledMutant]]
    results: List[Optional[MutantOutcome]]
    remaining: int
    run_id: int = 0
    token: str = ""
    spec: Optional[WorkerSpec] = None
    batch_size: int = 1
    #: Indices that must be dispatched as singleton batches: survivors of
    #: a crashed multi-mutant batch, re-run alone so a poisoned batchmate
    #: cannot contaminate their verdicts (and so the poisoned one, alone
    #: in its batch, is attributable when it kills its worker again).
    solo: Set[int] = field(default_factory=set)
    step_timeouts: int = 0
    #: When the pending queue was filled — dispatch events report each
    #: task's queue wait relative to this instant.
    enqueued_at: float = 0.0
    #: Outcome cache + per-index entry keys; ``None`` when caching is off.
    #: Only in-process verdicts ("done" messages) are written back — a
    #: worker-boundary kill depends on scheduling, not fingerprinted input.
    cache: Optional[MutationOutcomeCache] = None
    keys: Optional[List[CacheKey]] = None

    def record(self, index: int, outcome: MutantOutcome,
               timeouts: int = 0) -> None:
        """Fill one result slot exactly once (duplicates are dropped)."""
        if self.results[index] is None:
            self.results[index] = outcome
            self.remaining -= 1
            self.step_timeouts += timeouts


class ParallelMutationAnalysis:
    """Fans mutants out to worker processes; merges serial-identical results.

    Accepts the same configuration as :class:`MutationAnalysis` plus the
    pool shape: ``workers`` (this run's in-flight budget and the pool
    width it may grow the pool to), ``batch_size`` (mutants per dispatch
    chunk; default adaptive) and ``pool`` (an explicit
    :class:`WorkerPool`; default the process-wide shared pool, which keeps
    workers warm across batteries and interleaves concurrent runs).
    Every configuration object (suite, oracle, class builder, setup hook)
    must be picklable because workers are rebuilt from them; all shipped
    configurations in :mod:`repro.experiments.config` are.
    """

    def __init__(self, original_class: type, suite: TestSuite,
                 oracle: Optional[CompositeOracle] = None,
                 class_builder: Optional[ClassBuilder] = None,
                 step_budget: int = DEFAULT_STEP_BUDGET,
                 stop_on_first_kill: bool = True,
                 check_invariants: bool = True,
                 setup: Optional[Callable[[], None]] = None,
                 reference: Optional[SuiteResult] = None,
                 workers: Optional[int] = None,
                 wall_clock_backstop: float = DEFAULT_WALL_CLOCK_BACKSTOP,
                 cache: Optional[MutationOutcomeCache] = None,
                 prune: bool = True,
                 coverage: Optional[CoverageMatrix] = None,
                 telemetry: Optional[Telemetry] = None,
                 static_triage: bool = True,
                 triage_type_model: Optional[TypeModel] = None,
                 batch_size: Optional[int] = None,
                 pool: Optional[WorkerPool] = None,
                 cancel_event: Optional[threading.Event] = None,
                 rlimits: Optional[BatchLimits] = None):
        if wall_clock_backstop <= 0:
            raise ValueError("wall-clock backstop must be positive")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch size must be at least 1")
        self._original = original_class
        self._suite = suite
        self._oracle = oracle
        self._class_builder = class_builder
        self._step_budget = step_budget
        self._stop_on_first_kill = stop_on_first_kill
        self._check_invariants = check_invariants
        self._setup = setup
        self._workers = max(1, workers if workers is not None
                            else (os.cpu_count() or 1))
        self._backstop = wall_clock_backstop
        self._batch_size = batch_size
        self._pool_override = pool
        # Cooperative cancellation + per-batch rlimits (service mode's
        # per-job knobs).  Neither influences verdicts, so neither enters
        # the experiment fingerprint.
        self._cancel_event = cancel_event
        self._rlimits = (None if rlimits is not None and rlimits.empty
                         else rlimits)
        # The cache lives in the parent only: hits are resolved before any
        # worker is scheduled, and write-backs happen as verdicts arrive.
        # Workers stay cache-oblivious, so a worker process never touches
        # the store and the serial-equivalence contract is unaffected.
        self._cache = cache
        self._prune = prune
        # Static triage runs in the parent only, before the pool is sized:
        # a triaged mutant never enters the pending queue, so no worker
        # ever sees it — the zero-dispatch guarantee is structural (batch
        # assembly only ever draws from the pending queue), and the
        # WorkerSpec needs no triage state at all.
        self._static_triage = static_triage
        self._triage_type_model = triage_type_model
        # Telemetry lives in the parent only: worker lifecycle, dispatch
        # waits and task turnarounds are recorded here (by the pool's
        # dispatcher thread, onto this run's session), while workers run
        # un-instrumented (the WorkerSpec never carries a session), so the
        # trace stays consistent and workers stay byte-identical to the
        # serial engine.
        self._obs = coalesce(telemetry)
        # The reference run — and, under pruning, the coverage matrix it
        # records in the same instrumented pass — is computed (or seeded)
        # in the parent, once, by a plain serial analysis; workers inherit
        # both verbatim.  The serial helper also owns the experiment
        # fingerprint (it sees the same configuration), but is never given
        # the cache itself.
        self._serial = MutationAnalysis(
            original_class, suite, oracle=oracle, class_builder=class_builder,
            step_budget=step_budget, stop_on_first_kill=stop_on_first_kill,
            check_invariants=check_invariants, setup=setup,
            reference=reference, prune=prune, coverage=coverage,
            telemetry=telemetry, static_triage=static_triage,
            triage_type_model=triage_type_model,
            cancel_event=cancel_event,
        )

    # ------------------------------------------------------------------

    @property
    def suite(self) -> TestSuite:
        return self._suite

    @property
    def workers(self) -> int:
        return self._workers

    def reference_results(self) -> SuiteResult:
        return self._serial.reference_results()

    def coverage_matrix(self) -> Optional[CoverageMatrix]:
        return self._serial.coverage_matrix()

    # ------------------------------------------------------------------

    def analyze(self, mutants: Sequence[CompiledMutant]) -> MutationRun:
        """Run the suite over every mutant across the worker pool.

        With a cache attached, hits are replayed in the parent before the
        pool is sized: a fully warm run touches no worker and executes
        zero mutant test cases, yet still assembles a ``same_results``-
        identical ``MutationRun``.
        """
        mutants = list(mutants)
        if self._cancel_event is not None and self._cancel_event.is_set():
            raise RunCancelled("analysis cancelled before dispatch")
        reference = self.reference_results()
        started = time.perf_counter()
        cache = self._cache
        keys: Optional[List[CacheKey]] = None
        prefilled: dict = {}
        #: Redundant mutants: excluded from the pending queue, their slots
        #: are filled *after* the pool drains, from the representative's
        #: now-known verdict.
        deferred: Dict[int, CompiledMutant] = {}
        stats_before = None
        triage: Optional[StaticTriage] = None
        with self._obs.span("parallel.run", mutants=len(mutants),
                            workers=self._workers) as span:
            if self._static_triage:
                triage = triage_mutants(
                    self._original, mutants,
                    type_model=self._triage_type_model,
                    cache=cache,
                    telemetry=self._obs,
                )
                equivalents, deferred = triage.partition(mutants)
                for index, mutant in equivalents.items():
                    prefilled[index] = (triaged_outcome(mutant, triage, {}), 0)
                span.set("triage_skipped", len(prefilled) + len(deferred))
            if cache is not None:
                experiment = self._serial.experiment_fingerprint()
                keys = [cache.key_for(experiment, mutant)
                        for mutant in mutants]
                stats_before = cache.snapshot()
                cache_hits = 0
                for index in range(len(mutants)):
                    if index in prefilled or index in deferred:
                        # Triage already resolved this slot — no store
                        # traffic for mutants that are never executed.
                        continue
                    entry = cache.lookup(keys[index])
                    if entry is not None:
                        prefilled[index] = (entry.outcome,
                                            entry.step_timeouts)
                        cache_hits += 1
                span.set("cache_hits", cache_hits)
            state = self._run_pool(mutants, reference, prefilled, cache,
                                   keys, skip=frozenset(deferred))
            span.set("batch_size", state.batch_size)
            if deferred:
                by_ident = {
                    mutants[index].ident: outcome
                    for index, outcome in enumerate(state.results)
                    if outcome is not None
                }
                for index, mutant in deferred.items():
                    state.results[index] = triaged_outcome(
                        mutant, triage, by_ident
                    )
        elapsed = time.perf_counter() - started
        outcomes = tuple(
            outcome for outcome in state.results if outcome is not None
        )
        return MutationRun(
            class_name=self._original.__name__,
            suite_size=len(self._suite),
            outcomes=outcomes,
            reference=reference,
            elapsed_seconds=elapsed,
            step_timeouts=state.step_timeouts,
            cache_stats=(cache.snapshot().since(stats_before)
                         if cache is not None else None),
            triage=triage,
        )

    # ------------------------------------------------------------------
    # Pool mechanics
    # ------------------------------------------------------------------

    def _run_pool(self, mutants: List[CompiledMutant],
                  reference: SuiteResult,
                  prefilled: Optional[dict] = None,
                  cache: Optional[MutationOutcomeCache] = None,
                  keys: Optional[List[CacheKey]] = None,
                  skip: FrozenSet[int] = frozenset()) -> _PoolState:
        prefilled = prefilled or {}
        state = _PoolState(
            mutants=mutants,
            pending=deque(
                (index, mutant) for index, mutant in enumerate(mutants)
                if index not in prefilled and index not in skip
            ),
            # ``skip`` slots (statically-redundant mutants) stay ``None``
            # through the pool loop; the caller fills them afterwards from
            # their representative's verdict, so they never count towards
            # ``remaining`` and no worker ever sees them.
            results=[None] * len(mutants),
            remaining=len(mutants) - len(skip),
            cache=cache,
            keys=keys,
            enqueued_at=time.perf_counter(),
        )
        for index, (outcome, timeouts) in prefilled.items():
            state.record(index, outcome, timeouts)
        if not state.pending:
            return state
        state.spec = WorkerSpec(
            original_class=self._original,
            suite=self._suite,
            oracle=self._oracle,
            class_builder=self._class_builder,
            step_budget=self._step_budget,
            stop_on_first_kill=self._stop_on_first_kill,
            check_invariants=self._check_invariants,
            setup=self._setup,
            reference=reference,
            prune=self._prune,
            coverage=self._serial.coverage_matrix(),
        )
        state.token = _spec_token(state.spec)
        state.run_id = next(_RUN_IDS)
        state.batch_size = (self._batch_size
                            if self._batch_size is not None
                            else default_batch_size(len(state.pending),
                                                    self._workers))
        pool = (self._pool_override if self._pool_override is not None
                else shared_worker_pool())
        handle = _RunHandle(
            state=state,
            obs=self._obs,
            workers=self._workers,
            backstop=self._backstop,
            cancel=self._cancel_event,
            limits=self._rlimits,
        )
        pool.execute(handle)
        return state


def analyze_mutants_parallel(original_class: type, suite: TestSuite,
                             mutants: Sequence[CompiledMutant],
                             workers: Optional[int] = None,
                             **options) -> MutationRun:
    """One-call convenience over :class:`ParallelMutationAnalysis`."""
    return ParallelMutationAnalysis(
        original_class, suite, workers=workers, **options
    ).analyze(mutants)
