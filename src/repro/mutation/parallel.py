"""Process-pool mutation analysis with serial-equivalent results.

The paper ran every mutant "as a separate class … individually compiled"
(sec. 4) — each mutant execution is an independent program, which is
exactly the independence that makes per-mutant fan-out safe.  This module
exploits it: mutants are distributed over N worker processes, each worker
**recompiles the mutant from its source payload** (the pickle protocol of
:class:`~repro.mutation.mutant.CompiledMutant`), runs the suite under a
fresh :class:`~repro.mutation.sandbox.StepBudgetGuard`, and ships the
outcome back to the parent.

Two contracts, both tested differentially against the serial engine:

* **Determinism.**  Outcomes are merged back *in submission order*, every
  worker judges against the parent's single recorded reference run, and the
  step-budget sandbox makes each mutant's verdict schedule-independent — so
  the parallel :class:`~repro.mutation.analysis.MutationRun` is
  field-for-field identical to the serial one (wall-clock aside; see
  :meth:`~repro.mutation.analysis.MutationRun.same_results`).

* **Robustness.**  The paper's kill rule (i) is "the program crashed while
  running the test cases".  In-process, the step budget already converts
  runaway loops into deterministic ``TIMEOUT`` verdicts; what it cannot
  catch is a mutant that takes the whole process down (``os._exit``, a
  segfaulting extension, an interpreter abort) or blocks without executing
  Python lines.  Those become the *worker boundary*'s problem: a dead
  worker marks its in-flight mutant killed with
  :attr:`~repro.harness.oracles.KillReason.WORKER_CRASH`, a worker silent
  past the wall-clock backstop is killed and its mutant marked
  :attr:`~repro.harness.oracles.KillReason.WALL_TIMEOUT`, and a
  replacement worker is spawned so every remaining mutant still runs.  The
  engine never wedges on a hostile mutant.

Per-worker ``StepBudgetGuard.timeouts`` counters are aggregated into
``MutationRun.step_timeouts`` so sandbox activity stays observable across
process boundaries.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from typing import (
    Callable,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..generator.suite import TestSuite
from ..harness.oracles import CompositeOracle, KillReason
from ..harness.outcomes import SuiteResult
from ..obs import Telemetry, coalesce
from .analysis import (
    ClassBuilder,
    MutantOutcome,
    MutationAnalysis,
    MutationRun,
    triaged_outcome,
)
from .cache import CacheKey, MutationOutcomeCache
from .coverage import CoverageMatrix
from .mutant import CompiledMutant
from .sandbox import DEFAULT_STEP_BUDGET
from .triage import StaticTriage, TriageStatus, triage_mutants
from .typemodel import TypeModel

#: Default wall-clock backstop per mutant, in seconds.  Generous: the step
#: budget catches ordinary runaway mutants deterministically within
#: milliseconds; the backstop only exists for mutants that block without
#: executing traceable Python lines, where only elapsed time is observable.
DEFAULT_WALL_CLOCK_BACKSTOP = 60.0

#: How long the parent waits on worker pipes before running a health pass.
_POLL_INTERVAL = 0.05


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild the serial analysis (picklable)."""

    original_class: type
    suite: TestSuite
    oracle: Optional[CompositeOracle]
    class_builder: Optional[ClassBuilder]
    step_budget: int
    stop_on_first_kill: bool
    check_invariants: bool
    setup: Optional[Callable[[], None]]
    reference: SuiteResult
    #: Coverage-guided pruning: the matrix is recorded once in the parent
    #: (alongside the reference) and shipped verbatim, so every worker
    #: skips exactly the (mutant, case) pairs the serial engine would.
    prune: bool = True
    coverage: Optional[CoverageMatrix] = None


def _worker_main(connection: Connection, spec: WorkerSpec) -> None:
    """Worker loop: receive ``(index, mutant)`` tasks, send outcomes back.

    The worker is a plain serial :class:`MutationAnalysis` seeded with the
    parent's reference run; parallelism changes *where* a mutant runs,
    never *how*.
    """
    analysis = MutationAnalysis(
        spec.original_class,
        spec.suite,
        oracle=spec.oracle,
        class_builder=spec.class_builder,
        step_budget=spec.step_budget,
        stop_on_first_kill=spec.stop_on_first_kill,
        check_invariants=spec.check_invariants,
        setup=spec.setup,
        reference=spec.reference,
        prune=spec.prune,
        coverage=spec.coverage,
    )
    try:
        while True:
            message = connection.recv()
            if message is None:
                break
            index, mutant = message
            try:
                outcome, timeouts = analysis.analyze_single(mutant)
                connection.send(("done", index, outcome, timeouts))
            except KeyboardInterrupt:
                raise
            except BaseException as error:  # noqa: BLE001 — must not die
                # A harness-level failure (builder blew up, SystemExit from
                # mutated code, …).  Report it instead of taking the worker
                # down; the parent classifies it as a worker-boundary kill.
                connection.send(
                    ("error", index, f"{type(error).__name__}: {error}")
                )
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away or shut us down; nothing to clean up
    finally:
        connection.close()


class _Worker:
    """Parent-side handle for one worker process."""

    __slots__ = ("process", "connection", "task", "started_at")

    def __init__(self, process, connection: Connection):
        self.process = process
        self.connection = connection
        self.task: Optional[Tuple[int, CompiledMutant]] = None
        self.started_at = 0.0


@dataclass
class _PoolState:
    """Mutable bookkeeping for one ``analyze`` call."""

    pending: Deque[Tuple[int, CompiledMutant]]
    results: List[Optional[MutantOutcome]]
    remaining: int
    step_timeouts: int = 0
    pool: List[_Worker] = field(default_factory=list)
    #: When the pending queue was filled — dispatch events report each
    #: task's queue wait relative to this instant.
    enqueued_at: float = 0.0
    #: Outcome cache + per-index entry keys; ``None`` when caching is off.
    #: Only in-process verdicts ("done" messages) are written back — a
    #: worker-boundary kill depends on scheduling, not fingerprinted input.
    cache: Optional[MutationOutcomeCache] = None
    keys: Optional[List[CacheKey]] = None

    def record(self, index: int, outcome: MutantOutcome,
               timeouts: int = 0) -> None:
        """Fill one result slot exactly once (duplicates are dropped)."""
        if self.results[index] is None:
            self.results[index] = outcome
            self.remaining -= 1
            self.step_timeouts += timeouts


class ParallelMutationAnalysis:
    """Fans mutants out to worker processes; merges serial-identical results.

    Accepts the same configuration as :class:`MutationAnalysis` plus the
    pool shape.  Every configuration object (suite, oracle, class builder,
    setup hook) must be picklable because workers are rebuilt from them;
    all shipped configurations in :mod:`repro.experiments.config` are.
    """

    def __init__(self, original_class: type, suite: TestSuite,
                 oracle: Optional[CompositeOracle] = None,
                 class_builder: Optional[ClassBuilder] = None,
                 step_budget: int = DEFAULT_STEP_BUDGET,
                 stop_on_first_kill: bool = True,
                 check_invariants: bool = True,
                 setup: Optional[Callable[[], None]] = None,
                 reference: Optional[SuiteResult] = None,
                 workers: Optional[int] = None,
                 wall_clock_backstop: float = DEFAULT_WALL_CLOCK_BACKSTOP,
                 cache: Optional[MutationOutcomeCache] = None,
                 prune: bool = True,
                 coverage: Optional[CoverageMatrix] = None,
                 telemetry: Optional[Telemetry] = None,
                 static_triage: bool = True,
                 triage_type_model: Optional[TypeModel] = None):
        if wall_clock_backstop <= 0:
            raise ValueError("wall-clock backstop must be positive")
        self._original = original_class
        self._suite = suite
        self._oracle = oracle
        self._class_builder = class_builder
        self._step_budget = step_budget
        self._stop_on_first_kill = stop_on_first_kill
        self._check_invariants = check_invariants
        self._setup = setup
        self._workers = max(1, workers if workers is not None
                            else (os.cpu_count() or 1))
        self._backstop = wall_clock_backstop
        # The cache lives in the parent only: hits are resolved before any
        # worker is scheduled, and write-backs happen as verdicts arrive.
        # Workers stay cache-oblivious, so a worker process never touches
        # the store and the serial-equivalence contract is unaffected.
        self._cache = cache
        self._prune = prune
        # Static triage runs in the parent only, before the pool is sized:
        # a triaged mutant never enters the pending queue, so no worker
        # ever sees it — the zero-dispatch guarantee is structural, and
        # the WorkerSpec needs no triage state at all.
        self._static_triage = static_triage
        self._triage_type_model = triage_type_model
        # Telemetry lives in the parent only: worker lifecycle, dispatch
        # waits and task turnarounds are recorded here, while workers run
        # un-instrumented (the WorkerSpec never carries a session), so the
        # trace stays single-writer and workers stay byte-identical to the
        # serial engine.
        self._obs = coalesce(telemetry)
        # The reference run — and, under pruning, the coverage matrix it
        # records in the same instrumented pass — is computed (or seeded)
        # in the parent, once, by a plain serial analysis; workers inherit
        # both verbatim.  The serial helper also owns the experiment
        # fingerprint (it sees the same configuration), but is never given
        # the cache itself.
        self._serial = MutationAnalysis(
            original_class, suite, oracle=oracle, class_builder=class_builder,
            step_budget=step_budget, stop_on_first_kill=stop_on_first_kill,
            check_invariants=check_invariants, setup=setup,
            reference=reference, prune=prune, coverage=coverage,
            telemetry=telemetry, static_triage=static_triage,
            triage_type_model=triage_type_model,
        )

    # ------------------------------------------------------------------

    @property
    def suite(self) -> TestSuite:
        return self._suite

    @property
    def workers(self) -> int:
        return self._workers

    def reference_results(self) -> SuiteResult:
        return self._serial.reference_results()

    def coverage_matrix(self) -> Optional[CoverageMatrix]:
        return self._serial.coverage_matrix()

    # ------------------------------------------------------------------

    def analyze(self, mutants: Sequence[CompiledMutant]) -> MutationRun:
        """Run the suite over every mutant across the worker pool.

        With a cache attached, hits are replayed in the parent before the
        pool is sized: a fully warm run spawns zero workers and executes
        zero mutant test cases, yet still assembles a ``same_results``-
        identical ``MutationRun``.
        """
        mutants = list(mutants)
        reference = self.reference_results()
        started = time.perf_counter()
        cache = self._cache
        keys: Optional[List[CacheKey]] = None
        prefilled: dict = {}
        #: Redundant mutants: excluded from the pending queue, their slots
        #: are filled *after* the pool drains, from the representative's
        #: now-known verdict.
        deferred: Dict[int, CompiledMutant] = {}
        stats_before = None
        triage: Optional[StaticTriage] = None
        with self._obs.span("parallel.run", mutants=len(mutants),
                            workers=self._workers) as span:
            if self._static_triage:
                triage = triage_mutants(
                    self._original, mutants,
                    type_model=self._triage_type_model,
                    cache=cache,
                    telemetry=self._obs,
                )
                for index, mutant in enumerate(mutants):
                    status = triage.status_of(mutant.ident)
                    if status is TriageStatus.REDUNDANT:
                        deferred[index] = mutant
                    elif status is not TriageStatus.UNDECIDED:
                        prefilled[index] = (
                            triaged_outcome(mutant, triage, {}), 0,
                        )
                span.set("triage_skipped",
                         len(prefilled) + len(deferred))
            if cache is not None:
                experiment = self._serial.experiment_fingerprint()
                keys = [cache.key_for(experiment, mutant)
                        for mutant in mutants]
                stats_before = cache.snapshot()
                cache_hits = 0
                for index in range(len(mutants)):
                    if index in prefilled or index in deferred:
                        # Triage already resolved this slot — no store
                        # traffic for mutants that are never executed.
                        continue
                    entry = cache.lookup(keys[index])
                    if entry is not None:
                        prefilled[index] = (entry.outcome,
                                            entry.step_timeouts)
                        cache_hits += 1
                span.set("cache_hits", cache_hits)
            state = self._run_pool(mutants, reference, prefilled, cache,
                                   keys, skip=frozenset(deferred))
            if deferred:
                by_ident = {
                    mutants[index].ident: outcome
                    for index, outcome in enumerate(state.results)
                    if outcome is not None
                }
                for index, mutant in deferred.items():
                    state.results[index] = triaged_outcome(
                        mutant, triage, by_ident
                    )
        elapsed = time.perf_counter() - started
        outcomes = tuple(
            outcome for outcome in state.results if outcome is not None
        )
        return MutationRun(
            class_name=self._original.__name__,
            suite_size=len(self._suite),
            outcomes=outcomes,
            reference=reference,
            elapsed_seconds=elapsed,
            step_timeouts=state.step_timeouts,
            cache_stats=(cache.snapshot().since(stats_before)
                         if cache is not None else None),
            triage=triage,
        )

    # ------------------------------------------------------------------
    # Pool mechanics
    # ------------------------------------------------------------------

    def _run_pool(self, mutants: List[CompiledMutant],
                  reference: SuiteResult,
                  prefilled: Optional[dict] = None,
                  cache: Optional[MutationOutcomeCache] = None,
                  keys: Optional[List[CacheKey]] = None,
                  skip: FrozenSet[int] = frozenset()) -> _PoolState:
        prefilled = prefilled or {}
        state = _PoolState(
            pending=deque(
                (index, mutant) for index, mutant in enumerate(mutants)
                if index not in prefilled and index not in skip
            ),
            # ``skip`` slots (statically-redundant mutants) stay ``None``
            # through the pool loop; the caller fills them afterwards from
            # their representative's verdict, so they never count towards
            # ``remaining`` and no worker is ever spawned for them.
            results=[None] * len(mutants),
            remaining=len(mutants) - len(skip),
            cache=cache,
            keys=keys,
            enqueued_at=time.perf_counter(),
        )
        for index, (outcome, timeouts) in prefilled.items():
            state.record(index, outcome, timeouts)
        if not state.pending:
            return state
        spec = WorkerSpec(
            original_class=self._original,
            suite=self._suite,
            oracle=self._oracle,
            class_builder=self._class_builder,
            step_budget=self._step_budget,
            stop_on_first_kill=self._stop_on_first_kill,
            check_invariants=self._check_invariants,
            setup=self._setup,
            reference=reference,
            prune=self._prune,
            coverage=self._serial.coverage_matrix(),
        )
        context = self._mp_context()
        try:
            for _ in range(min(self._workers, len(mutants))):
                worker = self._spawn(context, spec)
                state.pool.append(worker)
                self._dispatch(worker, state)
            while state.remaining > 0:
                readable = connection_wait(
                    [worker.connection for worker in state.pool],
                    timeout=_POLL_INTERVAL,
                ) if state.pool else ()
                for connection in readable:
                    worker = self._worker_for(state.pool, connection)
                    if worker is not None:
                        self._receive(worker, state)
                self._health_pass(context, spec, state)
        finally:
            self._shutdown(state.pool)
        return state

    def _receive(self, worker: _Worker, state: _PoolState) -> None:
        """Drain one readable worker connection and hand out the next task."""
        try:
            message = worker.connection.recv()
        except (EOFError, OSError):
            return  # pipe closed mid-task: the next health pass classifies it
        self._apply_message(worker, state, message)
        self._dispatch(worker, state)

    def _apply_message(self, worker: _Worker, state: _PoolState,
                       message: Tuple) -> None:
        kind, index = message[0], message[1]
        if kind == "done":
            state.record(index, message[2], message[3])
            if worker.task is not None and worker.task[0] == index:
                self._obs.event(
                    "parallel.task", index=index,
                    mutant=worker.task[1].record.ident,
                    seconds=round(
                        time.perf_counter() - worker.started_at, 6),
                )
            if state.cache is not None and state.keys is not None:
                # Write-back happens in the parent so workers never touch
                # the store; identical keys carry identical payloads, so a
                # duplicate store (e.g. during salvage) is a harmless
                # atomic overwrite.
                state.cache.store(state.keys[index], message[2], message[3])
        elif kind == "error":
            self._obs.count("parallel.worker_errors")
            state.record(index, self._boundary_outcome(
                self._mutant_record(worker, index),
                KillReason.WORKER_CRASH,
                f"worker failed to run mutant: {message[2]}",
            ))
        if worker.task is not None and worker.task[0] == index:
            worker.task = None

    def _health_pass(self, context, spec: WorkerSpec,
                     state: _PoolState) -> None:
        """Classify dead/hung workers; keep the pool sized while work remains."""
        now = time.perf_counter()
        for worker in list(state.pool):
            if worker.process.is_alive():
                if (worker.task is not None
                        and now - worker.started_at > self._backstop):
                    self._retire_hung(worker, state)
                continue
            self._retire_dead(worker, state)
        while state.pending and len(state.pool) < self._workers:
            replacement = self._spawn(context, spec)
            self._obs.count("parallel.respawns")
            state.pool.append(replacement)
            self._dispatch(replacement, state)

    def _retire_hung(self, worker: _Worker, state: _PoolState) -> None:
        # The verdict may have landed in the pipe while we were not looking;
        # salvage it first — only a genuinely silent worker is a hang.
        self._salvage(worker, state)
        if worker.task is None:
            self._dispatch(worker, state)
            return
        index, mutant = worker.task
        worker.process.kill()
        worker.process.join()
        worker.connection.close()
        state.pool.remove(worker)
        self._obs.event("parallel.wall_timeout", index=index,
                        mutant=mutant.record.ident,
                        backstop=self._backstop)
        self._obs.count("parallel.wall_timeouts")
        state.record(index, self._boundary_outcome(
            mutant.record, KillReason.WALL_TIMEOUT,
            f"no verdict within the {self._backstop:.1f}s wall-clock "
            f"backstop; worker killed",
        ))

    def _retire_dead(self, worker: _Worker, state: _PoolState) -> None:
        # Salvage results the worker sent before dying, then classify
        # whatever was still in flight as a process-boundary crash kill.
        worker.process.join()
        self._salvage(worker, state)
        if worker.task is not None:
            index, mutant = worker.task
            self._obs.event("parallel.worker_crash", index=index,
                            mutant=mutant.record.ident,
                            exitcode=worker.process.exitcode)
            self._obs.count("parallel.worker_crashes")
            state.record(index, self._boundary_outcome(
                mutant.record, KillReason.WORKER_CRASH,
                f"worker process died (exitcode {worker.process.exitcode}) "
                f"while running the suite",
            ))
            worker.task = None
        worker.connection.close()
        state.pool.remove(worker)

    def _salvage(self, worker: _Worker, state: _PoolState) -> None:
        """Apply any messages already sitting in the worker's pipe."""
        try:
            while worker.connection.poll(0):
                self._apply_message(worker, state, worker.connection.recv())
        except (EOFError, OSError):
            pass

    def _dispatch(self, worker: _Worker, state: _PoolState) -> None:
        if worker.task is not None:
            return
        try:
            if state.pending:
                index, mutant = state.pending.popleft()
                worker.task = (index, mutant)
                worker.started_at = time.perf_counter()
                self._obs.event(
                    "parallel.dispatch", index=index,
                    mutant=mutant.record.ident,
                    waited=round(worker.started_at - state.enqueued_at, 6),
                )
                worker.connection.send((index, mutant))
            else:
                worker.connection.send(None)
        except (BrokenPipeError, OSError):
            # Worker already dead; the health pass classifies the in-flight
            # task as a crash kill (a crashing mutant is never retried).
            pass

    def _spawn(self, context, spec: WorkerSpec) -> _Worker:
        parent_connection, child_connection = context.Pipe(duplex=True)
        process = context.Process(
            target=_worker_main, args=(child_connection, spec), daemon=True,
        )
        process.start()
        child_connection.close()
        self._obs.event("parallel.worker_spawned", pid=process.pid)
        self._obs.count("parallel.workers_spawned")
        return _Worker(process, parent_connection)

    def _shutdown(self, pool: List[_Worker]) -> None:
        for worker in pool:
            try:
                worker.connection.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in pool:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            try:
                worker.connection.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _mp_context():
        # fork keeps worker start cheap and inherits loaded modules; fall
        # back to the platform default where fork is unavailable.
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    @staticmethod
    def _worker_for(pool: List[_Worker],
                    connection: Connection) -> Optional[_Worker]:
        for worker in pool:
            if worker.connection is connection:
                return worker
        return None

    @staticmethod
    def _boundary_outcome(record, reason: KillReason,
                          detail: str) -> MutantOutcome:
        """The paper's "program crashed" clause, applied at the process
        boundary: the mutant is killed, but no in-process case verdict
        exists, so ``killing_case`` stays empty and ``cases_run`` is 0."""
        return MutantOutcome(
            mutant=record,
            killed=True,
            reason=reason,
            killing_case="",
            cases_run=0,
            killing_cases=(),
            detail=detail,
        )

    @staticmethod
    def _mutant_record(worker: _Worker, index: int):
        if worker.task is not None and worker.task[0] == index:
            return worker.task[1].record
        raise RuntimeError(
            f"worker reported a result for task {index} it was not assigned"
        )


def analyze_mutants_parallel(original_class: type, suite: TestSuite,
                             mutants: Sequence[CompiledMutant],
                             workers: Optional[int] = None,
                             **options) -> MutationRun:
    """One-call convenience over :class:`ParallelMutationAnalysis`."""
    return ParallelMutationAnalysis(
        original_class, suite, workers=workers, **options
    ).analyze(mutants)
