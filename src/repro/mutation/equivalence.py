"""Equivalent-mutant approximation.

"The determination of equivalent mutants is a non-decidable problem, so
they were obtained manually, by analyzing the mutants that were alive after
the tests" (sec. 4).  We approximate that manual analysis with a
**differential deep probe**: every survivor of the main run is re-executed
under several stronger suites (fresh seeds, a higher loop bound, boundary
values mixed in).  A survivor the probe also cannot distinguish from the
original is classified *likely equivalent*; one the probe kills is a
genuine test-escape of the main suite.

A manual-override list is honoured both ways, mirroring the paper's hand
analysis: idents forced equivalent, and idents forced non-equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..core.errors import MutationError
from ..generator.driver import DriverGenerator
from ..generator.values import TypeBinding
from ..harness.oracles import KillReason
from ..tspec.model import ClassSpec
from .analysis import ClassBuilder, MutationAnalysis
from .mutant import CompiledMutant
from .sandbox import DEFAULT_STEP_BUDGET
from .triage import StaticTriage, TriageStatus

#: Probe seeds: several independent suites to reduce sampling luck.
DEFAULT_PROBE_SEEDS = (101, 202, 303)


@dataclass(frozen=True)
class EquivalenceReport:
    """Classification of the main run's survivors."""

    likely_equivalent: Tuple[str, ...]   # mutant idents
    escaped: Tuple[str, ...]             # killed only by the probe
    probe_kill_reasons: Dict[str, KillReason]
    probe_suite_sizes: Tuple[int, ...]

    @property
    def equivalent_count(self) -> int:
        return len(self.likely_equivalent)

    def is_equivalent(self, ident: str) -> bool:
        return ident in self.likely_equivalent

    def summary(self) -> str:
        return (
            f"{self.equivalent_count} likely-equivalent mutants, "
            f"{len(self.escaped)} escaped the main suite "
            f"(probe suites: {', '.join(map(str, self.probe_suite_sizes))} cases)"
        )


def probe_equivalence(original_class: type,
                      spec: ClassSpec,
                      survivors: Sequence[CompiledMutant],
                      class_builder: Optional[ClassBuilder] = None,
                      bindings: Optional[TypeBinding] = None,
                      seeds: Sequence[int] = DEFAULT_PROBE_SEEDS,
                      edge_bound: int = 2,
                      boundary_probability: float = 0.3,
                      extra_variants: int = 2,
                      max_transactions: int = 2000,
                      step_budget: int = DEFAULT_STEP_BUDGET,
                      setup: Optional[Callable[[], None]] = None,
                      manual_equivalent: Sequence[str] = (),
                      manual_not_equivalent: Sequence[str] = (),
                      triage: Optional[StaticTriage] = None,
                      ) -> EquivalenceReport:
    """Deep-probe the survivors and classify them.

    The probe suites intentionally exceed the main suite: a higher edge
    bound exercises loops twice, boundary mixing hits domain extremes, and
    multiple seeds vary the data.

    Manual-override idents must name actual survivors: an unknown ident is
    a configuration error (most likely a typo that would otherwise vanish
    silently into the report) and raises
    :class:`~repro.core.errors.MutationError`.

    ``triage`` feeds the static pass's proofs into the dynamic probe:
    survivors *proven* equivalent (AST/bytecode identity) are classified
    likely-equivalent without a single probe execution, and a survivor
    whose bytecode matches an earlier survivor's (``REDUNDANT``) inherits
    its representative's probe classification instead of being probed
    itself — the probe only ever executes statically-undecided survivors.
    """
    known_idents = {mutant.ident for mutant in survivors}
    unknown = (set(manual_equivalent) | set(manual_not_equivalent)) - known_idents
    if unknown:
        raise MutationError(
            f"manual equivalence override names unknown mutant ident(s): "
            f"{', '.join(sorted(unknown))} (not in the survivor set)"
        )
    forced_equivalent = set(manual_equivalent)
    forced_not = set(manual_not_equivalent)

    #: ident -> its executed stand-in, for survivors the static pass
    #: grouped as redundant (classification propagated after the probe).
    propagated: Dict[str, str] = {}
    if triage is not None:
        for mutant in survivors:
            if triage.is_equivalent(mutant.ident):
                # Proven equivalent: no probe could ever kill it.
                forced_equivalent.add(mutant.ident)
            elif (triage.status_of(mutant.ident) is TriageStatus.REDUNDANT
                  and triage.representative_of(mutant.ident) in known_idents):
                propagated[mutant.ident] = triage.representative_of(
                    mutant.ident
                )
        # A manual not-equivalent override still wins (it mirrors the
        # paper's hand analysis), exactly as it does over the probe.
        forced_equivalent -= forced_not

    still_alive: Dict[str, CompiledMutant] = {
        mutant.ident: mutant for mutant in survivors
    }
    kill_reasons: Dict[str, KillReason] = {}
    suite_sizes = []

    for seed in seeds:
        if not still_alive:
            break
        pending = [
            mutant for ident, mutant in still_alive.items()
            if ident not in forced_equivalent and ident not in propagated
        ]
        if not pending:
            break
        probe_suite = DriverGenerator(
            spec,
            seed=seed,
            bindings=bindings,
            edge_bound=edge_bound,
            boundary_probability=boundary_probability,
            extra_variants=extra_variants,
            max_transactions=max_transactions,
        ).generate()
        suite_sizes.append(len(probe_suite))
        analysis = MutationAnalysis(
            original_class,
            probe_suite,
            class_builder=class_builder,
            step_budget=step_budget,
            setup=setup,
        )
        run = analysis.analyze(pending)
        for outcome in run.outcomes:
            if outcome.killed:
                kill_reasons[outcome.mutant.ident] = outcome.reason
                still_alive.pop(outcome.mutant.ident, None)

    # Redundant survivors inherit their representative's classification:
    # identical normalized bytecode means identical behaviour under every
    # probe suite, so running them would only reproduce the result.
    for ident, representative in propagated.items():
        if representative in kill_reasons:
            kill_reasons[ident] = kill_reasons[representative]
            still_alive.pop(ident, None)

    likely_equivalent = sorted(
        (set(still_alive) | forced_equivalent) - forced_not
    )
    escaped = sorted(
        (set(kill_reasons) | forced_not) - forced_equivalent
    )
    return EquivalenceReport(
        likely_equivalent=tuple(likely_equivalent),
        escaped=tuple(escaped),
        probe_kill_reasons=kill_reasons,
        probe_suite_sizes=tuple(suite_sizes),
    )
