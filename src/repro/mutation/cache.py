"""Incremental mutation analysis: a content-addressed outcome cache.

The paper's evaluation (Tables 1-3) re-executes every mutant's full test
sequence on every run, even though most (mutant, suite) pairs are unchanged
between invocations.  This module eliminates that redundancy the same way
Harrold-style incremental reuse (:mod:`repro.history`) does at the
test-case level: a verdict already computed for *identical inputs* is
replayed instead of re-derived.

**Key anatomy.**  A cache entry is addressed by the SHA-256 fingerprint of
every input that can change a mutant's outcome:

* the **mutant** — its full record (operator, location, replacement, and
  crucially the mutated source) plus the owner class's identity and source
  hash;
* the **suite** — :meth:`~repro.generator.suite.TestSuite.fingerprint`,
  a content hash over every case's steps, argument values and seed;
* the **oracle configuration** — the composite's detector chain and each
  detector's parameters (e.g. the observed-method set);
* the **sandbox step budget** and the analysis flags
  (``stop_on_first_kill``, ``check_invariants``) — both change
  ``cases_run`` or verdicts;
* the **pruning configuration** — the coverage-guided pruning flag plus
  the content hash of the recorded coverage matrix
  (:meth:`~repro.mutation.coverage.CoverageMatrix.fingerprint`), so
  outcomes computed under pruning are only replayed under the exact
  matrix that justified their skips and pruned/unpruned entries never
  cross-contaminate;
* the **class-builder identity** and the original class (identity + source
  hash) — experiment 2 re-derives the subclass over the mutated base, so a
  different builder means different behaviour;
* the **setup hook** and the cache format version.

Change any component — one mutant's source, one test-case value, one
oracle flag, the budget — and only the affected entries miss; everything
untouched still hits.

**Cached ≡ fresh.**  Because the stored value is the exact
:class:`~repro.mutation.analysis.MutantOutcome` (plus the mutant's
sandbox-timeout count) and the key covers every input the verdict depends
on, a warm run assembles a :class:`~repro.mutation.analysis.MutationRun`
that passes ``same_results`` against a cold run — the differential suite
in ``tests/mutation/test_cache.py`` enforces this for serial and parallel
engines alike.  Worker-boundary kills (``WORKER_CRASH``/``WALL_TIMEOUT``)
are never cached: they depend on wall-clock and process scheduling, not on
the fingerprinted inputs.

**Robustness.**  Writes are atomic (temp file + ``os.replace``), so a
concurrent parallel run can share a cache directory; a truncated,
unpicklable, or version-skewed entry is treated as a miss (and counted as
``corrupt``), never a crash.  A sidecar slot index — one small file per
(owner, mutant ident) — records the latest entry fingerprint so that a
miss caused by a *changed* experiment is observable as an ``invalidation``
rather than a plain cold miss.  Superseded entries are left in place:
reverting a change hits the old entries again.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Tuple

from ..core.fingerprint import canonical, sha256_hex
from ..obs import Telemetry, coalesce

if TYPE_CHECKING:  # imported lazily to keep cache <- analysis acyclic
    from ..generator.suite import TestSuite
    from ..harness.oracles import CompositeOracle
    from .analysis import MutantOutcome
    from .mutant import CompiledMutant

#: Bumped whenever the entry layout or fingerprint recipe changes; part of
#: every fingerprint, so a format change reads as a clean cold cache.
#: v2: ``MutantOutcome`` grew ``cases_skipped`` and the experiment
#: fingerprint grew the pruning flag + coverage-matrix hash.
#: v3: ``MutantOutcome`` grew ``static_status`` and the store gained the
#: content-addressed static-triage verdicts (``triage/``).  Note the
#: experiment fingerprint does NOT include the triage flag: an *executed*
#: mutant's outcome is bit-identical with triage on or off (synthesized
#: triage outcomes are never cached), so entries are deliberately shared
#: across ``--no-static-triage`` boundaries.
CACHE_FORMAT_VERSION = 3


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def experiment_fingerprint(original_class: type,
                           suite: "TestSuite",
                           oracle: Optional["CompositeOracle"],
                           class_builder: Optional[Callable],
                           step_budget: int,
                           stop_on_first_kill: bool,
                           check_invariants: bool,
                           setup: Optional[Callable] = None,
                           prune: bool = False,
                           coverage_fingerprint: str = "") -> str:
    """Hash of everything mutants of one analysis configuration share.

    Computed once per ``analyze`` call and combined with each mutant's own
    fingerprint to address entries.  ``oracle=None`` and an explicitly
    passed default oracle hash identically only if they are *structurally*
    equal — callers pass the effective oracle, not the constructor arg.
    ``prune``/``coverage_fingerprint`` bind pruned outcomes to the exact
    coverage matrix that licensed their skipped cases (unpruned runs pass
    ``False``/``""``), keeping pruned and unpruned entries disjoint.
    """
    return sha256_hex(
        "experiment",
        f"v{CACHE_FORMAT_VERSION}",
        canonical(original_class),
        suite.fingerprint(),
        canonical(oracle),
        canonical(class_builder),
        canonical(step_budget),
        canonical(stop_on_first_kill),
        canonical(check_invariants),
        canonical(setup),
        canonical(prune),
        coverage_fingerprint,
    )


def mutant_fingerprint(mutant: "CompiledMutant") -> str:
    """Hash of one mutant: full record (incl. mutated source) + owner."""
    return sha256_hex(
        "mutant", canonical(mutant.owner), canonical(mutant.record)
    )


@dataclass(frozen=True)
class CacheKey:
    """Where one (experiment, mutant) pair lives in the store."""

    entry: str  # content address: experiment fingerprint x mutant fingerprint
    slot: str   # logical slot: (owner, mutant ident) — for invalidation counting


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheStats:
    """Lookup counters, surfaced on ``MutationRun.cache_stats``.

    ``invalidations`` counts misses whose slot previously held an entry
    under a different fingerprint (the experiment changed); ``corrupt``
    counts entries that existed but could not be loaded (truncated file,
    unpicklable payload, version skew) — those are also misses.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The delta between two snapshots of one cache's counters."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            invalidations=self.invalidations - earlier.invalidations,
            corrupt=self.corrupt - earlier.corrupt,
        )

    def merged(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            invalidations=self.invalidations + other.invalidations,
            corrupt=self.corrupt + other.corrupt,
        )

    def format(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses "
            f"({self.invalidations} invalidated, {self.corrupt} corrupt) — "
            f"hit rate {self.hit_rate:.1%}"
        )


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheEntry:
    """One stored verdict: the outcome plus its sandbox-timeout count."""

    version: int
    fingerprint: str           # the entry address this payload was stored under
    outcome: "MutantOutcome"
    step_timeouts: int


@dataclass(frozen=True)
class TriageEntry:
    """One stored static-triage verdict (per-mutant checks only).

    Only the content-addressed per-mutant result is stored — the status of
    the AST/bytecode identity checks plus the normalized-bytecode digest.
    The cross-mutant redundancy grouping is *derived* from the digests on
    every run because it depends on which other mutants are in the battery,
    so a ``redundant`` status never appears here.
    """

    version: int
    fingerprint: str
    status: str                # TriageStatus value (never "redundant")
    digest: str                # normalized-bytecode digest


class MutationOutcomeCache:
    """Content-addressed, on-disk store of :class:`MutantOutcome`\\ s.

    Layout under ``directory``::

        objects/<aa>/<fingerprint>.pkl   # pickled CacheEntry
        index/<aa>/<slot>.fp             # latest entry fingerprint per slot

    The same directory may be shared by serial and parallel runs, and by
    different experiments (tables 1-3): entries are pure content addresses
    and never collide across configurations.
    """

    def __init__(self, directory,
                 telemetry: Optional[Telemetry] = None) -> None:
        self._directory = Path(directory)
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._corrupt = 0
        # Mirrors the lifetime counters into a run-telemetry session
        # (``cache.hits`` …); observation only, the default records nothing.
        self._obs = coalesce(telemetry)

    @property
    def directory(self) -> Path:
        return self._directory

    # -- statistics -----------------------------------------------------

    def snapshot(self) -> CacheStats:
        """Immutable view of the lifetime counters (diff with ``since``)."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            invalidations=self._invalidations,
            corrupt=self._corrupt,
        )

    # -- addressing -----------------------------------------------------

    def key_for(self, experiment: str, mutant: "CompiledMutant") -> CacheKey:
        """The (content, slot) address of one mutant under one experiment."""
        owner = f"{mutant.owner.__module__}.{mutant.owner.__qualname__}"
        return CacheKey(
            entry=sha256_hex("entry", experiment, mutant_fingerprint(mutant)),
            slot=sha256_hex("slot", owner, mutant.record.ident),
        )

    def _entry_path(self, key: CacheKey) -> Path:
        return self._directory / "objects" / key.entry[:2] / f"{key.entry}.pkl"

    def _slot_path(self, key: CacheKey) -> Path:
        return self._directory / "index" / key.slot[:2] / f"{key.slot}.fp"

    # -- lookup / store -------------------------------------------------

    def lookup(self, key: CacheKey) -> Optional[CacheEntry]:
        """The stored entry, or ``None`` (miss).  Never raises.

        A present-but-unreadable entry (truncated pickle, garbage bytes,
        version skew, wrong payload) counts as ``corrupt`` and is removed
        so the rewritten entry starts clean.
        """
        path = self._entry_path(key)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
            if (not isinstance(entry, CacheEntry)
                    or entry.version != CACHE_FORMAT_VERSION
                    or entry.fingerprint != key.entry):
                raise ValueError("cache entry does not match its address")
        except FileNotFoundError:
            self._misses += 1
            self._obs.count("cache.misses")
            if self._slot_points_elsewhere(key):
                self._invalidations += 1
                self._obs.count("cache.invalidations")
            return None
        except Exception:  # noqa: BLE001 — any corruption is a miss, never a crash
            self._misses += 1
            self._corrupt += 1
            self._obs.count("cache.misses")
            self._obs.count("cache.corrupt")
            self._remove_quietly(path)
            return None
        self._hits += 1
        self._obs.count("cache.hits")
        return entry

    def store(self, key: CacheKey, outcome: "MutantOutcome",
              step_timeouts: int) -> None:
        """Persist one verdict atomically; best-effort, never raises.

        Identical keys always carry identical payloads (determinism of the
        analysis), so concurrent writers replacing the same entry are safe.
        """
        entry = CacheEntry(
            version=CACHE_FORMAT_VERSION,
            fingerprint=key.entry,
            outcome=outcome,
            step_timeouts=step_timeouts,
        )
        try:
            self._atomic_write(self._entry_path(key), pickle.dumps(entry))
            self._atomic_write(self._slot_path(key),
                               key.entry.encode("ascii"))
            self._obs.count("cache.stores")
        except OSError:
            pass  # a full/read-only disk degrades to no caching

    # -- static-triage verdicts -----------------------------------------

    def _triage_path(self, fingerprint: str) -> Path:
        return (self._directory / "triage" / fingerprint[:2]
                / f"{fingerprint}.pkl")

    def lookup_triage(self, fingerprint: str) -> Optional[Tuple[str, str]]:
        """The stored ``(status, digest)`` triage verdict, or ``None``.

        Same robustness contract as :meth:`lookup` — a corrupt or
        version-skewed entry is a miss, never a crash.  Counters are
        telemetry-only (``cache.triage_*``): triage verdicts are a cheap
        side store and do not participate in :class:`CacheStats`, whose
        hit-rate gates CI on the expensive *outcome* entries.
        """
        path = self._triage_path(fingerprint)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
            if (not isinstance(entry, TriageEntry)
                    or entry.version != CACHE_FORMAT_VERSION
                    or entry.fingerprint != fingerprint):
                raise ValueError("triage entry does not match its address")
        except FileNotFoundError:
            self._obs.count("cache.triage_misses")
            return None
        except Exception:  # noqa: BLE001 — corruption is a miss, never a crash
            self._obs.count("cache.triage_misses")
            self._obs.count("cache.triage_corrupt")
            self._remove_quietly(path)
            return None
        self._obs.count("cache.triage_hits")
        return (entry.status, entry.digest)

    def store_triage(self, fingerprint: str, status: str,
                     digest: str) -> None:
        """Persist one static-triage verdict atomically; never raises."""
        entry = TriageEntry(
            version=CACHE_FORMAT_VERSION,
            fingerprint=fingerprint,
            status=status,
            digest=digest,
        )
        try:
            self._atomic_write(self._triage_path(fingerprint),
                               pickle.dumps(entry))
            self._obs.count("cache.triage_stores")
        except OSError:
            pass  # a full/read-only disk degrades to no caching

    # -- internals ------------------------------------------------------

    def _slot_points_elsewhere(self, key: CacheKey) -> bool:
        """True when this slot was last stored under a *different* entry."""
        try:
            recorded = self._slot_path(key).read_text(encoding="ascii").strip()
        except OSError:
            return False
        return bool(recorded) and recorded != key.entry

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(payload)
            os.replace(temp_name, path)
        except OSError:
            MutationOutcomeCache._remove_quietly(Path(temp_name))
            raise

    @staticmethod
    def _remove_quietly(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
