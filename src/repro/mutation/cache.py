"""Incremental mutation analysis: a content-addressed outcome cache.

The paper's evaluation (Tables 1-3) re-executes every mutant's full test
sequence on every run, even though most (mutant, suite) pairs are unchanged
between invocations.  This module eliminates that redundancy the same way
Harrold-style incremental reuse (:mod:`repro.history`) does at the
test-case level: a verdict already computed for *identical inputs* is
replayed instead of re-derived.

**Key anatomy.**  A cache entry is addressed by the SHA-256 fingerprint of
every input that can change a mutant's outcome:

* the **mutant** — its full record (operator, location, replacement, and
  crucially the mutated source) plus the owner class's identity and source
  hash;
* the **suite** — :meth:`~repro.generator.suite.TestSuite.fingerprint`,
  a content hash over every case's steps, argument values and seed;
* the **oracle configuration** — the composite's detector chain and each
  detector's parameters (e.g. the observed-method set);
* the **sandbox step budget** and the analysis flags
  (``stop_on_first_kill``, ``check_invariants``) — both change
  ``cases_run`` or verdicts;
* the **pruning configuration** — the coverage-guided pruning flag plus
  the content hash of the recorded coverage matrix
  (:meth:`~repro.mutation.coverage.CoverageMatrix.fingerprint`), so
  outcomes computed under pruning are only replayed under the exact
  matrix that justified their skips and pruned/unpruned entries never
  cross-contaminate;
* the **class-builder identity** and the original class (identity + source
  hash) — experiment 2 re-derives the subclass over the mutated base, so a
  different builder means different behaviour;
* the **setup hook** and the cache *key* version.

Change any component — one mutant's source, one test-case value, one
oracle flag, the budget — and only the affected entries miss; everything
untouched still hits.

**Cached ≡ fresh.**  Because the stored value is the exact
:class:`~repro.mutation.analysis.MutantOutcome` (plus the mutant's
sandbox-timeout count) and the key covers every input the verdict depends
on, a warm run assembles a :class:`~repro.mutation.analysis.MutationRun`
that passes ``same_results`` against a cold run — the differential suite
in ``tests/mutation/test_cache.py`` enforces this for serial and parallel
engines alike.  Worker-boundary kills (``WORKER_CRASH``/``WALL_TIMEOUT``)
are never cached: they depend on wall-clock and process scheduling, not on
the fingerprinted inputs.

**The segment store (format v4).**  Entries live in ONE append-only file,
``store.seg``, instead of the v3 file-per-entry tree (707 entries cost 707
``open``+``write``+``rename`` round-trips — the cold-cache overhead
``BENCH_mutation_cache.json`` measured at 74%).  Layout::

    store.seg := MAGIC(8) record*
    record    := header(12) key payload
    header    := kind:u8 flags:u8 key_len:u16 payload_len:u32 crc32:u32
    kind 1    := outcome  — key = entry_fp(64) + slot_fp(64),
                            payload = pickled CacheEntry
    kind 2    := triage   — key = triage_fp(64), payload = pickled TriageEntry
    kind 3    := slot     — key = slot_fp(64) + entry_fp(64), no payload
                            (written by compact() to pin the final slot map)
    kind 4    := scenario — key = scenario_fp(64),
                            payload = pickled ScenarioEntry (a whole
                            sweep ScenarioResult projection; see
                            repro.scenarios.sweep)

``crc32`` covers ``key + payload``.  An in-memory offset index is rebuilt
by a single sequential scan on open; the scan checks *structure* only
(kind, key length, payload bounds) so a damaged payload stays isolated —
it is caught by the CRC at lookup time and counted as a ``corrupt`` miss,
exactly like a damaged v3 entry file.  A torn or garbage tail (structural
damage) ends the scan: records before it stay live, records after it are
counted misses, and the next append truncates the dead tail.  Appends are
flushed per store so sequential sharers (a second engine, a later process)
see every record; concurrent *writers* need one process to go last —
within a run only the parent ever writes.

``compact()`` rewrites the segment keeping exactly the live records (the
latest record per content address), dropping superseded duplicates and
unreadable records.  Entries of *different* experiment configurations are
all live — reverting a configuration change must keep hitting its old
entries — so compaction never loses a verdict.

**v3 migration.**  Fingerprint recipes hash :data:`CACHE_KEY_VERSION`
(still 3), so v3 content addresses remain valid under the v4 store.  A
lookup that misses the segment consults the legacy ``objects/``/
``index/``/``triage/`` tree; a valid legacy entry counts as a hit and is
transparently appended to the segment (read-side migration), a corrupt
one as a ``corrupt`` miss.  Legacy files are never deleted or rewritten.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import threading
import zlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from ..core.fingerprint import canonical, sha256_hex
from ..obs import Telemetry, coalesce

if TYPE_CHECKING:  # imported lazily to keep cache <- analysis acyclic
    from ..generator.suite import TestSuite
    from ..harness.oracles import CompositeOracle
    from .analysis import MutantOutcome
    from .mutant import CompiledMutant

#: Version of the *fingerprint recipe* — part of every content address.
#: Deliberately NOT bumped for the v3→v4 store rewrite: the addressing
#: inputs are unchanged, so v3 entries stay addressable and the read-side
#: migration is meaningful rather than vacuous.
CACHE_KEY_VERSION = 3

#: Version of the *store layout* (record framing, entry payloads).
#: v2: ``MutantOutcome`` grew ``cases_skipped`` and the experiment
#: fingerprint grew the pruning flag + coverage-matrix hash.
#: v3: ``MutantOutcome`` grew ``static_status`` and the store gained the
#: content-addressed static-triage verdicts.
#: v4: the file-per-entry tree became the append-only segment file; v3
#: directories are migrated transparently on the read side.
CACHE_FORMAT_VERSION = 4

#: The last file-per-entry layout version, accepted on the legacy read path.
LEGACY_FORMAT_VERSION = 3

#: The segment file's name under the cache directory.
SEGMENT_FILE = "store.seg"

_MAGIC = b"RMOC0004"
_HEADER = struct.Struct("<BBHII")  # kind, flags, key_len, payload_len, crc32
_KIND_OUTCOME = 1
_KIND_TRIAGE = 2
_KIND_SLOT = 3
#: Scenario-level results (kind 4) are an *additive* extension of the v4
#: layout: the record framing, addressing recipe and every existing
#: record kind are untouched, so CACHE_FORMAT_VERSION stays 4 and
#: existing stores keep hitting.  (An older reader treats the first
#: kind-4 record as a torn tail — the damage mode the format already
#: tolerates.)
_KIND_SCENARIO = 4
_FINGERPRINT_LENGTH = 64
_KEY_LENGTHS = {
    _KIND_OUTCOME: 2 * _FINGERPRINT_LENGTH,
    _KIND_TRIAGE: _FINGERPRINT_LENGTH,
    _KIND_SLOT: 2 * _FINGERPRINT_LENGTH,
    _KIND_SCENARIO: _FINGERPRINT_LENGTH,
}


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def experiment_fingerprint(original_class: type,
                           suite: "TestSuite",
                           oracle: Optional["CompositeOracle"],
                           class_builder: Optional[Callable],
                           step_budget: int,
                           stop_on_first_kill: bool,
                           check_invariants: bool,
                           setup: Optional[Callable] = None,
                           prune: bool = False,
                           coverage_fingerprint: str = "") -> str:
    """Hash of everything mutants of one analysis configuration share.

    Computed once per ``analyze`` call and combined with each mutant's own
    fingerprint to address entries.  ``oracle=None`` and an explicitly
    passed default oracle hash identically only if they are *structurally*
    equal — callers pass the effective oracle, not the constructor arg.
    ``prune``/``coverage_fingerprint`` bind pruned outcomes to the exact
    coverage matrix that licensed their skipped cases (unpruned runs pass
    ``False``/``""``), keeping pruned and unpruned entries disjoint.
    """
    return sha256_hex(
        "experiment",
        f"v{CACHE_KEY_VERSION}",
        canonical(original_class),
        suite.fingerprint(),
        canonical(oracle),
        canonical(class_builder),
        canonical(step_budget),
        canonical(stop_on_first_kill),
        canonical(check_invariants),
        canonical(setup),
        canonical(prune),
        coverage_fingerprint,
    )


def mutant_fingerprint(mutant: "CompiledMutant") -> str:
    """Hash of one mutant: full record (incl. mutated source) + owner."""
    return sha256_hex(
        "mutant", canonical(mutant.owner), canonical(mutant.record)
    )


@dataclass(frozen=True)
class CacheKey:
    """Where one (experiment, mutant) pair lives in the store."""

    entry: str  # content address: experiment fingerprint x mutant fingerprint
    slot: str   # logical slot: (owner, mutant ident) — for invalidation counting


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheStats:
    """Lookup counters, surfaced on ``MutationRun.cache_stats``.

    ``invalidations`` counts misses whose slot previously held an entry
    under a different fingerprint (the experiment changed); ``corrupt``
    counts entries that existed but could not be loaded (damaged record,
    unpicklable payload, version skew) — those are also misses.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The delta between two snapshots of one cache's counters."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            invalidations=self.invalidations - earlier.invalidations,
            corrupt=self.corrupt - earlier.corrupt,
        )

    def merged(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            invalidations=self.invalidations + other.invalidations,
            corrupt=self.corrupt + other.corrupt,
        )

    def format(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses "
            f"({self.invalidations} invalidated, {self.corrupt} corrupt) — "
            f"hit rate {self.hit_rate:.1%}"
        )


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheEntry:
    """One stored verdict: the outcome plus its sandbox-timeout count."""

    version: int
    fingerprint: str           # the entry address this payload was stored under
    outcome: "MutantOutcome"
    step_timeouts: int


@dataclass(frozen=True)
class TriageEntry:
    """One stored static-triage verdict (per-mutant checks only).

    Only the content-addressed per-mutant result is stored — the status of
    the AST/bytecode identity checks plus the normalized-bytecode digest.
    The cross-mutant redundancy grouping is *derived* from the digests on
    every run because it depends on which other mutants are in the battery,
    so a ``redundant`` status never appears here.
    """

    version: int
    fingerprint: str
    status: str                # TriageStatus value (never "redundant")
    digest: str                # normalized-bytecode digest


@dataclass(frozen=True)
class ScenarioEntry:
    """One stored sweep scenario result.

    The payload is the scenario's *full* deterministic projection
    (``ScenarioResult.to_dict(timings=True)``) as plain JSON-compatible
    data — storing the projection rather than live objects keeps the
    record format independent of analysis-object pickling details, and
    the sweep runner already knows how to rebuild a ``ScenarioResult``
    from it (the same round-trip the report reader uses).
    """

    version: int
    fingerprint: str
    payload: Dict[str, Any]


@dataclass(frozen=True)
class CompactionReport:
    """What one :meth:`MutationOutcomeCache.compact` pass did."""

    records_before: int
    records_kept: int
    records_dropped: int
    bytes_before: int
    bytes_after: int

    def format(self) -> str:
        return (
            f"{self.records_kept} live records kept, "
            f"{self.records_dropped} dropped — "
            f"{self.bytes_before} → {self.bytes_after} bytes"
        )


class _Location:
    """Offset/length of one record in the segment (a compact value)."""

    __slots__ = ("offset", "length")

    def __init__(self, offset: int, length: int):
        self.offset = offset
        self.length = length


class MutationOutcomeCache:
    """Content-addressed, on-disk store of :class:`MutantOutcome`\\ s.

    Format v4: one append-only segment file (``store.seg``) plus an
    in-memory offset index rebuilt by scan on open — see the module
    docstring for the record format and robustness rules.  The same
    directory may be shared by serial and parallel runs, by different
    experiments (tables 1-3) and by sequential engines in one process:
    entries are pure content addresses and never collide across
    configurations.  Legacy v3 directories (``objects/``/``index/``/
    ``triage/``) are consulted on a segment miss and migrated in place.
    """

    def __init__(self, directory,
                 telemetry: Optional[Telemetry] = None) -> None:
        self._directory = Path(directory)
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._corrupt = 0
        # Scenario-record lifetime counters, kept beside (not inside)
        # CacheStats — its hit rate gates CI on per-mutant entries.
        self._scenario_stats = {"hits": 0, "misses": 0,
                                "stores": 0, "corrupt": 0}
        # Mirrors the lifetime counters into a run-telemetry session
        # (``cache.hits`` …); observation only, the default records nothing.
        self._obs = coalesce(telemetry)
        self._entries: Dict[str, _Location] = {}
        self._triage_index: Dict[str, _Location] = {}
        self._scenario_index: Dict[str, _Location] = {}
        self._slots: Dict[str, str] = {}
        # One store may be driven from several threads at once (pipelined
        # sweep scenarios, plus the pool's dispatcher thread writing
        # verdicts back); every public operation holds this lock.  RLock
        # because lookups nest into appends on the legacy-migration path.
        self._lock = threading.RLock()
        self._handle = None          # lazily opened segment file object
        self._writable = False       # whether _handle was opened read-write
        self._loaded = False         # whether the open-time scan has run
        self._end = 0                # offset just past the last valid record
        self._records_seen = 0       # data records (outcome/triage/scenario)
        self._torn = False           # file extends past _end with a dead tail
        # Write-failure degradation (ENOSPC, EROFS, quota …): after the
        # first failed append the store turns its write side off for the
        # rest of its lifetime — every subsequent store attempt is counted
        # and dropped without touching the file, while lookups keep
        # serving everything indexed before the failure.
        self._write_errors = 0
        self._writes_disabled = False

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def segment_path(self) -> Path:
        return self._directory / SEGMENT_FILE

    # -- statistics -----------------------------------------------------

    def snapshot(self) -> CacheStats:
        """Immutable view of the lifetime counters (diff with ``since``)."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                invalidations=self._invalidations,
                corrupt=self._corrupt,
            )

    def scenario_stats(self) -> Dict[str, int]:
        """Lifetime scenario-record counters (hits/misses/stores/corrupt)."""
        with self._lock:
            return dict(self._scenario_stats)

    @property
    def write_errors(self) -> int:
        """Store attempts lost to a failing disk (``cache.write_error``)."""
        with self._lock:
            return self._write_errors

    @property
    def writes_disabled(self) -> bool:
        """Whether a write failure has degraded this store to read-only."""
        with self._lock:
            return self._writes_disabled

    def live_records(self) -> int:
        """Reachable records (outcome/triage/scenario) in the segment index."""
        with self._lock:
            self._ensure_loaded()
            return (len(self._entries) + len(self._triage_index)
                    + len(self._scenario_index))

    def segment_bytes(self) -> int:
        """Bytes of segment the index covers (dead tail excluded)."""
        with self._lock:
            self._ensure_loaded()
            return self._end

    # -- addressing -----------------------------------------------------

    def key_for(self, experiment: str, mutant: "CompiledMutant") -> CacheKey:
        """The (content, slot) address of one mutant under one experiment."""
        owner = f"{mutant.owner.__module__}.{mutant.owner.__qualname__}"
        return CacheKey(
            entry=sha256_hex("entry", experiment, mutant_fingerprint(mutant)),
            slot=sha256_hex("slot", owner, mutant.record.ident),
        )

    # Legacy (v3 file-per-entry) paths — the read-side migration source.

    def _entry_path(self, key: CacheKey) -> Path:
        return self._directory / "objects" / key.entry[:2] / f"{key.entry}.pkl"

    def _slot_path(self, key: CacheKey) -> Path:
        return self._directory / "index" / key.slot[:2] / f"{key.slot}.fp"

    def _triage_path(self, fingerprint: str) -> Path:
        return (self._directory / "triage" / fingerprint[:2]
                / f"{fingerprint}.pkl")

    # -- lookup / store -------------------------------------------------

    def lookup(self, key: CacheKey) -> Optional[CacheEntry]:
        """The stored entry, or ``None`` (miss).  Never raises.

        An indexed-but-unreadable record (CRC mismatch, unpicklable
        payload, version skew, wrong payload) counts as ``corrupt`` and is
        dropped from the index so the rewritten entry starts clean.  A
        segment miss falls back to the legacy v3 file, migrating a valid
        one into the segment.
        """
        with self._lock:
            self._ensure_loaded()
            location = self._entries.get(key.entry)
            if location is not None:
                entry = self._read_outcome(location, key.entry)
                if entry is not None:
                    self._hits += 1
                    self._obs.count("cache.hits")
                    return entry
                # The record existed but would not load: a corrupt miss,
                # and the index slot is dropped so a re-store starts clean.
                del self._entries[key.entry]
                self._misses += 1
                self._corrupt += 1
                self._obs.count("cache.misses")
                self._obs.count("cache.corrupt")
                return None
            status, migrated = self._legacy_outcome(key)
            if status == "hit":
                self._hits += 1
                self._obs.count("cache.hits")
                return migrated
            self._misses += 1
            self._obs.count("cache.misses")
            if status == "corrupt":
                self._corrupt += 1
                self._obs.count("cache.corrupt")
                return None
            if self._slot_points_elsewhere(key):
                self._invalidations += 1
                self._obs.count("cache.invalidations")
            return None

    def store(self, key: CacheKey, outcome: "MutantOutcome",
              step_timeouts: int) -> None:
        """Append one verdict to the segment; best-effort, never raises.

        Identical keys always carry identical payloads (determinism of the
        analysis), so a duplicate append (e.g. during salvage) is harmless:
        the index keeps the latest record and ``compact()`` drops the rest.
        """
        entry = CacheEntry(
            version=CACHE_FORMAT_VERSION,
            fingerprint=key.entry,
            outcome=outcome,
            step_timeouts=step_timeouts,
        )
        with self._lock:
            if self._writes_disabled:
                self._note_write_error()
                return
            try:
                location = self._append(
                    _KIND_OUTCOME,
                    (key.entry + key.slot).encode("ascii"),
                    pickle.dumps(entry),
                )
            except OSError:
                # A full/read-only disk degrades to no caching: the write
                # side turns off, lookups keep serving, the engine never
                # sees the failure.
                self._note_write_error()
                return
            self._entries[key.entry] = location
            self._slots[key.slot] = key.entry
            self._obs.count("cache.stores")

    # -- static-triage verdicts -----------------------------------------

    def lookup_triage(self, fingerprint: str) -> Optional[Tuple[str, str]]:
        """The stored ``(status, digest)`` triage verdict, or ``None``.

        Same robustness contract as :meth:`lookup` — a corrupt or
        version-skewed record is a miss, never a crash, and legacy v3
        triage files are migrated on hit.  Counters are telemetry-only
        (``cache.triage_*``): triage verdicts are a cheap side store and
        do not participate in :class:`CacheStats`, whose hit-rate gates CI
        on the expensive *outcome* entries.
        """
        with self._lock:
            self._ensure_loaded()
            location = self._triage_index.get(fingerprint)
            if location is not None:
                entry = self._read_triage(location, fingerprint)
                if entry is not None:
                    self._obs.count("cache.triage_hits")
                    return (entry.status, entry.digest)
                del self._triage_index[fingerprint]
                self._obs.count("cache.triage_misses")
                self._obs.count("cache.triage_corrupt")
                return None
            migrated = self._legacy_triage(fingerprint)
            if migrated is not None:
                self._obs.count("cache.triage_hits")
                return (migrated.status, migrated.digest)
            self._obs.count("cache.triage_misses")
            return None

    def store_triage(self, fingerprint: str, status: str,
                     digest: str) -> None:
        """Append one static-triage verdict; best-effort, never raises."""
        entry = TriageEntry(
            version=CACHE_FORMAT_VERSION,
            fingerprint=fingerprint,
            status=status,
            digest=digest,
        )
        with self._lock:
            if self._writes_disabled:
                self._note_write_error()
                return
            try:
                location = self._append(
                    _KIND_TRIAGE, fingerprint.encode("ascii"),
                    pickle.dumps(entry)
                )
            except OSError:
                self._note_write_error()
                return
            self._triage_index[fingerprint] = location
            self._obs.count("cache.triage_stores")

    # -- scenario-level results -----------------------------------------

    def lookup_scenario(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The stored scenario-result projection, or ``None``.

        Same robustness contract as :meth:`lookup`: a corrupt or
        version-skewed record is a miss, never a crash.  Counters are
        telemetry-only (``cache.scenario_*``) — scenario records replay
        *whole sweep scenarios* and stay out of :class:`CacheStats`,
        whose hit-rate gates CI on per-mutant outcome entries.
        """
        with self._lock:
            self._ensure_loaded()
            location = self._scenario_index.get(fingerprint)
            if location is None:
                self._scenario_stats["misses"] += 1
                self._obs.count("cache.scenario_misses")
                return None
            entry = self._load_record(location, _KIND_SCENARIO, fingerprint)
            if (not isinstance(entry, ScenarioEntry)
                    or entry.version != CACHE_FORMAT_VERSION
                    or entry.fingerprint != fingerprint):
                del self._scenario_index[fingerprint]
                self._scenario_stats["misses"] += 1
                self._scenario_stats["corrupt"] += 1
                self._obs.count("cache.scenario_misses")
                self._obs.count("cache.scenario_corrupt")
                return None
            self._scenario_stats["hits"] += 1
            self._obs.count("cache.scenario_hits")
            return entry.payload

    def store_scenario(self, fingerprint: str,
                       payload: Dict[str, Any]) -> None:
        """Append one scenario-result projection; best-effort, never raises."""
        entry = ScenarioEntry(
            version=CACHE_FORMAT_VERSION,
            fingerprint=fingerprint,
            payload=payload,
        )
        with self._lock:
            if self._writes_disabled:
                self._note_write_error()
                return
            try:
                location = self._append(
                    _KIND_SCENARIO, fingerprint.encode("ascii"),
                    pickle.dumps(entry)
                )
            except OSError:
                self._note_write_error()
                return
            self._scenario_index[fingerprint] = location
            self._scenario_stats["stores"] += 1
            self._obs.count("cache.scenario_stores")

    # -- maintenance ----------------------------------------------------

    def compact(self) -> CompactionReport:
        """Rewrite the segment keeping exactly the live records.

        Drops superseded duplicates (an address stored more than once),
        records invalidated by damage (unreadable at compaction time) and
        any dead tail; preserves every reachable verdict — including
        entries of *other* experiment configurations sharing the store,
        so reverting a configuration change still hits.  The final slot
        map is pinned with explicit slot records (kind 3), because replay
        order of the surviving entries no longer encodes it.

        Atomic: the new segment is built alongside and swapped in with
        ``os.replace``.  ``OSError`` propagates — compaction is an
        explicit maintenance call, not a hot-path write.
        """
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> CompactionReport:
        self._ensure_loaded()
        self._catch_up()
        report_before_records = self._records_seen
        report_before_bytes = self._end
        self._directory.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(self._directory), prefix=SEGMENT_FILE, suffix=".tmp"
        )
        kept = 0
        new_entries: Dict[str, _Location] = {}
        new_triage: Dict[str, _Location] = {}
        new_scenarios: Dict[str, _Location] = {}
        replayed_slots: Dict[str, str] = {}
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(_MAGIC)
                offset = len(_MAGIC)
                for fingerprint, location in self._entries.items():
                    if self._read_outcome(location, fingerprint) is None:
                        continue
                    blob = self._record_bytes(location)
                    handle.write(blob)
                    new_entries[fingerprint] = _Location(offset, len(blob))
                    key = blob[_HEADER.size:
                               _HEADER.size + _KEY_LENGTHS[_KIND_OUTCOME]]
                    replayed_slots[
                        key[_FINGERPRINT_LENGTH:].decode("ascii")
                    ] = fingerprint
                    offset += len(blob)
                    kept += 1
                for fingerprint, location in self._triage_index.items():
                    if self._read_triage(location, fingerprint) is None:
                        continue
                    blob = self._record_bytes(location)
                    handle.write(blob)
                    new_triage[fingerprint] = _Location(offset, len(blob))
                    offset += len(blob)
                    kept += 1
                for fingerprint, location in self._scenario_index.items():
                    entry = self._load_record(location, _KIND_SCENARIO,
                                              fingerprint)
                    if not isinstance(entry, ScenarioEntry):
                        continue
                    blob = self._record_bytes(location)
                    handle.write(blob)
                    new_scenarios[fingerprint] = _Location(offset, len(blob))
                    offset += len(blob)
                    kept += 1
                # Pin only the slot mappings replaying the kept records
                # would get wrong (a slot superseded by another entry's
                # record); pins are bookkeeping, not live verdicts, and
                # stay out of the record counts.
                for slot, entry in self._slots.items():
                    if replayed_slots.get(slot) == entry:
                        continue
                    blob = self._encode_record(
                        _KIND_SLOT, (slot + entry).encode("ascii"), b""
                    )
                    handle.write(blob)
                    offset += len(blob)
                handle.flush()
            os.replace(temp_name, self.segment_path)
        except OSError:
            self._remove_quietly(Path(temp_name))
            raise
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None
            self._writable = False
        self._entries = new_entries
        self._triage_index = new_triage
        self._scenario_index = new_scenarios
        self._end = offset
        self._records_seen = kept
        self._torn = False
        self._obs.count("cache.compactions")
        return CompactionReport(
            records_before=report_before_records,
            records_kept=kept,
            records_dropped=report_before_records - kept,
            bytes_before=report_before_bytes,
            bytes_after=offset,
        )

    def close(self) -> None:
        """Flush and release the segment handle (idempotent)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None
                self._writable = False

    def __enter__(self) -> "MutationOutcomeCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- segment internals ----------------------------------------------

    def _ensure_loaded(self) -> None:
        """Scan the segment once, building the offset index.

        The scan validates structure only (magic, kind, key length,
        payload bounds): it stops at the first structurally broken record
        — a torn or garbage tail — leaving everything before it live.
        Payload damage inside a well-framed record is deliberately NOT
        detected here; the lookup-time CRC catches it and counts it as a
        ``corrupt`` miss, matching the v3 per-file semantics.
        """
        if self._loaded:
            return
        self._loaded = True
        try:
            data = self.segment_path.read_bytes()
        except OSError:
            return  # no segment yet (or unreadable): empty index
        if not data.startswith(_MAGIC):
            if data:
                # Not our file: leave it alone, never append into it.
                self._torn = True
                self._obs.count("cache.segment_torn")
            return
        offset = len(_MAGIC)
        while True:
            parsed = self._parse_header(data, offset)
            if parsed is None:
                break
            kind, key_length, payload_length, _ = parsed
            total = _HEADER.size + key_length + payload_length
            key = data[offset + _HEADER.size:
                       offset + _HEADER.size + key_length].decode("ascii")
            location = _Location(offset, total)
            if kind == _KIND_OUTCOME:
                self._entries[key[:_FINGERPRINT_LENGTH]] = location
                self._slots[key[_FINGERPRINT_LENGTH:]] = (
                    key[:_FINGERPRINT_LENGTH]
                )
                self._records_seen += 1
            elif kind == _KIND_TRIAGE:
                self._triage_index[key] = location
                self._records_seen += 1
            elif kind == _KIND_SCENARIO:
                self._scenario_index[key] = location
                self._records_seen += 1
            else:  # _KIND_SLOT — bookkeeping, not a data record
                self._slots[key[:_FINGERPRINT_LENGTH]] = (
                    key[_FINGERPRINT_LENGTH:]
                )
            offset += total
        self._end = offset
        if offset < len(data):
            self._torn = True
            self._obs.count("cache.segment_torn")

    @staticmethod
    def _parse_header(data: bytes, offset: int
                      ) -> Optional[Tuple[int, int, int, int]]:
        """Structural validation of one record header, or ``None``."""
        if offset + _HEADER.size > len(data):
            return None
        kind, _, key_length, payload_length, crc = _HEADER.unpack_from(
            data, offset
        )
        expected_key = _KEY_LENGTHS.get(kind)
        if expected_key is None or key_length != expected_key:
            return None
        if offset + _HEADER.size + key_length + payload_length > len(data):
            return None
        key = data[offset + _HEADER.size:offset + _HEADER.size + key_length]
        if not key.isascii():
            return None
        return (kind, key_length, payload_length, crc)

    @staticmethod
    def _encode_record(kind: int, key: bytes, payload: bytes) -> bytes:
        crc = zlib.crc32(key + payload) & 0xFFFFFFFF
        return _HEADER.pack(kind, 0, len(key), len(payload), crc) + key + payload

    def _append(self, kind: int, key: bytes, payload: bytes) -> _Location:
        """Write one record at the validated end of the segment."""
        self._ensure_loaded()
        if self._torn and self.segment_path.exists() \
                and not self._segment_is_ours():
            raise OSError("segment file is not a mutation-outcome store")
        self._catch_up()
        handle = self._open(writable=True)
        if self._end == 0:
            handle.seek(0)
            handle.truncate(0)
            handle.write(_MAGIC)
            self._end = len(_MAGIC)
            self._torn = False
        elif self._torn:
            handle.truncate(self._end)
            self._torn = False
        blob = self._encode_record(kind, key, payload)
        handle.seek(self._end)
        try:
            handle.write(blob)
            handle.flush()
        except OSError:
            # A failed or partially flushed write (ENOSPC mid-record) must
            # not poison the store: roll the file back to the last valid
            # end so the on-disk tail never carries a half-record, and
            # leave the index exactly as it was.  If even the rollback
            # fails, the torn-tail scan contract covers the partial
            # record — it is structurally invalid (or short) and every
            # record before ``_end`` stays live.
            self._rollback_tail(handle)
            raise
        location = _Location(self._end, len(blob))
        self._end += len(blob)
        self._records_seen += 1
        self._obs.count("cache.segment_appends")
        return location

    def _rollback_tail(self, handle) -> None:
        """Truncate a failed append's partial bytes back to ``_end``."""
        try:
            handle.truncate(self._end)
            handle.flush()
        except OSError:
            # The partial record stays on disk as a dead tail; mark it so
            # any future (recovered) append truncates before writing.
            self._torn = True

    def _note_write_error(self) -> None:
        """Count one lost store and keep the write side off.

        The first failure flips the store into read-only degradation;
        every store attempt after it (including the skipped ones) counts
        a ``cache.write_error`` so the telemetry total equals the number
        of verdicts the cache failed to persist.
        """
        self._write_errors += 1
        self._writes_disabled = True
        self._obs.count("cache.write_error")

    def _segment_is_ours(self) -> bool:
        try:
            with open(self.segment_path, "rb") as handle:
                return handle.read(len(_MAGIC)) == _MAGIC
        except OSError:
            return False

    def _catch_up(self) -> None:
        """Absorb records another in-process sharer appended after our scan.

        Called before every append so a second cache object on the same
        directory never overwrites a first one's records.  (Concurrent
        *processes* appending simultaneously are out of scope — within a
        run only the engine parent writes.)
        """
        try:
            size = os.path.getsize(self.segment_path)
        except OSError:
            size = 0
        if size <= self._end or self._torn:
            return
        if self._end == 0:
            # The segment appeared after our (empty) first scan — another
            # sharer created it.  Load it from scratch instead of parsing
            # from offset 0, which would misread the magic as a record.
            self._loaded = False
            self._records_seen = 0
            self._ensure_loaded()
            return
        try:
            handle = self._open(writable=False)
            handle.seek(self._end)
            data = handle.read(size - self._end)
        except OSError:
            return
        offset = 0
        while True:
            parsed = self._parse_header(data, offset)
            if parsed is None:
                break
            kind, key_length, payload_length, _ = parsed
            total = _HEADER.size + key_length + payload_length
            key = data[offset + _HEADER.size:
                       offset + _HEADER.size + key_length].decode("ascii")
            location = _Location(self._end + offset, total)
            if kind == _KIND_OUTCOME:
                self._entries[key[:_FINGERPRINT_LENGTH]] = location
                self._slots[key[_FINGERPRINT_LENGTH:]] = (
                    key[:_FINGERPRINT_LENGTH]
                )
                self._records_seen += 1
            elif kind == _KIND_TRIAGE:
                self._triage_index[key] = location
                self._records_seen += 1
            elif kind == _KIND_SCENARIO:
                self._scenario_index[key] = location
                self._records_seen += 1
            else:
                self._slots[key[:_FINGERPRINT_LENGTH]] = (
                    key[_FINGERPRINT_LENGTH:]
                )
            offset += total
        self._end += offset
        if self._end < size:
            self._torn = True

    def _open(self, writable: bool):
        if self._handle is not None and (self._writable or not writable):
            return self._handle
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if writable:
            self._directory.mkdir(parents=True, exist_ok=True)
            try:
                self._handle = open(self.segment_path, "r+b")
            except FileNotFoundError:
                self._handle = open(self.segment_path, "w+b")
            self._writable = True
        else:
            self._handle = open(self.segment_path, "rb")
            self._writable = False
        return self._handle

    def _record_bytes(self, location: _Location) -> bytes:
        handle = self._open(writable=False)
        handle.seek(location.offset)
        return handle.read(location.length)

    def _load_record(self, location: _Location, kind: int,
                     key: str) -> Optional[object]:
        """Re-read and fully validate one indexed record.  Never raises."""
        try:
            blob = self._record_bytes(location)
            if len(blob) != location.length:
                return None
            record_kind, _, key_length, payload_length, crc = _HEADER.unpack(
                blob[:_HEADER.size]
            )
            if (record_kind != kind
                    or _HEADER.size + key_length + payload_length
                    != len(blob)):
                return None
            body = blob[_HEADER.size:]
            if zlib.crc32(body) & 0xFFFFFFFF != crc:
                return None
            if not body[:key_length].decode("ascii").startswith(key):
                return None
            return pickle.loads(body[key_length:])
        except Exception:  # noqa: BLE001 — any damage is a miss, never a crash
            return None

    def _read_outcome(self, location: _Location,
                      fingerprint: str) -> Optional[CacheEntry]:
        entry = self._load_record(location, _KIND_OUTCOME, fingerprint)
        if (not isinstance(entry, CacheEntry)
                or entry.version != CACHE_FORMAT_VERSION
                or entry.fingerprint != fingerprint):
            return None
        return entry

    def _read_triage(self, location: _Location,
                     fingerprint: str) -> Optional[TriageEntry]:
        entry = self._load_record(location, _KIND_TRIAGE, fingerprint)
        if (not isinstance(entry, TriageEntry)
                or entry.version != CACHE_FORMAT_VERSION
                or entry.fingerprint != fingerprint):
            return None
        return entry

    # -- legacy (v3) read-side migration --------------------------------

    def _legacy_outcome(self, key: CacheKey
                        ) -> Tuple[str, Optional[CacheEntry]]:
        """Load, validate and migrate one v3 entry file.  Never raises.

        Returns ``("hit", entry)``, ``("corrupt", None)`` for a
        present-but-unreadable file (removed, like any damaged entry), or
        ``("absent", None)``.  A valid legacy entry is re-appended to the
        segment under the v4 record version (transparent read-side
        migration); the legacy file itself is left untouched.
        """
        path = self._entry_path(key)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
            if (not isinstance(entry, CacheEntry)
                    or entry.version != LEGACY_FORMAT_VERSION
                    or entry.fingerprint != key.entry):
                raise ValueError("cache entry does not match its address")
        except FileNotFoundError:
            return ("absent", None)
        except Exception:  # noqa: BLE001 — corruption is a miss, never a crash
            self._remove_quietly(path)
            return ("corrupt", None)
        entry = replace(entry, version=CACHE_FORMAT_VERSION)
        try:
            location = self._append(
                _KIND_OUTCOME,
                (key.entry + key.slot).encode("ascii"),
                pickle.dumps(entry),
            )
        except OSError:
            return ("hit", entry)  # migration retries next time
        self._entries[key.entry] = location
        self._slots.setdefault(key.slot, key.entry)
        self._obs.count("cache.migrations")
        return ("hit", entry)

    def _legacy_triage(self, fingerprint: str) -> Optional[TriageEntry]:
        path = self._triage_path(fingerprint)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
            if (not isinstance(entry, TriageEntry)
                    or entry.version != LEGACY_FORMAT_VERSION
                    or entry.fingerprint != fingerprint):
                raise ValueError("triage entry does not match its address")
        except FileNotFoundError:
            return None
        except Exception:  # noqa: BLE001 — corruption is a miss, never a crash
            self._obs.count("cache.triage_corrupt")
            self._remove_quietly(path)
            return None
        entry = replace(entry, version=CACHE_FORMAT_VERSION)
        try:
            location = self._append(
                _KIND_TRIAGE, fingerprint.encode("ascii"), pickle.dumps(entry)
            )
        except OSError:
            return entry
        self._triage_index[fingerprint] = location
        self._obs.count("cache.migrations")
        return entry

    def _slot_points_elsewhere(self, key: CacheKey) -> bool:
        """True when this slot was last stored under a *different* entry."""
        recorded = self._slots.get(key.slot)
        if recorded is None:
            try:
                recorded = self._slot_path(key).read_text(
                    encoding="ascii"
                ).strip()
            except OSError:
                return False
        return bool(recorded) and recorded != key.entry

    @staticmethod
    def _remove_quietly(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
