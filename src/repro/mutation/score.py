"""Mutation-score tables in the shape of the paper's Tables 2 and 3.

Both tables have the same layout: one row per mutated method with mutant
counts per operator, then four aggregate rows — ``#mutants``, ``#killed``,
``#equivalent`` and ``Score`` — per operator and overall.  The score is
"the ratio between the number of mutants killed and the number of
non-equivalent mutants".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .analysis import MutationRun
from .equivalence import EquivalenceReport
from .operators import OPERATOR_NAMES


@dataclass(frozen=True)
class OperatorColumn:
    """Aggregates for one operator (one column of Table 2/3)."""

    operator: str
    generated: int
    killed: int
    equivalent: int
    #: How many of ``equivalent`` were *proven* by the static triage pass
    #: (normalized-AST/bytecode identity) rather than classified by the
    #: dynamic probe or by hand.
    static_equivalent: int = 0

    @property
    def non_equivalent(self) -> int:
        return self.generated - self.equivalent

    @property
    def score(self) -> float:
        """The equivalence-adjusted score — the paper's definition: killed
        over non-equivalent."""
        if self.non_equivalent == 0:
            return 1.0
        return self.killed / self.non_equivalent

    @property
    def raw_score(self) -> float:
        """Killed over *all* generated mutants (no equivalence adjustment)."""
        if self.generated == 0:
            return 1.0
        return self.killed / self.generated


@dataclass(frozen=True)
class ScoreTable:
    """A Table-2/3-shaped mutation score table."""

    class_name: str
    methods: Tuple[str, ...]
    operators: Tuple[str, ...]
    per_method: Dict[Tuple[str, str], int]   # (method, operator) → #mutants
    columns: Tuple[OperatorColumn, ...]
    assertion_kills: int                     # the "59 of 652" datum
    suite_size: int

    # -- aggregates ------------------------------------------------------------

    @property
    def total_generated(self) -> int:
        return sum(column.generated for column in self.columns)

    @property
    def total_killed(self) -> int:
        return sum(column.killed for column in self.columns)

    @property
    def total_equivalent(self) -> int:
        return sum(column.equivalent for column in self.columns)

    @property
    def total_static_equivalent(self) -> int:
        return sum(column.static_equivalent for column in self.columns)

    @property
    def total_score(self) -> float:
        non_equivalent = self.total_generated - self.total_equivalent
        if non_equivalent == 0:
            return 1.0
        return self.total_killed / non_equivalent

    @property
    def total_raw_score(self) -> float:
        if self.total_generated == 0:
            return 1.0
        return self.total_killed / self.total_generated

    def column(self, operator: str) -> OperatorColumn:
        for column in self.columns:
            if column.operator == operator:
                return column
        raise KeyError(f"no column for operator {operator!r}")

    def method_total(self, method: str) -> int:
        return sum(
            count for (m, _op), count in self.per_method.items() if m == method
        )

    # -- rendering ---------------------------------------------------------

    def format(self) -> str:
        """Render in the paper's layout (method rows, aggregate rows)."""
        headers = ["Method"] + list(self.operators) + ["Total"]
        widths = [max(14, len(h) + 1) for h in headers]
        widths[0] = max(widths[0], max((len(m) for m in self.methods), default=6) + 1)

        def row(cells: Sequence[str]) -> str:
            return "".join(str(cell).ljust(width) for cell, width in zip(cells, widths))

        lines: List[str] = [
            f"Mutation results for class {self.class_name} "
            f"(suite of {self.suite_size} test cases)",
            row(headers),
            row(["-" * (w - 1) for w in widths]),
        ]
        for method in self.methods:
            cells = [method]
            for operator in self.operators:
                cells.append(str(self.per_method.get((method, operator), 0)))
            cells.append(str(self.method_total(method)))
            lines.append(row(cells))
        lines.append(row(["-" * (w - 1) for w in widths]))
        lines.append(row(
            ["#mutants"] + [str(c.generated) for c in self.columns]
            + [str(self.total_generated)]
        ))
        lines.append(row(
            ["#killed"] + [str(c.killed) for c in self.columns]
            + [str(self.total_killed)]
        ))
        lines.append(row(
            ["#equivalent"] + [str(c.equivalent) for c in self.columns]
            + [str(self.total_equivalent)]
        ))
        lines.append(row(
            ["Score(raw)"] + [f"{c.raw_score:.1%}" for c in self.columns]
            + [f"{self.total_raw_score:.1%}"]
        ))
        lines.append(row(
            ["Score"] + [f"{c.score:.1%}" for c in self.columns]
            + [f"{self.total_score:.1%}"]
        ))
        lines.append(
            f"kills by assertion violation: {self.assertion_kills} "
            f"of {self.total_killed}"
        )
        if self.total_static_equivalent:
            lines.append(
                f"equivalents proven by static triage: "
                f"{self.total_static_equivalent} of {self.total_equivalent}"
            )
        return "\n".join(lines)


def build_score_table(run: MutationRun,
                      equivalence: Optional[EquivalenceReport] = None,
                      methods: Optional[Sequence[str]] = None,
                      operators: Sequence[str] = OPERATOR_NAMES,
                      ) -> ScoreTable:
    """Assemble the Table-2/3 view from a run (+ optional equivalence pass).

    A mutant classified equivalent is excluded from the killable pool; if
    the probe *killed* a survivor, it stays non-equivalent (an escape).
    Mutants *proven* equivalent by the static triage pass (their outcome
    carries ``static_status``) count as equivalent whether or not a
    dynamic probe ran; ``Score`` is the equivalence-adjusted ratio and
    ``Score(raw)`` divides by all generated mutants.
    """
    if methods is None:
        ordered: List[str] = []
        for outcome in run.outcomes:
            if outcome.mutant.method_name not in ordered:
                ordered.append(outcome.mutant.method_name)
        methods = ordered

    per_method: Dict[Tuple[str, str], int] = {}
    generated: Dict[str, int] = {operator: 0 for operator in operators}
    killed: Dict[str, int] = {operator: 0 for operator in operators}
    equivalent: Dict[str, int] = {operator: 0 for operator in operators}
    static_equivalent: Dict[str, int] = {operator: 0 for operator in operators}
    assertion_kills = 0

    for outcome in run.outcomes:
        operator = outcome.mutant.operator
        if operator not in generated:
            continue  # an operator outside the requested columns
        key = (outcome.mutant.method_name, operator)
        per_method[key] = per_method.get(key, 0) + 1
        generated[operator] += 1
        if outcome.killed:
            killed[operator] += 1
            if outcome.reason.value == "assertion":
                assertion_kills += 1
        elif outcome.statically_equivalent:
            equivalent[operator] += 1
            static_equivalent[operator] += 1
        elif equivalence is not None and equivalence.is_equivalent(
            outcome.mutant.ident
        ):
            equivalent[operator] += 1

    columns = tuple(
        OperatorColumn(
            operator=operator,
            generated=generated[operator],
            killed=killed[operator],
            equivalent=equivalent[operator],
            static_equivalent=static_equivalent[operator],
        )
        for operator in operators
    )
    return ScoreTable(
        class_name=run.class_name,
        methods=tuple(methods),
        operators=tuple(operators),
        per_method=per_method,
        columns=columns,
        assertion_kills=assertion_kills,
        suite_size=run.suite_size,
    )
