"""Mutation analysis: operators, generation, sandboxed execution, scoring."""

from .analysis import (
    ClassBuilder,
    MutantOutcome,
    MutationAnalysis,
    MutationRun,
    analyze_mutants,
)
from .cache import (
    CACHE_FORMAT_VERSION,
    CacheEntry,
    CacheKey,
    CacheStats,
    MutationOutcomeCache,
    experiment_fingerprint,
    mutant_fingerprint,
)
from .coverage import (
    CoverageMatrix,
    MethodCoverageTracer,
    record_coverage,
)
from .equivalence import (
    DEFAULT_PROBE_SEEDS,
    EquivalenceReport,
    probe_equivalence,
)
from .generate import GenerationReport, MutantGenerator, generate_mutants
from .mutant import (
    CompiledMutant,
    Mutant,
    compile_mutant_function,
    rebuild_compiled_mutant,
    rebuild_subclass,
)
from .parallel import (
    DEFAULT_WALL_CLOCK_BACKSTOP,
    ParallelMutationAnalysis,
    analyze_mutants_parallel,
)
from .operators import (
    ALL_OPERATORS,
    OPERATOR_NAMES,
    IndVarBitNeg,
    IndVarRepExt,
    IndVarRepGlob,
    IndVarRepLoc,
    IndVarRepReq,
    MethodContext,
    MutationOperator,
    MutationPoint,
    OperatorRegistry,
    UseSite,
)
from .sandbox import DEFAULT_STEP_BUDGET, CallCountGuard, StepBudgetGuard
from .typemodel import TypeModel, compatible, constant_tag, infer_local_types, merge_tags, negatable
from .quality import (
    QualityEstimate,
    ReducedSuite,
    estimate_suite_quality,
    select_by_budget,
    select_by_quality,
    wilson_interval,
)
from .score import OperatorColumn, ScoreTable, build_score_table

__all__ = [
    "ALL_OPERATORS",
    "CACHE_FORMAT_VERSION",
    "CacheEntry",
    "CacheKey",
    "CacheStats",
    "ClassBuilder",
    "CallCountGuard",
    "CompiledMutant",
    "CoverageMatrix",
    "MethodCoverageTracer",
    "MutationOutcomeCache",
    "DEFAULT_PROBE_SEEDS",
    "DEFAULT_STEP_BUDGET",
    "DEFAULT_WALL_CLOCK_BACKSTOP",
    "EquivalenceReport",
    "GenerationReport",
    "IndVarBitNeg",
    "IndVarRepExt",
    "IndVarRepGlob",
    "IndVarRepLoc",
    "IndVarRepReq",
    "MethodContext",
    "Mutant",
    "MutantGenerator",
    "MutantOutcome",
    "MutationAnalysis",
    "MutationOperator",
    "MutationPoint",
    "MutationRun",
    "OPERATOR_NAMES",
    "ParallelMutationAnalysis",
    "OperatorColumn",
    "QualityEstimate",
    "ReducedSuite",
    "OperatorRegistry",
    "ScoreTable",
    "StepBudgetGuard",
    "TypeModel",
    "UseSite",
    "analyze_mutants",
    "analyze_mutants_parallel",
    "build_score_table",
    "compile_mutant_function",
    "experiment_fingerprint",
    "generate_mutants",
    "mutant_fingerprint",
    "rebuild_compiled_mutant",
    "record_coverage",
    "compatible",
    "constant_tag",
    "infer_local_types",
    "merge_tags",
    "negatable",
    "probe_equivalence",
    "rebuild_subclass",
    "estimate_suite_quality",
    "select_by_budget",
    "select_by_quality",
    "wilson_interval",
]
