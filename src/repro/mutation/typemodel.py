"""Type compatibility gate for mutant generation (the C++ compile gate).

The paper's mutants "were individually compiled, to assure that all faulty
classes compiled cleanly" (sec. 4).  In C++ that compile step is a *type
filter*: a mutant replacing an ``int`` local with a node pointer, or
bit-negating a pointer, never enters the mutant pool because it does not
compile.  Python compiles everything and fails at runtime instead, which
would flood the pool with trivially-crashing mutants the original
experiment never contained.

:class:`TypeModel` restores the filter.  The component producer declares the
"C++ types" of the class's attributes (and of the helper methods' returns);
:func:`infer_local_types` propagates them through a method body to type its
locals; and :func:`compatible` decides whether a replacement expression
would have compiled in the paper's setting:

* same type tag → compiles;
* ``none`` (NULL) → assignable to any pointer-ish tag (``node``, ``value``,
  ``nodelist``, ``str``-as-char* excluded for clarity);
* unknown (untypeable) values are permissive — the gate never *adds*
  mutants, it only removes provably-incompatible ones.

Generation without a type model is unrestricted (the "untyped" ablation).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Tags with pointer semantics: NULL is assignable to them.
POINTER_TAGS = {"node", "value", "nodelist", "object"}

#: Tags on which C++ bitwise negation compiles.
INTEGRAL_TAGS = {"int", "bool"}


@dataclass(frozen=True)
class TypeModel:
    """Producer-declared type tags for one class."""

    attribute_types: Dict[str, str] = field(default_factory=dict)
    method_return_types: Dict[str, str] = field(default_factory=dict)
    parameter_types: Dict[str, str] = field(default_factory=dict)

    def type_of_attribute(self, name: str) -> Optional[str]:
        return self.attribute_types.get(name)

    def type_of_call(self, method_name: str) -> Optional[str]:
        return self.method_return_types.get(method_name)

    def type_of_parameter(self, name: str) -> Optional[str]:
        return self.parameter_types.get(name)


def constant_tag(value) -> Optional[str]:
    """The tag of a literal constant (RC members)."""
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    return None


def merge_tags(first: Optional[str], second: Optional[str]) -> Optional[str]:
    """Join two observations of a local's type.

    ``none`` is the bottom element (NULL fits any pointer); conflicting
    concrete tags degrade to unknown (permissive).
    """
    if first is None:
        return second
    if second is None:
        return first
    if first == second:
        return first
    if first == "none":
        return second
    if second == "none":
        return first
    return None


def compatible(variable_tag: Optional[str], replacement_tag: Optional[str]) -> bool:
    """Would assigning ``replacement`` where ``variable`` is used compile?

    Unknown on either side is permissive (the gate only removes provable
    incompatibilities).
    """
    if variable_tag is None or replacement_tag is None:
        return True
    if variable_tag == replacement_tag:
        return True
    if replacement_tag == "none":
        return variable_tag in POINTER_TAGS
    if variable_tag == "none":
        return replacement_tag in POINTER_TAGS
    return False


def negatable(variable_tag: Optional[str]) -> bool:
    """Does ``~x`` compile for a variable of this tag (C++ integral rule)?"""
    return variable_tag is None or variable_tag in INTEGRAL_TAGS


class _Inferencer(ast.NodeVisitor):
    """Single pass collecting type observations from assignments."""

    def __init__(self, model: TypeModel, known: Dict[str, Optional[str]]):
        self.model = model
        self.known = known

    # -- expression typing ---------------------------------------------------

    def type_of(self, expression: ast.expr) -> Optional[str]:
        if isinstance(expression, ast.Constant):
            return constant_tag(expression.value)
        if isinstance(expression, ast.Name):
            if expression.id in self.known:
                return self.known[expression.id]
            return self.model.type_of_parameter(expression.id)
        if isinstance(expression, ast.Attribute):
            return self._type_of_attribute(expression)
        if isinstance(expression, ast.Call):
            return self._type_of_call(expression)
        if isinstance(expression, ast.BinOp):
            left = self.type_of(expression.left)
            right = self.type_of(expression.right)
            if left in INTEGRAL_TAGS and right in INTEGRAL_TAGS:
                return "int"
            return None
        if isinstance(expression, ast.UnaryOp):
            if isinstance(expression.op, ast.Not):
                return "bool"
            return self.type_of(expression.operand)
        if isinstance(expression, (ast.Compare, ast.BoolOp)):
            return "bool"
        if isinstance(expression, (ast.List, ast.ListComp)):
            return "nodelist" if self._node_elements(expression) else "list"
        if isinstance(expression, ast.Subscript):
            container = self.type_of(expression.value)
            if container == "nodelist":
                return "node"
            return None
        if isinstance(expression, ast.IfExp):
            return merge_tags(self.type_of(expression.body),
                              self.type_of(expression.orelse))
        return None

    def _type_of_attribute(self, expression: ast.Attribute) -> Optional[str]:
        if isinstance(expression.value, ast.Name) and expression.value.id == "self":
            return self.model.type_of_attribute(expression.attr)
        base = self.type_of(expression.value)
        if base == "node":
            if expression.attr in ("next", "prev"):
                return "node"
            if expression.attr == "value":
                return "value"
        return None

    def _type_of_call(self, expression: ast.Call) -> Optional[str]:
        function = expression.func
        if isinstance(function, ast.Attribute):
            if isinstance(function.value, ast.Name) and function.value.id == "self":
                return self.model.type_of_call(function.attr)
            return None
        if isinstance(function, ast.Name):
            if function.id in ("len",):
                return "int"
            if function.id.lstrip("_").startswith("ListNode") or \
                    function.id in ("_ListNode", "ListNode"):
                return "node"
        return None

    def _node_elements(self, expression: ast.expr) -> bool:
        if isinstance(expression, ast.List):
            return bool(expression.elts) and all(
                self.type_of(element) == "node" for element in expression.elts
            )
        return False

    # -- statement walking ---------------------------------------------------

    def visit_Assign(self, node: ast.Assign):  # noqa: N802 — ast API
        inferred = self.type_of(node.value)
        for target in node.targets:
            self._bind(target, inferred)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign):  # noqa: N802
        inferred = self.type_of(node.value)
        if isinstance(node.target, ast.Name):
            current = self.known.get(node.target.id)
            if current in INTEGRAL_TAGS and inferred in INTEGRAL_TAGS:
                self._bind(node.target, "int")
        self.generic_visit(node)

    def visit_For(self, node: ast.For):  # noqa: N802
        iterated = self.type_of(node.iter)
        if isinstance(node.target, ast.Name):
            element = "node" if iterated == "nodelist" else None
            if isinstance(node.iter, ast.Call) and isinstance(node.iter.func, ast.Name) \
                    and node.iter.func.id == "range":
                element = "int"
            self._bind(node.target, element)
        self.generic_visit(node)

    def _bind(self, target: ast.expr, inferred: Optional[str]) -> None:
        if isinstance(target, ast.Name):
            self.known[target.id] = merge_tags(self.known.get(target.id), inferred)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, None)


def infer_local_types(function: ast.FunctionDef,
                      model: TypeModel,
                      passes: int = 3) -> Dict[str, Optional[str]]:
    """Type tags of a method's locals, by fixpoint assignment propagation."""
    known: Dict[str, Optional[str]] = {}
    for _ in range(passes):
        before = dict(known)
        inferencer = _Inferencer(model, known)
        inferencer.visit(function)
        if known == before:
            break
    return known


def expression_tag(expression: ast.expr, model: TypeModel,
                   local_types: Dict[str, Optional[str]]) -> Optional[str]:
    """The tag of a replacement expression (Name/Attribute/Constant/~x)."""
    inferencer = _Inferencer(model, dict(local_types))
    return inferencer.type_of(expression)
