"""Deterministic random-number utilities.

Every stochastic decision in the library (random parameter values, choice of
method alternatives inside a TFM node) flows through a :class:`ReproRandom`
instance so that test generation is reproducible from a single seed.  The
paper generates parameter values "by randomly selecting a value from the
valid subdomain" (sec. 3.4.1); determinism is our addition so experiments can
be replayed exactly.
"""

from __future__ import annotations

import random
import string
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")

DEFAULT_SEED = 20010701  # DSN 2001, July — fixed default for reproducibility

_PRINTABLE = string.ascii_letters + string.digits + " _-."


class ReproRandom:
    """A seeded random source with the handful of draws the library needs."""

    def __init__(self, seed: Optional[int] = None):
        self.seed = DEFAULT_SEED if seed is None else seed
        self._rng = random.Random(self.seed)

    def fork(self, salt: int) -> "ReproRandom":
        """Derive an independent stream; used to decorrelate per-test draws."""
        return ReproRandom((self.seed * 1_000_003 + salt) & 0x7FFFFFFF)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        if low > high:
            raise ValueError(f"empty integer range [{low}, {high}]")
        return self._rng.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        if low > high:
            raise ValueError(f"empty float range [{low}, {high}]")
        return self._rng.uniform(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list:
        """``k`` distinct items from the sequence."""
        return self._rng.sample(list(items), k)

    def shuffle(self, items: list) -> None:
        """In-place shuffle."""
        self._rng.shuffle(items)

    def boolean(self, probability_true: float = 0.5) -> bool:
        """Biased coin flip."""
        return self._rng.random() < probability_true

    def printable_string(self, min_length: int = 0, max_length: int = 16) -> str:
        """A random printable string with length in ``[min_length, max_length]``."""
        if min_length < 0 or max_length < min_length:
            raise ValueError(
                f"bad string length bounds [{min_length}, {max_length}]"
            )
        length = self._rng.randint(min_length, max_length)
        return "".join(self._rng.choice(_PRINTABLE) for _ in range(length))
