"""Canonical content encoding and SHA-256 fingerprints.

The incremental mutation-analysis cache (:mod:`repro.mutation.cache`) keys
outcomes by *content*: a cached verdict may be replayed only when every
input that could change it — the mutated source, the test cases, the
oracle, the sandbox budget — is byte-identical.  That requires a rendering
of arbitrary configuration objects that is

* **stable across processes** — no ``id()``, no memory addresses, no
  ``repr`` of function objects;
* **structural** — two separately constructed but equal-valued objects
  (e.g. two ``paper_oracle()`` instances) render identically;
* **source-sensitive for classes** — a class reference embeds a hash of
  its source text where retrievable, so editing a component implementation
  invalidates every fingerprint that mentions the class.

:func:`canonical` produces that rendering; :func:`sha256_hex` folds the
parts into a hex digest.  Unknown object kinds degrade to their type
identity rather than raising: a coarser fingerprint only costs cache
misses, never correctness.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import inspect
import weakref
from typing import Any

#: Nesting bound for :func:`canonical`.  Deep enough for every structure
#: the library fingerprints (suite → case → step → argument is depth ~7);
#: cyclic object graphs bottom out instead of recursing forever.
MAX_CANONICAL_DEPTH = 16


def sha256_hex(*parts: str) -> str:
    """SHA-256 over the parts, each terminated so concatenation is unambiguous."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


def canonical(value: Any, _depth: int = 0) -> str:
    """A deterministic, identity-free textual encoding of ``value``."""
    if _depth > MAX_CANONICAL_DEPTH:
        return "<max-depth>"
    if value is None:
        return "none"
    if isinstance(value, bool):
        return f"bool:{value}"
    if isinstance(value, int):
        return f"int:{value}"
    if isinstance(value, float):
        return f"float:{value!r}"
    if isinstance(value, str):
        return f"str:{value!r}"
    if isinstance(value, bytes):
        return f"bytes:{value.hex()}"
    if isinstance(value, enum.Enum):
        return f"enum:{type(value).__qualname__}.{value.name}"
    if isinstance(value, type):
        return _canonical_type(value)
    if isinstance(value, (tuple, list)):
        tag = "tuple" if isinstance(value, tuple) else "list"
        rendered = ",".join(canonical(item, _depth + 1) for item in value)
        return f"{tag}:[{rendered}]"
    if isinstance(value, (set, frozenset)):
        rendered = ",".join(sorted(canonical(item, _depth + 1) for item in value))
        return f"set:{{{rendered}}}"
    if isinstance(value, dict):
        items = sorted(
            (canonical(key, _depth + 1), canonical(item, _depth + 1))
            for key, item in value.items()
        )
        rendered = ",".join(f"{key}={item}" for key, item in items)
        return f"dict:{{{rendered}}}"
    if dataclasses.is_dataclass(value):
        fields = ",".join(
            f"{field.name}={canonical(getattr(value, field.name), _depth + 1)}"
            for field in dataclasses.fields(value)
        )
        return f"data:{type(value).__qualname__}({fields})"
    if inspect.isroutine(value):
        module = getattr(value, "__module__", "?")
        qualname = getattr(value, "__qualname__", type(value).__qualname__)
        return f"callable:{module}.{qualname}"
    state = getattr(value, "__dict__", None)
    if isinstance(state, dict):
        return (
            f"object:{type(value).__module__}.{type(value).__qualname__}"
            f"({canonical(state, _depth + 1)})"
        )
    return f"opaque:{type(value).__module__}.{type(value).__qualname__}"


#: Per-class memo for :func:`_canonical_type`.  ``inspect.getsource`` walks
#: the defining file on every call (~ms per class), and cache-key paths
#: canonicalise the same owner class once per mutant — 700+ times per
#: battery.  Weak keys keep dynamically built test classes collectable.
_TYPE_CANONICAL: "weakref.WeakKeyDictionary[type, str]" = (
    weakref.WeakKeyDictionary()
)


def _canonical_type(cls: type) -> str:
    """Type identity plus a source digest (where source is retrievable).

    Embedding the source hash makes any fingerprint that references a class
    sensitive to edits of that class's implementation — the original class
    and the class-builder operands invalidate cached mutant outcomes when
    their behaviour could have changed.  Dynamically built classes have no
    retrievable source; they degrade to name identity.
    """
    try:
        return _TYPE_CANONICAL[cls]
    except (KeyError, TypeError):
        pass
    try:
        source = inspect.getsource(cls)
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]
    except (OSError, TypeError):
        digest = "nosource"
    rendered = f"type:{cls.__module__}.{cls.__qualname__}#{digest}"
    try:
        _TYPE_CANONICAL[cls] = rendered
    except TypeError:
        pass  # a class without weakref support: recompute next time
    return rendered
