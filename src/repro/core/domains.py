"""Value domains for attributes and method parameters.

The t-spec (Figure 3 in the paper) declares, for each attribute and each
method parameter, a *type* drawn from ``{range, set, string, object,
pointer}`` plus whatever extra information the type needs (lower/upper limits
for ranges, the member list for sets, …).  The Driver Generator draws random
parameter values "from the valid subdomain" for numeric types and strings;
structured types (objects, arrays, pointers) must be completed manually by
the tester (sec. 3.4.1).

This module models those domains as small value objects with three
responsibilities:

* ``contains(value)`` — membership test, used by contract checks and by the
  t-spec validator;
* ``sample(rng)`` — draw a random member, used by the Driver Generator;
* ``boundary_values()`` — the classic boundary candidates, used by the
  boundary-value extension of the generator (an ablation the paper's
  criterion does not require but its framework admits).

Domains are immutable and hashable so they can live inside frozen spec
records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from .errors import DomainError
from .rng import ReproRandom


class Domain:
    """Abstract base for value domains.

    Concrete domains are frozen dataclasses; this base only fixes the
    interface.  ``is_structured`` mirrors the paper's split between types the
    generator can sample automatically (numbers, strings, sets of literals)
    and types the tester must complete by hand (objects, pointers).
    """

    #: t-spec keyword for this domain kind (``range``, ``set``, ``string``, …)
    kind: str = "abstract"

    #: True when the generator cannot sample the domain automatically.
    is_structured: bool = False

    def contains(self, value: Any) -> bool:
        raise NotImplementedError

    def sample(self, rng: ReproRandom) -> Any:
        raise NotImplementedError

    def boundary_values(self) -> Tuple[Any, ...]:
        """Interesting extreme members, each guaranteed to be in the domain."""
        return ()

    def describe(self) -> str:
        """One-line human-readable description for reports and specs."""
        return self.kind


@dataclass(frozen=True)
class RangeDomain(Domain):
    """Integer interval ``[low, high]`` — the t-spec ``range`` type.

    Figure 3 declares attribute ``qty`` as ``range, 1, 99999``.
    """

    low: int
    high: int
    kind = "range"

    def __post_init__(self):
        if not isinstance(self.low, int) or not isinstance(self.high, int):
            raise DomainError(f"range bounds must be integers: {self.low!r}, {self.high!r}")
        if self.low > self.high:
            raise DomainError(f"empty range [{self.low}, {self.high}]")

    def contains(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and self.low <= value <= self.high

    def sample(self, rng: ReproRandom) -> int:
        return rng.randint(self.low, self.high)

    def boundary_values(self) -> Tuple[int, ...]:
        candidates = {self.low, self.high}
        if self.low < 0 <= self.high:
            candidates.add(0)
        if self.low + 1 <= self.high:
            candidates.add(self.low + 1)
            candidates.add(self.high - 1)
        return tuple(sorted(candidates))

    def describe(self) -> str:
        return f"range [{self.low}, {self.high}]"


@dataclass(frozen=True)
class FloatRangeDomain(Domain):
    """Float interval ``[low, high]`` for ``float`` parameters (e.g. price)."""

    low: float
    high: float
    kind = "float_range"

    def __post_init__(self):
        if self.low > self.high:
            raise DomainError(f"empty float range [{self.low}, {self.high}]")

    def contains(self, value: Any) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool) and self.low <= value <= self.high

    def sample(self, rng: ReproRandom) -> float:
        return rng.uniform(self.low, self.high)

    def boundary_values(self) -> Tuple[float, ...]:
        mid = (self.low + self.high) / 2.0
        return tuple(dict.fromkeys((self.low, mid, self.high)))

    def describe(self) -> str:
        return f"float range [{self.low}, {self.high}]"


@dataclass(frozen=True)
class SetDomain(Domain):
    """Finite enumeration of allowed literal values — the t-spec ``set`` type."""

    members: Tuple[Any, ...]
    kind = "set"

    def __post_init__(self):
        if not self.members:
            raise DomainError("set domain needs at least one member")

    def contains(self, value: Any) -> bool:
        # Avoid bool/int conflation: True is not a member of {0, 1} here.
        for member in self.members:
            if type(member) is type(value) and member == value:
                return True
        return False

    def sample(self, rng: ReproRandom) -> Any:
        return rng.choice(self.members)

    def boundary_values(self) -> Tuple[Any, ...]:
        if len(self.members) <= 2:
            return tuple(self.members)
        return (self.members[0], self.members[-1])

    def describe(self) -> str:
        shown = ", ".join(repr(m) for m in self.members[:5])
        suffix = ", …" if len(self.members) > 5 else ""
        return f"set {{{shown}{suffix}}}"


@dataclass(frozen=True)
class StringDomain(Domain):
    """Printable strings with bounded length — the t-spec ``string`` type."""

    min_length: int = 0
    max_length: int = 16
    kind = "string"

    def __post_init__(self):
        if self.min_length < 0 or self.max_length < self.min_length:
            raise DomainError(
                f"bad string length bounds [{self.min_length}, {self.max_length}]"
            )

    def contains(self, value: Any) -> bool:
        return isinstance(value, str) and self.min_length <= len(value) <= self.max_length

    def sample(self, rng: ReproRandom) -> str:
        return rng.printable_string(self.min_length, self.max_length)

    def boundary_values(self) -> Tuple[str, ...]:
        shortest = "a" * self.min_length
        longest = "z" * self.max_length
        return tuple(dict.fromkeys((shortest, longest)))

    def describe(self) -> str:
        return f"string [len {self.min_length}..{self.max_length}]"


@dataclass(frozen=True)
class BoolDomain(Domain):
    """Booleans; a convenience not named in Figure 3 but needed in practice."""

    kind = "bool"

    def contains(self, value: Any) -> bool:
        return isinstance(value, bool)

    def sample(self, rng: ReproRandom) -> bool:
        return rng.boolean()

    def boundary_values(self) -> Tuple[bool, ...]:
        return (False, True)


@dataclass(frozen=True)
class ObjectDomain(Domain):
    """Values of some class — the t-spec ``object`` type.

    Structured: the Driver Generator cannot invent instances; the tester
    supplies a *factory* when completing the test case (sec. 3.4.1), or binds
    one here so sampling becomes automatic.
    """

    class_name: str
    factory: Optional[Callable[[ReproRandom], Any]] = field(default=None, compare=False)
    kind = "object"

    @property
    def is_structured(self) -> bool:  # type: ignore[override]
        return self.factory is None

    def contains(self, value: Any) -> bool:
        # Best-effort by class name: specs are language-independent, so we
        # match on the runtime type name rather than identity.
        return type(value).__name__ == self.class_name

    def sample(self, rng: ReproRandom) -> Any:
        if self.factory is None:
            raise DomainError(
                f"object domain '{self.class_name}' has no factory; "
                "structured parameters must be completed by the tester"
            )
        return self.factory(rng)

    def describe(self) -> str:
        state = "bound" if self.factory is not None else "unbound"
        return f"object<{self.class_name}> ({state})"


@dataclass(frozen=True)
class PointerDomain(Domain):
    """Nullable reference — the t-spec ``pointer`` type.

    In Python a pointer parameter is "an object or ``None``"; the interesting
    boundary member is ``None`` (the paper's RC set includes NULL).
    """

    target: ObjectDomain
    null_probability: float = 0.2
    kind = "pointer"

    @property
    def is_structured(self) -> bool:  # type: ignore[override]
        return self.target.is_structured

    def contains(self, value: Any) -> bool:
        return value is None or self.target.contains(value)

    def sample(self, rng: ReproRandom) -> Any:
        if rng.boolean(self.null_probability):
            return None
        return self.target.sample(rng)

    def boundary_values(self) -> Tuple[Any, ...]:
        return (None,)

    def describe(self) -> str:
        return f"pointer to {self.target.describe()}"


# Keyword → constructor map used by the t-spec parser.  ``object`` and
# ``pointer`` get their class name from the spec; the rest take numeric /
# literal arguments.
DOMAIN_KINDS = {
    "range": RangeDomain,
    "float_range": FloatRangeDomain,
    "set": SetDomain,
    "string": StringDomain,
    "bool": BoolDomain,
    "object": ObjectDomain,
    "pointer": PointerDomain,
}
