"""Exception hierarchy for the repro library.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause.  Contract
violations (the paper's assertion exceptions, Figure 5) form their own branch
because test drivers treat them specially: a contract violation raised while
running a test case is a *detected fault*, not an infrastructure failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Specification errors (t-spec construction, parsing, validation)
# ---------------------------------------------------------------------------


class SpecError(ReproError):
    """Base class for test-specification (t-spec) errors."""


class SpecParseError(SpecError):
    """The textual t-spec could not be parsed.

    Carries the line/column of the offending token when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SpecValidationError(SpecError):
    """The t-spec parsed but is internally inconsistent.

    Examples: a node references an undeclared method, a method declares three
    parameters but only two ``Parameter`` records exist, an edge names an
    unknown node.
    """

    def __init__(self, problems):
        self.problems = list(problems)
        summary = "; ".join(self.problems) if self.problems else "unknown problem"
        super().__init__(f"invalid t-spec: {summary}")


class DomainError(SpecError):
    """A value domain was declared or used inconsistently."""


# ---------------------------------------------------------------------------
# Transaction flow model errors
# ---------------------------------------------------------------------------


class ModelError(ReproError):
    """Base class for transaction-flow-model errors."""


class NoTransactionError(ModelError):
    """The TFM admits no complete transaction (no birth-to-death path)."""


# ---------------------------------------------------------------------------
# Contract (built-in test assertion) violations — Figure 5 analogues
# ---------------------------------------------------------------------------


class ContractViolation(ReproError):
    """Base class for contract assertion violations.

    Equivalent to the exception thrown by Concat's assertion macros.  The
    :attr:`subject` records which class/method raised, for the driver log.
    """

    kind = "contract"

    def __init__(self, message: str = "", subject: str = ""):
        self.subject = subject
        # Default texts mirror Figure 5: "Pre-condition is violated!" etc.
        detail = message or f"{self.kind.capitalize()} is violated!"
        if subject:
            detail = f"{detail} [in {subject}]"
        super().__init__(detail)


class InvariantViolation(ContractViolation):
    """The class invariant does not hold (``ClassInvariant`` macro)."""

    kind = "invariant"


class PreconditionViolation(ContractViolation):
    """A method precondition does not hold (``PreCondition`` macro)."""

    kind = "pre-condition"


class PostconditionViolation(ContractViolation):
    """A method postcondition does not hold (``PostCondition`` macro)."""

    kind = "post-condition"


# ---------------------------------------------------------------------------
# Built-in test infrastructure errors
# ---------------------------------------------------------------------------


class BitError(ReproError):
    """Base class for built-in-test infrastructure misuse."""


class TestModeError(BitError):
    """A BIT capability was accessed while the component is not in test mode.

    This is the runtime analogue of omitting the compiler directive in the
    paper: BIT services simply are not available outside test mode.
    """

    __test__ = False  # name starts with "Test"; keep pytest from collecting it


class InstrumentationError(BitError):
    """A class could not be instrumented with BIT capabilities."""


# ---------------------------------------------------------------------------
# Driver generation / execution errors
# ---------------------------------------------------------------------------


class GenerationError(ReproError):
    """Test-case generation failed (e.g. a parameter domain is missing)."""


class IncompleteTestCaseError(GenerationError):
    """A generated test case still has unbound structured parameters.

    The paper requires structured-type parameters (objects, arrays, pointers)
    to be completed manually by the tester; executing a test case with holes
    raises this error instead of silently passing ``None``.
    """


class ExecutionError(ReproError):
    """The test harness itself failed (not the component under test)."""


# ---------------------------------------------------------------------------
# Mutation analysis errors
# ---------------------------------------------------------------------------


class MutationError(ReproError):
    """Base class for mutation-analysis errors."""


class MutantCompileError(MutationError):
    """A generated mutant does not compile; it must be discarded.

    The paper compiled each mutant class individually "to assure that all
    faulty classes compiled cleanly"; we do the same and raise on failure so
    the generator can drop the mutant.
    """


class SandboxTimeout(MutationError):
    """A mutant exceeded its execution step budget (assumed infinite loop)."""


class RunCancelled(MutationError):
    """An in-flight analysis was cancelled cooperatively.

    Raised by the engines when the run's cancel event is set: the serial
    engine checks it between mutants, the pool dispatcher detaches the
    run's workers and abandons its pending queue.  Already-recorded
    verdicts are discarded with the run; neighbours on a shared pool are
    untouched (their batches are fenced by run id).
    """


# ---------------------------------------------------------------------------
# Scenario corpus errors
# ---------------------------------------------------------------------------


class ScenarioError(ReproError):
    """A scenario registry or sweep configuration is invalid.

    Raised with *every* problem found (one per line), not just the first —
    a corpus of hundreds of declarative entries is fixed in one pass or
    not at all.
    """


# ---------------------------------------------------------------------------
# Service mode errors
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """A mutation-service request, payload, or transport failed.

    Covers both sides of the wire: the daemon raises it for malformed or
    unserviceable requests (and serializes it into an ``ok: false``
    reply), the client raises it for transport failures and error
    replies.
    """
