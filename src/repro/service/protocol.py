"""The wire protocol: newline-delimited JSON request/reply messages.

One request per line, one reply per line, UTF-8, keys sorted — the
framing a shell user can drive with ``nc -U`` and a test can drive with
a string.  Every reply carries ``ok`` (bool) and ``v`` (the protocol
version); error replies carry ``error`` (human-readable, single line).

The verbs and the job lifecycle states live here so client, server and
tests agree on the vocabulary without importing each other.

Job lifecycle::

    queued ──> running ──> done        (executed to completion)
       │           ├─────> failed      (the executor raised)
       │           ├─────> cancelled   (client asked; drained cooperatively)
       │           └─────> killed      (a per-job limit fired)
       └─────────> cancelled           (cancelled before it started)

``done`` does not mean the scenario *passed* — a scenario that errors
in a well-defined way is still a completed job; clients inspect the
result row.  The three right-hand columns are :data:`TERMINAL_STATES`:
a job never leaves them and its result/events are frozen.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping

from ..core.errors import ServiceError

#: Bumped on incompatible message-shape changes; replies echo it.
PROTOCOL_VERSION = 1

#: Upper bound on one framed line (request or reply), newline included.
#: Large enough for a full scenario mapping or a sweep-sized result row,
#: small enough that a garbage client cannot balloon the daemon.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Every request verb the daemon answers (``op`` field).
VERBS = (
    "ping",
    "submit",
    "status",
    "result",
    "cancel",
    "events",
    "stats",
    "shutdown",
)

# -- job lifecycle states ---------------------------------------------------

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
KILLED = "killed"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED, KILLED)
TERMINAL_STATES = frozenset((DONE, FAILED, CANCELLED, KILLED))


class ProtocolError(ServiceError):
    """A message could not be framed or parsed (not a domain failure)."""


def encode(message: Mapping[str, Any]) -> bytes:
    """One framed line: compact sorted-key JSON plus the newline.

    Sorted keys keep identical messages byte-identical across processes
    (the differential tests diff raw reply lines).  Raises
    :class:`ProtocolError` when the message cannot be serialized or
    exceeds :data:`MAX_LINE_BYTES`.
    """
    try:
        text = json.dumps(message, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"unserializable message: {error}")
    if "\n" in text:  # json.dumps never emits raw newlines; belt and braces
        raise ProtocolError("message serialization contains a newline")
    blob = (text + "\n").encode("utf-8")
    if len(blob) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(blob)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line limit"
        )
    return blob


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one framed line into its message mapping.

    Raises :class:`ProtocolError` for oversize lines, non-JSON, and
    JSON that is not an object — the caller turns that into an error
    reply (server) or a :class:`~repro.core.errors.ServiceError`
    (client).
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"line of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte limit"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"not a JSON line: {error}")
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


def ok(**fields: Any) -> Dict[str, Any]:
    """A success reply (``ok`` and ``v`` filled in)."""
    reply: Dict[str, Any] = {"ok": True, "v": PROTOCOL_VERSION}
    reply.update(fields)
    return reply


def error_reply(message: str, **fields: Any) -> Dict[str, Any]:
    """An error reply; ``message`` must be one human-readable line."""
    reply: Dict[str, Any] = {
        "ok": False,
        "v": PROTOCOL_VERSION,
        "error": " ".join(str(message).split()),
    }
    reply.update(fields)
    return reply
