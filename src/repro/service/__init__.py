"""Service mode: the resident mutation-analysis daemon and its client.

``python -m repro.service serve`` keeps one process — with its warm
:class:`~repro.mutation.parallel.WorkerPool`, sweep-wide prep memos and
segment-store cache — resident, and exposes a line-delimited JSON API
over a local UNIX socket (or an optional localhost TCP port).  Jobs are
(scenario-or-experiment, limits) payloads validated with the scenario
registry machinery, multiplexed onto the shared pool with per-job
cancel events, wall deadlines and worker-side CPU/memory rlimits, and
observed through per-job telemetry streams.

The split mirrors the rest of the library: :mod:`protocol` is pure data
(framing, verbs, job states), :mod:`jobs` is the queue/lifecycle engine
with no transport, :mod:`server` binds both to the mutation pipeline
and to sockets, :mod:`client` is the thin caller the CLIs share.  A
client-driven sweep renders the byte-identical deterministic report of
an in-process :class:`~repro.scenarios.sweep.SweepRunner` — the
differential tests pin it.
"""

from .client import ServiceClient, parse_address, sweep_over_server
from .jobs import Job, JobLimits, JobManager
from .protocol import (
    JOB_STATES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    TERMINAL_STATES,
    VERBS,
    ProtocolError,
    decode_line,
    encode,
    error_reply,
    ok,
)
from .server import MutationService, ServiceServer

__all__ = [
    "Job",
    "JobLimits",
    "JobManager",
    "JOB_STATES",
    "MAX_LINE_BYTES",
    "MutationService",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceClient",
    "ServiceServer",
    "TERMINAL_STATES",
    "VERBS",
    "decode_line",
    "encode",
    "error_reply",
    "ok",
    "parse_address",
    "sweep_over_server",
]
