"""The job queue: submission, execution slots, limits, lifecycle.

:class:`JobManager` owns a FIFO queue and N executor threads; the
*work* itself is a callable injected at construction time, so this
module knows nothing about scenarios, experiments or sockets and the
tests can drive it with stub executors.

Per-job enforcement:

* **wall deadline** — a :class:`threading.Timer` armed at dispatch; on
  fire it records the kill reason and sets the job's cancel event, so a
  cooperative executor (the sweep runner / mutation engines) drains
  within one poll interval and the job lands in the ``killed`` state.
  The worker pool is never recycled — a killed job costs at most its
  own workers (respawned by the pool), never its neighbours';
* **CPU / memory rlimits** — worker-side soft limits
  (:class:`~repro.mutation.parallel.BatchLimits`) shipped with every
  batch the job dispatches; the executor threads them through.

Every job carries its own telemetry session backed by a
:class:`~repro.obs.MemorySink`, so clients can stream a job's JSONL
events (``events`` verb) without subscribing to the daemon's firehose.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Tuple

from ..core.errors import ServiceError
from ..mutation.parallel import BatchLimits
from ..obs import MemorySink, Telemetry
from .protocol import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    KILLED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
)


@dataclass(frozen=True)
class JobLimits:
    """Per-job resource ceilings (all optional; ``None`` = unlimited).

    ``wall_seconds`` is enforced daemon-side (a deadline timer firing
    the job's cancel event); ``cpu_seconds`` and ``memory_bytes`` are
    enforced worker-side as soft rlimits per dispatched batch — they
    only bite when the job runs on the parallel engine (``workers > 1``),
    because in-process rlimits would take the daemon down with the job.
    """

    wall_seconds: Optional[float] = None
    cpu_seconds: Optional[float] = None
    memory_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        problems = []
        for name in ("wall_seconds", "cpu_seconds", "memory_bytes"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{name} must be a number, got {value!r}")
            elif value <= 0:
                problems.append(f"{name} must be positive, got {value!r}")
        if problems:
            raise ServiceError(
                "invalid job limits: " + "; ".join(problems)
            )

    @property
    def empty(self) -> bool:
        return (self.wall_seconds is None and self.cpu_seconds is None
                and self.memory_bytes is None)

    @classmethod
    def from_mapping(cls, mapping: Optional[Mapping[str, Any]]
                     ) -> "JobLimits":
        """Validate a request's ``limits`` object (``None`` = no limits)."""
        if mapping is None:
            return cls()
        if not isinstance(mapping, Mapping):
            raise ServiceError(
                f"limits must be an object, got {type(mapping).__name__}"
            )
        allowed = ("wall_seconds", "cpu_seconds", "memory_bytes")
        unknown = sorted(set(mapping) - set(allowed))
        if unknown:
            raise ServiceError(
                f"unknown limit key(s) {', '.join(unknown)} "
                f"(known: {', '.join(allowed)})"
            )
        memory = mapping.get("memory_bytes")
        if memory is not None and not isinstance(memory, int):
            raise ServiceError(
                f"memory_bytes must be an integer, got {memory!r}"
            )
        return cls(
            wall_seconds=mapping.get("wall_seconds"),
            cpu_seconds=mapping.get("cpu_seconds"),
            memory_bytes=memory,
        )

    def to_mapping(self) -> Dict[str, Any]:
        return {
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "memory_bytes": self.memory_bytes,
        }

    def batch_limits(self) -> Optional[BatchLimits]:
        """The worker-side rlimits slice, or ``None`` when both are off."""
        if self.cpu_seconds is None and self.memory_bytes is None:
            return None
        return BatchLimits(cpu_seconds=self.cpu_seconds,
                           memory_bytes=self.memory_bytes)


class Job:
    """One submitted unit of work and its observable lifecycle.

    Mutable fields are guarded by the owning manager's lock; readers go
    through :meth:`snapshot` / :meth:`events_slice`, which take it.
    """

    def __init__(self, job_id: str, kind: str,
                 payload: Mapping[str, Any], limits: JobLimits,
                 lock: threading.Lock) -> None:
        self.job_id = job_id
        self.kind = kind
        self.payload = dict(payload)
        self.limits = limits
        self.state = QUEUED
        self.cancel_event = threading.Event()
        self.cancel_requested = False
        self.kill_reason = ""
        self.error = ""
        self.result: Optional[Dict[str, Any]] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.sink = MemorySink()
        self.telemetry = Telemetry(sink=self.sink)
        self._lock = lock
        self._timer: Optional[threading.Timer] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def snapshot(self) -> Dict[str, Any]:
        """The ``status`` reply body (JSON-ready, lock-consistent)."""
        with self._lock:
            return {
                "job_id": self.job_id,
                "kind": self.kind,
                "state": self.state,
                "limits": self.limits.to_mapping(),
                "cancel_requested": self.cancel_requested,
                "kill_reason": self.kill_reason,
                "error": self.error,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "events": len(self.sink.events),
            }

    def events_slice(self, start: int) -> Tuple[List[Dict[str, Any]], int]:
        """Events ``[start:]`` plus the next offset (offset polling)."""
        if start < 0:
            raise ServiceError(f"event offset must be >= 0, got {start}")
        with self._lock:
            batch = list(self.sink.events[start:])
        return batch, start + len(batch)


class JobManager:
    """FIFO queue + executor slots + per-job wall watchdogs.

    ``execute(job)`` is called on an executor thread with the job in
    the ``running`` state; it returns the result mapping or raises.
    Terminal-state resolution (in priority order): a fired limit wins
    over a client cancel, which wins over an executor exception, which
    wins over plain completion — the order mirrors causality: whatever
    *stopped* the job names its state.
    """

    def __init__(self, execute: Callable[[Job], Dict[str, Any]],
                 concurrency: int = 2,
                 default_limits: Optional[JobLimits] = None) -> None:
        if concurrency < 1:
            raise ServiceError("concurrency must be >= 1")
        self._execute = execute
        self._default_limits = default_limits or JobLimits()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: Deque[Job] = deque()
        self._jobs: Dict[str, Job] = {}
        self._counter = 0
        self._stopping = False
        self._started_at = time.time()
        self._executed = 0
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-service-exec-{number}",
                             daemon=True)
            for number in range(concurrency)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission / lookup --------------------------------------------

    def submit(self, kind: str, payload: Mapping[str, Any],
               limits: Optional[JobLimits] = None) -> Job:
        merged = self._merge_limits(limits)
        with self._lock:
            if self._stopping:
                raise ServiceError("service is shutting down")
            self._counter += 1
            job = Job(f"job-{self._counter:06d}", kind, payload, merged,
                      self._lock)
            self._jobs[job.job_id] = job
            self._queue.append(job)
            self._wakeup.notify()
        return job

    def _merge_limits(self, limits: Optional[JobLimits]) -> JobLimits:
        """Request limits, with the daemon's defaults filling the gaps."""
        if limits is None or limits.empty:
            return self._default_limits
        base = self._default_limits
        return JobLimits(
            wall_seconds=(limits.wall_seconds
                          if limits.wall_seconds is not None
                          else base.wall_seconds),
            cpu_seconds=(limits.cpu_seconds
                         if limits.cpu_seconds is not None
                         else base.cpu_seconds),
            memory_bytes=(limits.memory_bytes
                          if limits.memory_bytes is not None
                          else base.memory_bytes),
        )

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    # -- cancellation ---------------------------------------------------

    def cancel(self, job_id: str) -> Job:
        """Cancel a job (idempotent; terminal jobs are left untouched).

        Queued jobs resolve to ``cancelled`` immediately; running jobs
        get their cancel event set and drain cooperatively — neighbours
        sharing the worker pool are fenced by run id and unaffected.
        """
        job = self.get(job_id)
        with self._lock:
            if job.terminal:
                return job
            job.cancel_requested = True
            if job.state == QUEUED:
                try:
                    self._queue.remove(job)
                except ValueError:
                    pass  # an executor claimed it between our two looks
                else:
                    self._finish_locked(job)
                    return job
        job.cancel_event.set()
        return job

    # -- execution ------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._stopping:
                    self._wakeup.wait(timeout=0.1)
                if self._stopping and not self._queue:
                    return
                job = self._queue.popleft()
                job.state = RUNNING
                job.started_at = time.time()
                if job.limits.wall_seconds is not None:
                    job._timer = threading.Timer(
                        job.limits.wall_seconds, self._wall_expired, (job,)
                    )
                    job._timer.daemon = True
                    job._timer.start()
            try:
                result = self._execute(job)
            except Exception as error:  # an executor bug is one failed job
                with self._lock:
                    job.error = f"{type(error).__name__}: {error}"
                    job.result = None
                    self._finish_locked(job)
            else:
                with self._lock:
                    job.result = result
                    self._finish_locked(job)

    def _wall_expired(self, job: Job) -> None:
        with self._lock:
            if job.terminal:
                return
            job.kill_reason = (
                f"wall limit of {job.limits.wall_seconds}s exceeded"
            )
        job.cancel_event.set()

    def _finish_locked(self, job: Job) -> None:
        """Resolve the terminal state; caller holds the lock."""
        if job._timer is not None:
            job._timer.cancel()
            job._timer = None
        if job.kill_reason:
            job.state = KILLED
        elif job.cancel_requested:
            job.state = CANCELLED
        elif job.error:
            job.state = FAILED
        else:
            job.state = DONE
        job.finished_at = time.time()
        self._executed += 1
        self._wakeup.notify_all()
        # Close outside state resolution but inside the lock: the final
        # counters event must be visible to any events poll that already
        # observed the terminal state.
        try:
            job.telemetry.close()
        except Exception:
            pass

    # -- introspection / shutdown ---------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            by_state = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_state[job.state] += 1
            return {
                "jobs": dict(by_state),
                "queued": len(self._queue),
                "executed": self._executed,
                "executors": len(self._threads),
                "uptime_seconds": round(time.time() - self._started_at, 3),
                "stopping": self._stopping,
            }

    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until no job is queued or running (tests, shutdown)."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while any(not job.terminal for job in self._jobs.values()):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._wakeup.wait(timeout=min(remaining, 0.1))
        return True

    def shutdown(self, timeout: float = 30.0) -> None:
        """Stop accepting, cancel everything in flight, join executors.

        Idempotent and exception-silent like
        :meth:`~repro.mutation.parallel.WorkerPool.close` — shutdown
        paths run from signal handlers and ``finally`` blocks.
        """
        with self._lock:
            self._stopping = True
            victims = [job for job in self._jobs.values()
                       if not job.terminal]
            queued = list(self._queue)
            self._queue.clear()
            for job in queued:
                job.cancel_requested = True
                self._finish_locked(job)
            self._wakeup.notify_all()
        for job in victims:
            job.cancel_requested = True
            job.cancel_event.set()
        for thread in self._threads:
            try:
                thread.join(timeout=timeout)
            except Exception:
                pass
