"""The thin client: one socket, framed request/reply calls, and the
sweep-over-server driver the CLIs share.

:func:`sweep_over_server` is the differential contract's other half: it
submits every selected scenario as a daemon job, collects the result
rows in registry order, and assembles a
:class:`~repro.scenarios.sweep.SweepReport` whose deterministic
projection (``to_json(timings=False)``) is byte-identical to an
in-process :class:`~repro.scenarios.sweep.SweepRunner` run over the
same selection — the tests and the CI job diff the bytes.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.errors import ServiceError
from ..scenarios.registry import (
    ScenarioRegistry,
    scenario_to_mapping,
)
from ..scenarios.sweep import (
    ScenarioResult,
    SweepReport,
    _result_from_mapping,
)
from .jobs import JobLimits
from .protocol import MAX_LINE_BYTES, TERMINAL_STATES, decode_line, encode


def parse_address(text: str) -> Tuple[str, Any]:
    """``("unix", path)`` or ``("tcp", (host, port))`` from an address.

    Anything path-like — containing a path separator, or without a
    colon — is a UNIX socket path; ``host:port`` with a numeric port is
    TCP.  This matches how the CLIs print their addresses.
    """
    text = str(text).strip()
    if not text:
        raise ServiceError("empty server address")
    if os.sep in text or ":" not in text:
        return ("unix", text)
    host, _, port_text = text.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        return ("unix", text)
    if not host:
        host = "127.0.0.1"
    return ("tcp", (host, port))


class ServiceClient:
    """One persistent connection to a daemon (context manager).

    Transport failures and ``ok: false`` replies both raise
    :class:`~repro.core.errors.ServiceError`; :meth:`request` is the
    raw escape hatch that returns error replies instead of raising.
    """

    def __init__(self, address: str, timeout: float = 60.0) -> None:
        self._address = str(address)
        kind, target = parse_address(address)
        if kind == "unix":
            self._socket = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._socket.settimeout(timeout)
        try:
            self._socket.connect(target)
        except OSError as error:
            self._socket.close()
            raise ServiceError(
                f"cannot connect to service at {address!r}: {error}"
            )
        self._stream = self._socket.makefile("rwb")

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        for closer in (self._stream.close, self._socket.close):
            try:
                closer()
            except OSError:
                pass

    # -- raw calls -------------------------------------------------------

    def request(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        """One framed round trip; returns the reply (even error replies)."""
        try:
            self._stream.write(encode(message))
            self._stream.flush()
            line = self._stream.readline(MAX_LINE_BYTES + 2)
        except (OSError, ValueError) as error:
            raise ServiceError(
                f"service connection to {self._address!r} failed: {error}"
            )
        if not line:
            raise ServiceError(
                f"service at {self._address!r} closed the connection"
            )
        return decode_line(line)

    def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """A verb call that raises on ``ok: false``."""
        reply = self.request({"op": op, **fields})
        if not reply.get("ok"):
            raise ServiceError(
                f"{op} failed: {reply.get('error', 'unknown error')}"
            )
        return reply

    # -- verbs -----------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.call("ping")

    def submit_scenario(self, scenario: Mapping[str, Any],
                        limits: Optional[JobLimits] = None) -> str:
        fields: Dict[str, Any] = {
            "kind": "scenario", "scenario": dict(scenario),
        }
        if limits is not None and not limits.empty:
            fields["limits"] = limits.to_mapping()
        return str(self.call("submit", **fields)["job_id"])

    def submit_experiment(self, table: str, argv: List[str],
                          limits: Optional[JobLimits] = None) -> str:
        fields: Dict[str, Any] = {
            "kind": "experiment", "table": table, "argv": list(argv),
        }
        if limits is not None and not limits.empty:
            fields["limits"] = limits.to_mapping()
        return str(self.call("submit", **fields)["job_id"])

    def status(self, job_id: str) -> Dict[str, Any]:
        return dict(self.call("status", job_id=job_id)["job"])

    def result(self, job_id: str) -> Dict[str, Any]:
        return self.call("result", job_id=job_id)

    def cancel(self, job_id: str) -> str:
        return str(self.call("cancel", job_id=job_id)["state"])

    def events(self, job_id: str, start: int = 0) -> Dict[str, Any]:
        return self.call("events", job_id=job_id, **{"from": start})

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def shutdown(self) -> Dict[str, Any]:
        return self.call("shutdown")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.05) -> Dict[str, Any]:
        """Poll ``result`` until the job is terminal; returns the reply."""
        deadline = time.monotonic() + timeout
        while True:
            reply = self.result(job_id)
            if reply.get("ready") and reply.get("state") in TERMINAL_STATES:
                return reply
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {reply.get('state')!r} after "
                    f"{timeout}s"
                )
            time.sleep(poll)


def sweep_over_server(client: ServiceClient,
                      registry: ScenarioRegistry,
                      filter_expression: str = "",
                      shard: Optional[Tuple[int, int]] = None,
                      max_scenarios: int = 0,
                      limits: Optional[JobLimits] = None,
                      timeout: float = 600.0,
                      progress: Optional[Any] = None) -> SweepReport:
    """Run a (filtered, sharded) registry through a daemon.

    Selection mirrors :meth:`~repro.scenarios.sweep.SweepRunner.run`
    exactly — including the *full* registry fingerprint on the report,
    computed before filtering — so the deterministic projection is
    byte-identical to the in-process sweep.  All jobs are submitted up
    front (the daemon's executor slots pipeline them), then collected
    in registry order.
    """
    started = time.perf_counter()
    selected = registry.filtered(filter_expression)
    if shard is not None:
        selected = selected.shard(*shard)
    scenarios = list(selected)
    if max_scenarios and len(scenarios) > max_scenarios:
        scenarios = scenarios[:max_scenarios]
    job_ids = [
        client.submit_scenario(scenario_to_mapping(scenario), limits=limits)
        for scenario in scenarios
    ]
    results: List[ScenarioResult] = []
    for position, (scenario, job_id) in enumerate(
            zip(scenarios, job_ids), start=1):
        reply = client.wait(job_id, timeout=timeout)
        payload = reply.get("result") or {}
        row = payload.get("scenario")
        if isinstance(row, Mapping):
            result = _result_from_mapping(row)
        else:
            # killed/cancelled/failed before the executor produced a row
            reason = (reply.get("kill_reason") or reply.get("error")
                      or f"job ended in state {reply.get('state')!r}")
            result = ScenarioResult(
                ident=scenario.ident,
                component=scenario.component.describe(),
                scenario_fingerprint=scenario.fingerprint(),
                tags=scenario.tags,
                groups=scenario.groups,
                oracle=scenario.oracle,
                operators=scenario.operators,
                error=f"ServiceError: {reason}",
            )
        results.append(result)
        if progress is not None:
            progress(position, len(scenarios), scenario, result)
    return SweepReport(
        registry_fingerprint=registry.fingerprint(),
        results=tuple(results),
        filter_expression=filter_expression,
        shard=(f"{shard[0]}/{shard[1]}" if shard is not None else ""),
        counters={},
        elapsed_seconds=time.perf_counter() - started,
    )
