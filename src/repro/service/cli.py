"""``python -m repro.service`` — the daemon and its control commands.

Subcommands:

* ``serve`` — run the resident daemon on a UNIX socket (``--socket``)
  or a localhost TCP port (``--port``); the pipeline knobs mirror the
  batch sweep CLI (workers, cache, pruning, triage, batch size);
* ``ping`` / ``stats`` / ``shutdown`` — daemon control;
* ``submit`` — queue scenarios from a registry selection and
  (optionally) wait for them;
* ``status`` / ``result`` / ``cancel`` — single-job control;
* ``events`` — dump a job's telemetry stream as JSONL (validatable
  with ``python -m repro.obs``).

The sweep-shaped consumer lives in the scenarios CLI:
``python -m repro.scenarios run --server ADDR …`` renders the
byte-identical deterministic report through the daemon.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from ..core.errors import ReproError
from ..experiments.cli import (
    add_cache_arguments,
    add_prune_arguments,
    add_throughput_arguments,
    add_triage_arguments,
    add_workers_argument,
    batch_size_from_arguments,
    cache_from_arguments,
    prune_from_arguments,
    static_triage_from_arguments,
)
from ..obs import write_events_jsonl
from ..scenarios.registry import builtin_registry, load_registry, parse_shard
from .client import ServiceClient
from .jobs import JobLimits
from .server import MutationService, ServiceServer


def _add_server_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--server", required=True, metavar="ADDR",
        help="daemon address: a UNIX socket path, or host:port",
    )


def _limits_from(arguments: argparse.Namespace) -> Optional[JobLimits]:
    limits = JobLimits(
        wall_seconds=getattr(arguments, "wall_limit", None),
        cpu_seconds=getattr(arguments, "cpu_limit", None),
        memory_bytes=(int(arguments.memory_limit_mb * 1024 * 1024)
                      if getattr(arguments, "memory_limit_mb", None)
                      else None),
    )
    return None if limits.empty else limits


def _add_limit_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("per-job limits")
    group.add_argument(
        "--wall-limit", type=float, default=None, metavar="SECONDS",
        help="kill a job after this much wall time (state: killed)",
    )
    group.add_argument(
        "--cpu-limit", type=float, default=None, metavar="SECONDS",
        help="per-batch worker CPU rlimit (parallel jobs only)",
    )
    group.add_argument(
        "--memory-limit-mb", type=float, default=None, metavar="MB",
        help="per-batch worker address-space rlimit (parallel jobs only)",
    )


def _cmd_serve(arguments: argparse.Namespace) -> int:
    cache = cache_from_arguments(arguments)
    service = MutationService(
        workers=arguments.workers,
        workspace=arguments.workspace,
        cache=cache,
        batch_size=batch_size_from_arguments(arguments),
        prune=prune_from_arguments(arguments),
        static_triage=static_triage_from_arguments(arguments),
        concurrency=arguments.concurrency,
        default_limits=_limits_from(arguments),
    )
    server = ServiceServer(
        service,
        socket_path=arguments.socket,
        port=arguments.port,
        host=arguments.host,
    )
    print(f"serving on {server.address}", flush=True)
    server.serve_forever()
    print("service stopped", flush=True)
    return 0


def _cmd_ping(arguments: argparse.Namespace) -> int:
    with ServiceClient(arguments.server) as client:
        reply = client.ping()
    print(f"pong from {reply.get('server')} (pid {reply.get('pid')})")
    return 0


def _cmd_stats(arguments: argparse.Namespace) -> int:
    with ServiceClient(arguments.server) as client:
        reply = client.stats()
    reply.pop("ok", None)
    reply.pop("v", None)
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0


def _cmd_shutdown(arguments: argparse.Namespace) -> int:
    with ServiceClient(arguments.server) as client:
        client.shutdown()
    print("shutdown requested")
    return 0


def _cmd_submit(arguments: argparse.Namespace) -> int:
    registry = (load_registry(arguments.registry) if arguments.registry
                else builtin_registry()).filtered(arguments.filter)
    if arguments.shard:
        registry = registry.shard(*parse_shard(arguments.shard))
    scenarios = list(registry)
    if arguments.max_scenarios and len(scenarios) > arguments.max_scenarios:
        scenarios = scenarios[:arguments.max_scenarios]
    if not scenarios:
        print("error: selection matches no scenarios", file=sys.stderr)
        return 2
    limits = _limits_from(arguments)
    from ..scenarios.registry import scenario_to_mapping

    failures = 0
    with ServiceClient(arguments.server) as client:
        job_ids = [
            client.submit_scenario(scenario_to_mapping(scenario),
                                   limits=limits)
            for scenario in scenarios
        ]
        for scenario, job_id in zip(scenarios, job_ids):
            print(f"{job_id}  {scenario.ident}")
        if arguments.wait:
            for scenario, job_id in zip(scenarios, job_ids):
                reply = client.wait(job_id, timeout=arguments.timeout)
                state = reply.get("state")
                row = (reply.get("result") or {}).get("scenario") or {}
                if state != "done" or row.get("error"):
                    failures += 1
                print(f"{job_id}  {scenario.ident}: {state}"
                      + (f" ({row.get('error')})" if row.get("error")
                         else ""))
    return 1 if failures else 0


def _cmd_status(arguments: argparse.Namespace) -> int:
    with ServiceClient(arguments.server) as client:
        snapshot = client.status(arguments.job_id)
    print(json.dumps(snapshot, indent=2, sort_keys=True))
    return 0


def _cmd_result(arguments: argparse.Namespace) -> int:
    with ServiceClient(arguments.server) as client:
        reply = (client.wait(arguments.job_id, timeout=arguments.timeout)
                 if arguments.wait else client.result(arguments.job_id))
    reply.pop("ok", None)
    reply.pop("v", None)
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0


def _cmd_cancel(arguments: argparse.Namespace) -> int:
    with ServiceClient(arguments.server) as client:
        state = client.cancel(arguments.job_id)
    print(f"{arguments.job_id}: {state}")
    return 0


def _cmd_events(arguments: argparse.Namespace) -> int:
    with ServiceClient(arguments.server) as client:
        reply = client.events(arguments.job_id, start=arguments.offset)
    events = reply.get("events", [])
    if arguments.out:
        write_events_jsonl(events, arguments.out)
        print(f"{len(events)} event(s) -> {arguments.out} "
              f"(next offset {reply.get('next')})")
    else:
        for event in events:
            print(json.dumps(event, sort_keys=True,
                             separators=(",", ":")))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Resident mutation-analysis daemon and control client.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser(
        "serve", help="run the daemon (UNIX socket or localhost TCP)"
    )
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="UNIX stream socket path to serve on")
    serve.add_argument("--port", type=int, default=None, metavar="N",
                       help="TCP port to serve on instead of a socket")
    serve.add_argument("--host", default="127.0.0.1", metavar="HOST",
                       help="TCP bind address (default 127.0.0.1)")
    serve.add_argument("--concurrency", type=int, default=2, metavar="K",
                       help="jobs executing at once (default 2)")
    serve.add_argument("--workspace", default=None, metavar="DIR",
                       help="directory for materialized generated "
                            "components")
    add_workers_argument(serve)
    _add_limit_arguments(serve)
    add_cache_arguments(serve)
    add_throughput_arguments(serve)
    add_prune_arguments(serve)
    add_triage_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)

    for name, handler, help_text in (
            ("ping", _cmd_ping, "check the daemon is alive"),
            ("stats", _cmd_stats, "print queue/executor statistics"),
            ("shutdown", _cmd_shutdown, "ask the daemon to stop")):
        sub = commands.add_parser(name, help=help_text)
        _add_server_argument(sub)
        sub.set_defaults(handler=handler)

    submit = commands.add_parser(
        "submit", help="queue scenarios from a registry selection"
    )
    _add_server_argument(submit)
    submit.add_argument("--registry", default=None, metavar="PATH",
                        help="registry file or directory "
                             "(default: the builtin corpus)")
    submit.add_argument("--filter", default="", metavar="EXPR",
                        help="comma-separated filter terms")
    submit.add_argument("--shard", default=None, metavar="K/N",
                        help="submit shard K of N")
    submit.add_argument("--max-scenarios", type=int, default=0, metavar="N",
                        help="submit at most N scenarios (0 = all)")
    submit.add_argument("--wait", action="store_true",
                        help="wait for the jobs and report their states")
    submit.add_argument("--timeout", type=float, default=600.0,
                        metavar="SECONDS",
                        help="per-job wait timeout with --wait")
    _add_limit_arguments(submit)
    submit.set_defaults(handler=_cmd_submit)

    status = commands.add_parser("status", help="one job's status")
    result = commands.add_parser("result", help="one job's result")
    cancel = commands.add_parser("cancel", help="cancel one job")
    events = commands.add_parser(
        "events", help="dump one job's telemetry events"
    )
    for sub in (status, result, cancel, events):
        _add_server_argument(sub)
        sub.add_argument("job_id", metavar="JOB")
    result.add_argument("--wait", action="store_true",
                        help="poll until the job is terminal")
    result.add_argument("--timeout", type=float, default=600.0,
                        metavar="SECONDS", help="poll timeout with --wait")
    events.add_argument("--offset", type=int, default=0, metavar="N",
                        help="first event index to fetch (default 0)")
    events.add_argument("--out", default=None, metavar="PATH",
                        help="write the events as JSONL to PATH "
                             "(default: print)")
    status.set_defaults(handler=_cmd_status)
    result.set_defaults(handler=_cmd_result)
    cancel.set_defaults(handler=_cmd_cancel)
    events.set_defaults(handler=_cmd_events)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout went away mid-print (`... | head`): the job work is
        # done server-side, so die quietly like a well-behaved filter
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
