"""The daemon: request handling bound to the mutation pipeline.

Two layers, split so tests can exercise the whole verb surface without
a socket:

* :class:`MutationService` — transport-agnostic.  One resident
  :class:`~repro.scenarios.sweep.SweepRunner` (so component synthesis,
  suites and reference runs stay memoized *across jobs*, and every
  parallel job multiplexes onto the shared warm
  :class:`~repro.mutation.parallel.WorkerPool`), one
  :class:`~repro.service.jobs.JobManager`, and
  :meth:`~MutationService.handle_request` mapping request dicts to
  reply dicts.
* :class:`ServiceServer` — the socket transport: a threading
  UNIX-stream (or localhost TCP) server speaking the newline-delimited
  JSON protocol, with graceful SIGINT/SIGTERM shutdown that drains
  jobs, closes the cache and leaves zero orphaned workers.

Job payloads:

* ``{"kind": "scenario", "scenario": {…}}`` — one scenario mapping,
  validated with the registry machinery
  (:func:`~repro.scenarios.registry.registry_from_mappings`) before it
  is queued, so a malformed payload is rejected at submit time with
  the collected problem list, never half-run;
* ``{"kind": "experiment", "table": "table1", "argv": […]}`` — a table
  experiment executed in the daemon with stdout captured; the reply
  carries the exit code and the printed output.
"""

from __future__ import annotations

import contextlib
import io
import os
import signal
import socket
import socketserver
import threading
from typing import Any, Callable, Dict, Mapping, Optional

from ..core.errors import ReproError, ServiceError
from ..mutation.cache import MutationOutcomeCache
from ..scenarios.registry import ScenarioRegistry, registry_from_mappings
from ..scenarios.sweep import SweepRunner
from .jobs import Job, JobLimits, JobManager
from .protocol import (
    MAX_LINE_BYTES,
    TERMINAL_STATES,
    VERBS,
    ProtocolError,
    decode_line,
    encode,
    error_reply,
    ok,
)

#: Tables an experiment job may name (resolved lazily, import-cycle-free).
EXPERIMENT_TABLES = ("table1", "table2", "table3")


class MutationService:
    """The daemon's brain: validates requests, owns the job machinery."""

    def __init__(self,
                 workers: int = 1,
                 workspace: Optional[str] = None,
                 cache: Optional[MutationOutcomeCache] = None,
                 batch_size: Optional[int] = None,
                 prune: bool = True,
                 static_triage: bool = True,
                 pool: Optional[object] = None,
                 concurrency: int = 2,
                 default_limits: Optional[JobLimits] = None) -> None:
        """``workers``/``batch_size``/``prune``/``static_triage``/``cache``
        configure the resident pipeline exactly like a batch sweep;
        ``concurrency`` is how many jobs execute at once (each with its
        own engine run on the shared pool); ``pool`` overrides the
        process-wide worker pool (tests isolate with a private one);
        ``default_limits`` apply to any job that does not set its own.
        """
        self._runner = SweepRunner(
            ScenarioRegistry(()),
            workers=workers,
            workspace=workspace,
            cache=cache,
            batch_size=batch_size,
            prune=prune,
            static_triage=static_triage,
            pool=pool,
        )
        self._cache = cache
        self._manager = JobManager(
            self._execute_job,
            concurrency=concurrency,
            default_limits=default_limits,
        )
        self._shutdown_requested = threading.Event()
        self._on_shutdown: Optional[Callable[[], None]] = None

    @property
    def manager(self) -> JobManager:
        return self._manager

    @property
    def shutdown_requested(self) -> threading.Event:
        """Set once a ``shutdown`` request was accepted (transport hook)."""
        return self._shutdown_requested

    def on_shutdown(self, callback: Callable[[], None]) -> None:
        """Transport's hook, invoked once after a ``shutdown`` reply."""
        self._on_shutdown = callback

    # -- job execution ---------------------------------------------------

    def _execute_job(self, job: Job) -> Dict[str, Any]:
        if job.kind == "scenario":
            return self._execute_scenario(job)
        if job.kind == "experiment":
            return self._execute_experiment(job)
        raise ServiceError(f"unknown job kind {job.kind!r}")

    def _execute_scenario(self, job: Job) -> Dict[str, Any]:
        registry = registry_from_mappings(
            [job.payload["scenario"]], origin=job.job_id
        )
        scenario = registry.scenarios[0]
        result = self._runner.run_scenario(
            scenario,
            telemetry=job.telemetry,
            cancel=job.cancel_event,
            rlimits=job.limits.batch_limits(),
        )
        return {"kind": "scenario", "scenario": result.to_dict(timings=True)}

    def _execute_experiment(self, job: Job) -> Dict[str, Any]:
        # Tables run to completion in-daemon; they only observe the
        # cancel event before starting (their engines are not handed
        # one), so wall limits on experiment jobs bound the *queue
        # wait*, not the run — documented in DESIGN §5.
        if job.cancel_event.is_set():
            raise ServiceError("cancelled before the experiment started")
        from ..experiments import table1, table2, table3

        mains = {"table1": table1.main, "table2": table2.main,
                 "table3": table3.main}
        main = mains[job.payload["table"]]
        stream = io.StringIO()
        with contextlib.redirect_stdout(stream):
            try:
                exit_code = int(main(list(job.payload["argv"])) or 0)
            except SystemExit as stop:  # argparse errors land here
                exit_code = (stop.code if isinstance(stop.code, int)
                             else (0 if stop.code is None else 2))
        return {
            "kind": "experiment",
            "table": job.payload["table"],
            "exit_code": exit_code,
            "output": stream.getvalue(),
        }

    # -- request validation ---------------------------------------------

    def _validated_submission(self, request: Mapping[str, Any]
                              ) -> Dict[str, Any]:
        kind = request.get("kind", "scenario")
        if kind == "scenario":
            scenario = request.get("scenario")
            if not isinstance(scenario, Mapping):
                raise ServiceError(
                    "submit needs a 'scenario' object (a registry entry "
                    "mapping)"
                )
            # Full registry validation up front: a bad payload is
            # bounced with every problem listed, not queued to fail.
            registry_from_mappings([scenario], origin="submit")
            return {"kind": kind, "payload": {"scenario": dict(scenario)}}
        if kind == "experiment":
            table = request.get("table")
            if table not in EXPERIMENT_TABLES:
                raise ServiceError(
                    f"unknown experiment table {table!r} "
                    f"(known: {', '.join(EXPERIMENT_TABLES)})"
                )
            argv = request.get("argv", [])
            if (not isinstance(argv, list)
                    or not all(isinstance(item, str) for item in argv)):
                raise ServiceError("argv must be a list of strings")
            if any(item == "--server" or item.startswith("--server=")
                   for item in argv):
                raise ServiceError(
                    "experiment argv must not contain --server "
                    "(the daemon does not recurse into itself)"
                )
            return {"kind": kind,
                    "payload": {"table": table, "argv": list(argv)}}
        raise ServiceError(
            f"unknown job kind {kind!r} (known: scenario, experiment)"
        )

    # -- verbs -----------------------------------------------------------

    def handle_request(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        """One request mapping in, one reply mapping out; never raises.

        Domain and validation failures become ``ok: false`` replies;
        only the transport decides what a *framing* failure costs (an
        error reply and, for oversize lines, the connection).
        """
        op = request.get("op")
        if op not in VERBS:
            return error_reply(
                f"unknown op {op!r} (known: {', '.join(VERBS)})"
            )
        try:
            return getattr(self, f"_op_{op}")(request)
        except ReproError as error:
            return error_reply(str(error))
        except Exception as error:  # a handler bug is one failed request
            return error_reply(f"{type(error).__name__}: {error}")

    def _op_ping(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        return ok(server="repro-mutation-service", pid=os.getpid())

    def _op_submit(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        submission = self._validated_submission(request)
        limits = JobLimits.from_mapping(request.get("limits"))
        job = self._manager.submit(
            submission["kind"], submission["payload"], limits
        )
        return ok(job_id=job.job_id, state=job.state)

    def _job_from(self, request: Mapping[str, Any]) -> Job:
        job_id = request.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise ServiceError("a 'job_id' string is required")
        return self._manager.get(job_id)

    def _op_status(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        return ok(job=self._job_from(request).snapshot())

    def _op_result(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        job = self._job_from(request)
        snapshot = job.snapshot()
        ready = snapshot["state"] in TERMINAL_STATES
        reply = ok(job_id=job.job_id, state=snapshot["state"], ready=ready)
        if ready:
            reply["result"] = job.result
            reply["error"] = snapshot["error"]
            reply["kill_reason"] = snapshot["kill_reason"]
        return reply

    def _op_cancel(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        job = self._manager.cancel(self._job_from(request).job_id)
        return ok(job_id=job.job_id, state=job.snapshot()["state"])

    def _op_events(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        job = self._job_from(request)
        start = request.get("from", 0)
        if not isinstance(start, int) or isinstance(start, bool):
            raise ServiceError(f"'from' must be an integer, got {start!r}")
        events, next_offset = job.events_slice(start)
        return ok(job_id=job.job_id, events=events, next=next_offset,
                  state=job.snapshot()["state"])

    def _op_stats(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        stats = self._manager.stats()
        if self._cache is not None:
            stats["cache"] = {
                "write_errors": self._cache.write_errors,
                "writes_disabled": self._cache.writes_disabled,
            }
        return ok(**stats)

    def _op_shutdown(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        self._shutdown_requested.set()
        if self._on_shutdown is not None:
            callback, self._on_shutdown = self._on_shutdown, None
            callback()
        return ok(stopping=True)

    # -- teardown --------------------------------------------------------

    def close(self) -> None:
        """Drain jobs and release the pipeline (idempotent, silent)."""
        try:
            self._manager.shutdown()
        except Exception:
            pass
        try:
            self._runner.request_cancel()
        except Exception:
            pass
        if self._cache is not None:
            try:
                self._cache.close()
            except Exception:
                pass


# ---------------------------------------------------------------------------
# socket transport
# ---------------------------------------------------------------------------


class _LineHandler(socketserver.StreamRequestHandler):
    """One connection: framed request lines in, framed reply lines out.

    A client disconnect (empty read, broken pipe) ends the handler;
    jobs the client submitted keep running — reconnect and poll.
    """

    def handle(self) -> None:
        service: MutationService = self.server.service  # type: ignore
        while True:
            try:
                line = self.rfile.readline(MAX_LINE_BYTES + 2)
            except (OSError, ValueError):
                return
            if not line:
                return
            if len(line) > MAX_LINE_BYTES:
                self._reply(error_reply(
                    f"line exceeds {MAX_LINE_BYTES} bytes"
                ))
                return  # the rest of the stream is unframed garbage
            try:
                request = decode_line(line)
            except ProtocolError as error:
                if not self._reply(error_reply(str(error))):
                    return
                continue
            if not self._reply(service.handle_request(request)):
                return

    def _reply(self, message: Dict[str, Any]) -> bool:
        try:
            self.wfile.write(encode(message))
            self.wfile.flush()
            return True
        except (OSError, ValueError, ProtocolError):
            return False


class _ThreadingUnixServer(socketserver.ThreadingMixIn,
                           socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True


class _ThreadingTCPServer(socketserver.ThreadingMixIn,
                          socketserver.TCPServer):
    daemon_threads = True
    allow_reuse_address = True


class ServiceServer:
    """The socket front-end: bind, serve, and shut down gracefully.

    Exactly one of ``socket_path`` (UNIX stream socket — the default
    transport) or ``port`` (TCP bound to ``host``, localhost unless
    told otherwise) must be given.
    """

    def __init__(self, service: MutationService,
                 socket_path: Optional[str] = None,
                 port: Optional[int] = None,
                 host: str = "127.0.0.1") -> None:
        if (socket_path is None) == (port is None):
            raise ServiceError(
                "exactly one of socket_path or port is required"
            )
        self.service = service
        self._socket_path = socket_path
        if socket_path is not None:
            self._remove_stale_socket(socket_path)
            self._server = _ThreadingUnixServer(socket_path, _LineHandler)
        else:
            self._server = _ThreadingTCPServer((host, port), _LineHandler)
        self._server.service = service  # type: ignore[attr-defined]
        self._stopped = threading.Event()
        service.on_shutdown(self.stop)

    @staticmethod
    def _remove_stale_socket(path: str) -> None:
        """Unlink a dead predecessor's socket file; refuse a live one."""
        if not os.path.exists(path):
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(0.5)
            probe.connect(path)
        except OSError:
            os.unlink(path)  # nobody answering: stale file
        else:
            probe.close()
            raise ServiceError(
                f"socket {path} is already served by a live daemon"
            )
        finally:
            probe.close()

    @property
    def address(self) -> str:
        if self._socket_path is not None:
            return self._socket_path
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def serve_forever(self, install_signal_handlers: bool = True) -> None:
        """Serve until ``stop()`` — via the ``shutdown`` verb, SIGINT or
        SIGTERM — then drain jobs, release the pipeline and clean up the
        socket file.  Returns only after teardown completes (zero
        orphaned worker processes)."""
        if install_signal_handlers:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    signal.signal(signum, lambda *_: self.stop())
                except ValueError:
                    pass  # not the main thread (tests drive stop())
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._teardown()

    def stop(self) -> None:
        """Idempotent, callable from any thread or a signal handler."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        # serve_forever must not be shut down from its own thread; the
        # verb handler and signal handlers both run elsewhere, but a
        # spawned thread is safe from every caller.
        threading.Thread(target=self._server.shutdown,
                         name="repro-service-stop", daemon=True).start()

    def _teardown(self) -> None:
        self._stopped.set()
        self.service.close()
        try:
            self._server.server_close()
        except OSError:
            pass
        if self._socket_path is not None:
            try:
                os.unlink(self._socket_path)
            except OSError:
                pass
